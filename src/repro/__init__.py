"""repro: a reproduction of ByteCard (SIGMOD 2024).

Learned cardinality estimation for a columnar data warehouse: per-table
tree Bayesian networks + FactorJoin for COUNT, RBX for COUNT DISTINCT, and
the production framework around them (training service, model loader,
validator, monitor), evaluated end to end on a simulated ByteHouse-style
engine.  See README.md for a tour and DESIGN.md for the system inventory.

The most useful entry points::

    from repro import ByteCard, make_imdb, bind_sql, EngineSession

    bundle = make_imdb(scale=0.5)
    bytecard = ByteCard.build(bundle)
    query = bind_sql("SELECT COUNT(*) FROM title WHERE kind_id = 1",
                     bundle.catalog)
    bytecard.estimate_count(query)
"""

from repro.core.bytecard import ByteCard
from repro.core.config import ByteCardConfig
from repro.datasets import make_aeolus, make_imdb, make_stats, scale_bundle
from repro.engine import EngineSession, EstimatorSuite
from repro.sql import bind_sql, parse_sql

__version__ = "1.0.0"

__all__ = [
    "ByteCard",
    "ByteCardConfig",
    "make_imdb",
    "make_stats",
    "make_aeolus",
    "scale_bundle",
    "EngineSession",
    "EstimatorSuite",
    "bind_sql",
    "parse_sql",
    "__version__",
]
