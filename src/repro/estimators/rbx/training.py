"""RBX training: synthetic distribution corpus and the two training modes.

*Routine training* draws columns from a family of synthetic frequency
distributions (uniform, Zipf of varying skew, geometric, near-distinct),
computes exact NDVs analytically, simulates Bernoulli row sampling, and fits
the network on (frequency-profile -> log NDV) pairs.  Because the features
are workload-independent, this single offline run serves every dataset
(paper: "one training process can serve a wide range of workloads").

*Calibration fine-tuning* (Section 5.2.2) resumes from the trained
checkpoint with a reduced learning rate and an asymmetric loss that
penalizes underestimation, over a corpus augmented with sampled data from
the problematic columns plus synthetic high-NDV columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.estimators.frequency import FrequencyProfile, frequency_profile
from repro.estimators.rbx.network import MLP, AdamState
from repro.estimators.rbx.profile import RBX_FEATURE_DIM, ndv_to_target, rbx_features


@dataclass(frozen=True)
class SyntheticColumn:
    """One synthetic training example."""

    profile: FrequencyProfile
    true_ndv: int


class SyntheticColumnSampler:
    """Draws synthetic columns with analytically known NDV.

    A column is a frequency vector over ``ndv`` distinct values summing to
    the population size; the sample's per-value counts are Binomial draws,
    so no rows are ever materialized and corpus generation is fast.
    """

    FAMILIES = ("uniform", "zipf", "geometric", "near_distinct")

    def __init__(
        self,
        rng: np.random.Generator,
        min_rows: int = 1_000,
        max_rows: int = 2_000_000,
        min_rate: float = 0.002,
        max_rate: float = 0.2,
        high_ndv_bias: float = 0.0,
    ):
        if min_rows <= 0 or max_rows < min_rows:
            raise TrainingError("invalid population-size range")
        self.rng = rng
        self.min_rows = min_rows
        self.max_rows = max_rows
        self.min_rate = min_rate
        self.max_rate = max_rate
        #: probability of forcing a near-distinct (very high NDV) column;
        #: raised during calibration fine-tuning
        self.high_ndv_bias = high_ndv_bias

    # ------------------------------------------------------------------
    def draw(self) -> SyntheticColumn:
        rng = self.rng
        population = int(
            np.exp(rng.uniform(np.log(self.min_rows), np.log(self.max_rows)))
        )
        rate = float(
            np.exp(rng.uniform(np.log(self.min_rate), np.log(self.max_rate)))
        )
        if rng.random() < self.high_ndv_bias:
            family = "near_distinct"
        else:
            family = self.FAMILIES[rng.integers(len(self.FAMILIES))]
        frequencies = self._frequencies(family, population)
        true_ndv = int(frequencies.size)
        sample_counts = rng.binomial(frequencies, rate)
        sample_counts = sample_counts[sample_counts > 0]
        profile = self._profile_from_counts(sample_counts, population)
        return SyntheticColumn(profile=profile, true_ndv=true_ndv)

    def _frequencies(self, family: str, population: int) -> np.ndarray:
        rng = self.rng
        if family == "near_distinct":
            ndv = max(1, int(population * rng.uniform(0.5, 1.0)))
        else:
            log_ndv = rng.uniform(np.log(10), np.log(max(11, population)))
            ndv = max(1, int(np.exp(log_ndv)))
        ndv = min(ndv, population)
        if family == "uniform":
            weights = np.ones(ndv)
        elif family == "zipf":
            skew = rng.uniform(0.3, 2.0)
            weights = np.arange(1, ndv + 1, dtype=np.float64) ** -skew
        elif family == "geometric":
            decay = rng.uniform(0.9, 0.9999)
            weights = decay ** np.arange(ndv, dtype=np.float64)
        else:  # near_distinct
            weights = np.ones(ndv)
        weights = weights / weights.sum()
        frequencies = np.maximum(
            1, np.round(weights * (population - ndv)).astype(np.int64) + 1
        )
        return frequencies

    @staticmethod
    def _profile_from_counts(
        sample_counts: np.ndarray, population: int
    ) -> FrequencyProfile:
        sample_size = int(sample_counts.sum())
        from repro.estimators.rbx.profile import PROFILE_LENGTH

        head = sample_counts[sample_counts <= PROFILE_LENGTH]
        tail = sample_counts[sample_counts > PROFILE_LENGTH]
        counts = np.bincount(head.astype(np.int64), minlength=PROFILE_LENGTH + 1)[1:]
        return FrequencyProfile(
            counts=counts.astype(np.int64),
            sample_size=sample_size,
            population_size=population,
            tail_distinct=int(tail.size),
            tail_rows=int(tail.sum()),
        )


# ---------------------------------------------------------------------------
# Training loops
# ---------------------------------------------------------------------------
def _corpus_matrices(
    examples: list[SyntheticColumn],
) -> tuple[np.ndarray, np.ndarray]:
    features = np.stack([rbx_features(ex.profile) for ex in examples])
    targets = np.array([ndv_to_target(ex.true_ndv) for ex in examples])
    return features, targets


def train_rbx(
    num_examples: int = 4000,
    epochs: int = 60,
    batch_size: int = 64,
    learning_rate: float = 1e-3,
    seed: int = 9,
    sampler: SyntheticColumnSampler | None = None,
) -> MLP:
    """Routine (from-scratch) training of the universal RBX model."""
    rng = np.random.default_rng(seed)
    if sampler is None:
        sampler = SyntheticColumnSampler(rng)
    examples = [sampler.draw() for _ in range(num_examples)]
    features, targets = _corpus_matrices(examples)
    model = MLP(RBX_FEATURE_DIM, seed=seed)
    state = AdamState()
    n = features.shape[0]
    for _epoch in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            model.train_step(
                features[batch], targets[batch], state, learning_rate=learning_rate
            )
    return model


def fine_tune_rbx(
    model: MLP,
    column_samples: list[tuple[FrequencyProfile, int]],
    epochs: int = 40,
    batch_size: int = 32,
    learning_rate: float = 1e-4,
    underestimation_penalty: float = 4.0,
    synthetic_augmentation: int = 400,
    seed: int = 10,
) -> MLP:
    """Calibration fine-tuning from the established checkpoint.

    ``column_samples`` are (frequency profile, true NDV) pairs drawn from
    the problematic columns (the Model Monitor collects these).  The corpus
    is augmented with synthetic high-NDV columns; training resumes from the
    given checkpoint with a reduced learning rate and the asymmetric loss.
    The input model is left untouched; a tuned copy is returned.
    """
    if not column_samples:
        raise TrainingError("fine-tuning requires at least one column sample")
    rng = np.random.default_rng(seed)
    sampler = SyntheticColumnSampler(rng, high_ndv_bias=0.8)
    examples = [sampler.draw() for _ in range(synthetic_augmentation)]
    features_list = [rbx_features(profile) for profile, _ in column_samples]
    targets_list = [ndv_to_target(ndv) for _, ndv in column_samples]
    aug_features, aug_targets = _corpus_matrices(examples)
    features = np.concatenate([np.stack(features_list), aug_features])
    targets = np.concatenate([np.array(targets_list), aug_targets])
    # Oversample the real problematic columns so they are not drowned out.
    repeat = max(1, synthetic_augmentation // max(1, len(column_samples)) // 4)
    features = np.concatenate([features] + [np.stack(features_list)] * repeat)
    targets = np.concatenate([targets] + [np.array(targets_list)] * repeat)

    tuned = model.clone()
    state = AdamState()
    n = features.shape[0]
    for _epoch in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            tuned.train_step(
                features[batch],
                targets[batch],
                state,
                learning_rate=learning_rate,
                underestimation_penalty=underestimation_penalty,
            )
    return tuned
