"""A small fully-connected network in pure NumPy.

The paper's RBX deployment keeps the network tiny (seven layers, a few
hundred KB of weights) so inference inside the query path is a handful of
matrix multiplications.  This module implements exactly that: ReLU MLP,
manual backprop, Adam, and an optional asymmetric (anti-underestimation)
loss used by the calibration protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError

#: The seven-weight-layer architecture used for RBX (input dim prepended).
DEFAULT_HIDDEN = (128, 128, 64, 64, 32, 16)


@dataclass
class AdamState:
    """Adam moment estimates for one parameter list."""

    m: list[np.ndarray] = field(default_factory=list)
    v: list[np.ndarray] = field(default_factory=list)
    t: int = 0

    @classmethod
    def like(cls, params: list[np.ndarray]) -> "AdamState":
        return cls(
            m=[np.zeros_like(p) for p in params],
            v=[np.zeros_like(p) for p in params],
            t=0,
        )


class MLP:
    """ReLU multi-layer perceptron with scalar output."""

    def __init__(
        self,
        input_dim: int,
        hidden: tuple[int, ...] = DEFAULT_HIDDEN,
        seed: int = 0,
    ):
        if input_dim <= 0:
            raise ModelError(f"input_dim must be positive, got {input_dim}")
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden, 1]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialization for ReLU
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def nbytes(self) -> int:
        return int(
            sum(w.nbytes for w in self.weights) + sum(b.nbytes for b in self.biases)
        )

    def parameters(self) -> list[np.ndarray]:
        return [*self.weights, *self.biases]

    def clone(self) -> "MLP":
        copy = MLP.__new__(MLP)
        copy.weights = [w.copy() for w in self.weights]
        copy.biases = [b.copy() for b in self.biases]
        return copy

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Predict scalar outputs for a batch ``(n, input_dim)``."""
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in range(self.num_layers - 1):
            h = np.maximum(h @ self.weights[layer] + self.biases[layer], 0.0)
        out = h @ self.weights[-1] + self.biases[-1]
        return out[:, 0]

    def _forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [np.atleast_2d(x)]
        h = activations[0]
        for layer in range(self.num_layers - 1):
            h = np.maximum(h @ self.weights[layer] + self.biases[layer], 0.0)
            activations.append(h)
        out = h @ self.weights[-1] + self.biases[-1]
        return out[:, 0], activations

    def train_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        state: AdamState,
        learning_rate: float = 1e-3,
        underestimation_penalty: float = 1.0,
        weight_decay: float = 0.0,
    ) -> float:
        """One Adam step on (possibly asymmetric) squared error.

        ``underestimation_penalty`` > 1 weights samples where the prediction
        falls below the target -- the calibration protocol "imposes more
        significant penalties for underestimations".
        Returns the batch's mean weighted squared error.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64)
        n = x.shape[0]
        predictions, activations = self._forward_cached(x)
        residual = predictions - y
        weights = np.where(residual < 0, underestimation_penalty, 1.0)
        loss = float(np.mean(weights * residual**2))

        # Backward pass.
        grad_out = (2.0 * weights * residual / n)[:, np.newaxis]
        grads_w: list[np.ndarray] = [np.empty(0)] * self.num_layers
        grads_b: list[np.ndarray] = [np.empty(0)] * self.num_layers
        grads_w[-1] = activations[-1].T @ grad_out
        grads_b[-1] = grad_out.sum(axis=0)
        upstream = grad_out @ self.weights[-1].T
        for layer in range(self.num_layers - 2, -1, -1):
            upstream = upstream * (activations[layer + 1] > 0)
            grads_w[layer] = activations[layer].T @ upstream
            grads_b[layer] = upstream.sum(axis=0)
            if layer > 0:
                upstream = upstream @ self.weights[layer].T

        params = self.parameters()
        grads = [*grads_w, *grads_b]
        if weight_decay > 0.0:
            grads = [g + weight_decay * p for g, p in zip(grads, params)]
        self._adam_update(params, grads, state, learning_rate)
        return loss

    @staticmethod
    def _adam_update(
        params: list[np.ndarray],
        grads: list[np.ndarray],
        state: AdamState,
        learning_rate: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if not state.m:
            fresh = AdamState.like(params)
            state.m, state.v = fresh.m, fresh.v
        state.t += 1
        for i, (param, grad) in enumerate(zip(params, grads)):
            state.m[i] = beta1 * state.m[i] + (1 - beta1) * grad
            state.v[i] = beta2 * state.v[i] + (1 - beta2) * grad**2
            m_hat = state.m[i] / (1 - beta1**state.t)
            v_hat = state.v[i] / (1 - beta2**state.t)
            param -= learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        payload: dict[str, np.ndarray] = {}
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            payload[f"w{i}"] = w
            payload[f"b{i}"] = b
        return payload

    @classmethod
    def from_state_dict(cls, payload: dict[str, np.ndarray]) -> "MLP":
        model = cls.__new__(cls)
        model.weights = []
        model.biases = []
        i = 0
        while f"w{i}" in payload:
            model.weights.append(np.asarray(payload[f"w{i}"], dtype=np.float64))
            model.biases.append(np.asarray(payload[f"b{i}"], dtype=np.float64))
            i += 1
        if not model.weights:
            raise ModelError("state dict contains no layers")
        return model
