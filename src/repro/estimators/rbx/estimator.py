"""RBX NDV estimation inside the query path.

The Model Loader keeps a row sample per table (the paper's "small sample
(under 10 million rows) ... converted into a DataFrame format").  At query
time the estimator filters the sample with the query's predicates, builds
the *sample-profile* feature, and runs the network forward pass -- matrix
multiplications only, matching the paper's ``estimate`` interface.

Per-column calibrated weights can be installed so that fine-tuned
parameters "adjust and calibrate only the columns that have been identified
as problematic" while the universal checkpoint keeps serving everything
else.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import NdvEstimator
from repro.estimators.frequency import frequency_profile
from repro.estimators.rbx.network import MLP
from repro.estimators.rbx.profile import clamp_estimate, rbx_features, target_to_ndv
from repro.sql.query import AggKind, CardQuery
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.rng import derive_rng
from repro.workloads.predicates import table_mask

#: Default per-table sample size held in memory for featurization.
DEFAULT_SAMPLE_ROWS = 20_000


class RBXNdvEstimator(NdvEstimator):
    """The learned NDV estimator serving COUNT-DISTINCT queries."""

    name = "rbx"

    def __init__(
        self,
        catalog: Catalog,
        model: MLP,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
        seed: int = 11,
    ):
        self.catalog = catalog
        self.model = model
        #: calibrated weights installed per (table, column) by the Monitor
        self.calibrated: dict[tuple[str, str], MLP] = {}
        self._samples: dict[str, Table] = {}
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            rng = derive_rng(seed, "rbx-sample", table_name)
            take = min(sample_rows, len(table))
            self._samples[table_name] = table.sample(take, rng)

    # ------------------------------------------------------------------
    def sample_for(self, table: str) -> Table:
        try:
            return self._samples[table]
        except KeyError:
            raise EstimationError(f"no sample loaded for table {table!r}") from None

    def install_calibrated(self, table: str, column: str, model: MLP) -> None:
        """Install fine-tuned weights for one problematic column."""
        self.calibrated[(table, column)] = model

    def model_for(self, table: str, column: str) -> MLP:
        return self.calibrated.get((table, column), self.model)

    # ------------------------------------------------------------------
    def estimate_ndv(self, query: CardQuery) -> float:
        if query.agg.kind is not AggKind.COUNT_DISTINCT:
            raise EstimationError("estimate_ndv requires COUNT DISTINCT")
        assert query.agg.table is not None and query.agg.column is not None
        table_name = query.agg.table
        column = query.agg.column
        sample = self.sample_for(table_name)
        mask = table_mask(sample, query)
        values = sample.column(column).values[mask]
        matched_fraction = float(mask.sum()) / max(1, len(sample))
        population = max(
            1, int(round(len(self.catalog.table(table_name)) * matched_fraction))
        )
        profile = frequency_profile(values, population_size=population)
        if profile.sample_size == 0:
            return 1.0
        network = self.model_for(table_name, column)
        raw = target_to_ndv(float(network.forward(rbx_features(profile))[0]))
        return clamp_estimate(raw, profile)

    def estimation_overhead(self, query: CardQuery) -> float:
        # Filtering the in-memory sample plus one tiny forward pass.  The
        # sample-profile computation is the dominant term, as the paper
        # notes when motivating its refinement.
        sample = self.sample_for(query.tables[0])
        return 5e-5 * len(sample) + 0.05

    def group_ndv(self, query: CardQuery) -> float:
        """Estimated distinct group-key combinations for a GROUP BY query.

        Used for hash-table pre-sizing: the per-key NDVs are estimated by
        RBX on the filtered sample of each key's table; multi-key NDV is
        estimated on the concatenated key sample directly.
        """
        if not query.group_by:
            raise EstimationError("query has no GROUP BY keys")
        estimates: list[float] = []
        by_table: dict[str, list[str]] = {}
        for table, column in query.group_by:
            by_table.setdefault(table, []).append(column)
        for table_name, columns in by_table.items():
            sample = self.sample_for(table_name)
            mask = table_mask(sample, query.single_table_subquery(table_name))
            if len(columns) == 1:
                values = sample.column(columns[0]).values[mask]
            else:
                # Combine key columns into one composite value stream.
                stacked = np.stack(
                    [sample.column(c).values[mask].astype(np.int64) for c in columns]
                )
                if stacked.shape[1] == 0:
                    estimates.append(1.0)
                    continue
                _uniq, inverse = np.unique(stacked, axis=1, return_inverse=True)
                values = inverse
            matched_fraction = float(mask.sum()) / max(1, len(sample))
            population = max(
                1,
                int(round(len(self.catalog.table(table_name)) * matched_fraction)),
            )
            profile = frequency_profile(values, population_size=population)
            if profile.sample_size == 0:
                estimates.append(1.0)
                continue
            network = self.model_for(table_name, columns[0])
            raw = target_to_ndv(float(network.forward(rbx_features(profile))[0]))
            estimates.append(clamp_estimate(raw, profile))
        # Keys on different tables multiply (bounded by the join size the
        # caller knows); same-table multi-key NDV was handled jointly above.
        result = 1.0
        for est in estimates:
            result *= est
        return max(1.0, result)
