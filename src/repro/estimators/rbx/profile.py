"""RBX featurization: frequency profile -> fixed-size feature vector.

The feature vector concatenates the log-damped frequency profile (how many
values occur once, twice, ... up to :data:`PROFILE_LENGTH` times in the
sample) with sample-level summary statistics.  Targets are log-NDV, so the
network's squared error approximates a log-Q-Error objective.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.frequency import FrequencyProfile

#: How many exact frequencies the profile keeps (f_1 .. f_100).
PROFILE_LENGTH = 100

#: Total feature dimension: profile + 6 summary statistics.
RBX_FEATURE_DIM = PROFILE_LENGTH + 6


def rbx_features(profile: FrequencyProfile) -> np.ndarray:
    """Feature vector of one frequency profile."""
    counts = np.zeros(PROFILE_LENGTH, dtype=np.float64)
    take = min(PROFILE_LENGTH, profile.counts.size)
    counts[:take] = profile.counts[:take]
    features = np.concatenate(
        [
            np.log1p(counts),
            [
                np.log1p(profile.sample_size),
                np.log1p(profile.population_size),
                np.log1p(profile.sample_distinct),
                np.log1p(profile.tail_distinct),
                np.log1p(profile.tail_rows),
                profile.sampling_rate,
            ],
        ]
    )
    return features


def ndv_to_target(ndv: float) -> float:
    """Training target for a true NDV."""
    return float(np.log1p(max(ndv, 0.0)))


def target_to_ndv(target: float) -> float:
    """Inverse of :func:`ndv_to_target`."""
    return float(np.expm1(target))


def clamp_estimate(estimate: float, profile: FrequencyProfile) -> float:
    """Clamp a raw network output to the feasible NDV range.

    The true NDV is at least the sample's distinct count and at most the
    population size; clamping enforces these hard bounds exactly as a
    production integration must (a model is never allowed to output an
    infeasible hash-table size).
    """
    lower = float(max(profile.sample_distinct, 1))
    upper = float(max(profile.population_size, lower))
    return float(np.clip(estimate, lower, upper))
