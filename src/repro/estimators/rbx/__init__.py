"""RBX: the workload-independent learned NDV estimator.

Following Wu et al. (VLDB 2022, "Learning to be a statistician"), RBX treats
NDV as a derivable data property: a small neural network (seven weight
layers here, as in the paper's description of ByteCard's deployment) learns
the mapping from a sample's *frequency profile* to the population's number
of distinct values.  Because the features are distribution-level statistics
rather than workload artifacts, one offline training run on synthetic
distributions serves every dataset; only anomalous columns (exceptionally
high NDV) receive calibration fine-tuning with an asymmetric loss that
penalizes underestimation (paper Section 5.2.2).
"""

from repro.estimators.rbx.network import MLP, AdamState
from repro.estimators.rbx.profile import rbx_features, RBX_FEATURE_DIM
from repro.estimators.rbx.training import (
    SyntheticColumnSampler,
    train_rbx,
    fine_tune_rbx,
)
from repro.estimators.rbx.estimator import RBXNdvEstimator

__all__ = [
    "MLP",
    "AdamState",
    "rbx_features",
    "RBX_FEATURE_DIM",
    "SyntheticColumnSampler",
    "train_rbx",
    "fine_tune_rbx",
    "RBXNdvEstimator",
]
