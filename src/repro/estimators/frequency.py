"""Frequency profiles of column samples.

The *frequency profile* of a sample is the vector ``(f_1, f_2, ...)`` where
``f_j`` counts the distinct values that appear exactly ``j`` times in the
sample.  It is the sufficient statistic behind both the classical heuristic
NDV estimators (Chao, GEE) and RBX's learned estimator, whose paper treats
NDV as "a standard data property" computable from this profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FrequencyProfile:
    """Frequency profile of one sample drawn from a population.

    Attributes
    ----------
    counts:
        ``counts[j-1]`` is ``f_j`` for ``j = 1 .. len(counts)``; frequencies
        above ``len(counts)`` are accumulated into :attr:`tail_distinct` /
        :attr:`tail_rows`.
    sample_size:
        Number of sampled rows.
    population_size:
        Number of rows in the full column.
    """

    counts: np.ndarray
    sample_size: int
    population_size: int
    tail_distinct: int
    tail_rows: int

    @property
    def sample_distinct(self) -> int:
        """Distinct values observed in the sample."""
        return int(self.counts.sum()) + self.tail_distinct

    @property
    def singletons(self) -> int:
        """``f_1``: values seen exactly once."""
        return int(self.counts[0]) if self.counts.size else 0

    @property
    def sampling_rate(self) -> float:
        if self.population_size <= 0:
            return 1.0
        return self.sample_size / self.population_size


def frequency_profile(
    sample: np.ndarray, population_size: int, max_frequency: int = 100
) -> FrequencyProfile:
    """Compute the frequency profile of ``sample``.

    ``max_frequency`` bounds the profile length; heavier hitters are folded
    into the tail statistics (RBX caps the profile the same way to keep the
    feature vector fixed-size).
    """
    if max_frequency <= 0:
        raise ValueError(f"max_frequency must be positive, got {max_frequency}")
    sample = np.asarray(sample)
    if sample.size == 0:
        return FrequencyProfile(
            counts=np.zeros(max_frequency, dtype=np.int64),
            sample_size=0,
            population_size=population_size,
            tail_distinct=0,
            tail_rows=0,
        )
    _values, freqs = np.unique(sample, return_counts=True)
    head = freqs[freqs <= max_frequency]
    tail = freqs[freqs > max_frequency]
    counts = np.bincount(head, minlength=max_frequency + 1)[1:]
    return FrequencyProfile(
        counts=counts.astype(np.int64),
        sample_size=int(sample.size),
        population_size=int(population_size),
        tail_distinct=int(tail.size),
        tail_rows=int(tail.sum()),
    )
