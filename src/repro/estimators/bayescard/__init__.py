"""BayesCard (Wu et al. 2020): the BN baseline ByteCard evolved from.

BayesCard also builds tree-structured Bayesian networks per table, but
handles joins by *denormalization*: each table's model is augmented with
extra fan-out columns describing how many rows of each joined table match
(the paper: "de-normalizing will add extra columns to facilitate later
inference. The number of extra columns will expand rapidly as the number
of join conditions increases").  That augmentation is what makes its
training slower and its models larger than ByteCard's (Table 3), and its
expectation-based join inference is what "is prone to underestimate join
sizes with substantial true cardinalities" (Section 7) -- both behaviours
this implementation reproduces.
"""

from repro.estimators.bayescard.estimator import BayesCardEstimator, train_bayescard

__all__ = ["BayesCardEstimator", "train_bayescard"]
