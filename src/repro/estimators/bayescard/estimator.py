"""BayesCard: fanout-augmented Bayesian networks.

Training denormalizes the join schema into each table: for every join edge
touching table ``T`` a *fan-out column* is appended (per-row count of
matching rows on the other side) and the Chow-Liu BN is learned over
filter columns plus all fan-out columns.  Join-size inference multiplies
expected fan-outs down the query's join tree::

    |Q| = |root| * E_root[ 1(filters) * prod_children fanout_child * F(child) ]

with each expectation read off the table's BN, and child factors computed
over the child's *unconditioned* row distribution -- the approximation
(matched rows look like average rows) responsible for BayesCard's
documented join-size underestimation under fan-out skew.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import CountEstimator
from repro.estimators.bn.estimator import _selectivity_with_or_groups
from repro.estimators.bn.model import TreeBayesNet, fit_tree_bn
from repro.estimators.jointree import JoinTree, build_join_tree
from repro.sql.query import CardQuery, JoinCondition
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table


def _fanout_column_name(edge: JoinCondition, table: str) -> str:
    other, other_col = (
        (edge.right_table, edge.right_column)
        if table == edge.left_table
        else (edge.left_table, edge.left_column)
    )
    return f"__fanout__{other}__{other_col}"


def _fanout_values(
    own_keys: np.ndarray, other_keys: np.ndarray
) -> np.ndarray:
    """Per-row match counts of ``own_keys`` against ``other_keys``."""
    uniques, counts = np.unique(other_keys, return_counts=True)
    positions = np.searchsorted(uniques, own_keys)
    positions = np.clip(positions, 0, max(0, uniques.size - 1))
    matched = uniques.size > 0
    if not matched:
        return np.zeros(own_keys.size, dtype=np.int64)
    hit = uniques[positions] == own_keys
    return np.where(hit, counts[positions], 0).astype(np.int64)


class BayesCardEstimator(CountEstimator):
    """Per-table fanout-augmented BNs with expectation-based join inference.

    Two-way joins covered by a denormalized edge BN are answered from it
    directly; deeper joins compose expected fan-outs down the join tree.
    """

    name = "bayescard"

    def __init__(
        self,
        catalog: Catalog,
        models: dict[str, TreeBayesNet],
        fanout_columns: dict[tuple[str, JoinCondition], str],
        fanout_means: dict[tuple[str, str], np.ndarray],
        edge_models: dict[frozenset[str], tuple[TreeBayesNet, int]] | None = None,
    ):
        self.catalog = catalog
        self.models = models
        self._fanout_columns = fanout_columns
        self._fanout_means = fanout_means
        #: denormalized per-join-edge BNs: frozenset{A, B} -> (model, rows)
        self.edge_models = edge_models or {}

    # ------------------------------------------------------------------
    def model_for(self, table: str) -> TreeBayesNet:
        try:
            return self.models[table]
        except KeyError:
            raise EstimationError(f"no BayesCard model for table {table!r}") from None

    def _local_selectivity(self, query: CardQuery, table: str) -> float:
        model = self.model_for(table)
        base = [p for p in query.predicates if p.table == table]
        groups = [
            [p for p in group if p.table == table]
            for group in query.or_groups
            if any(p.table == table for p in group)
        ]
        return _selectivity_with_or_groups(model, base, groups)

    def _expected_fanout(
        self, query: CardQuery, table: str, edge: JoinCondition
    ) -> float:
        """``E[fanout_edge * 1(filters on table)]`` from the table's BN."""
        column = self._fanout_columns.get((table, edge.normalized()))
        if column is None:
            raise EstimationError(
                f"table {table!r} has no fan-out column for edge {edge}"
            )
        model = self.model_for(table)
        predicates = [p for p in query.predicates if p.table == table]
        distribution = model.distribution(column, predicates)
        means = self._fanout_means[(table, column)]
        return float(np.dot(distribution, means))

    # ------------------------------------------------------------------
    def selectivity(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError("selectivity() is defined for single tables")
        return self._local_selectivity(query, query.tables[0])

    def estimate_count(self, query: CardQuery) -> float:
        if query.is_single_table():
            table = query.tables[0]
            rows = len(self.catalog.table(table))
            return self._local_selectivity(query, table) * rows
        if len(query.tables) == 2 and not query.or_groups:
            edge_estimate = self._edge_estimate(query)
            if edge_estimate is not None:
                return edge_estimate
        tree = build_join_tree(query)
        root = query.tables[0]
        rows = len(self.catalog.table(root))
        return max(0.0, rows * self._subtree_factor(query, tree, root))

    def _edge_estimate(self, query: CardQuery) -> float | None:
        """Answer a two-way join from its denormalized BN, if trained."""
        from repro.sql.query import TablePredicate

        entry = self.edge_models.get(frozenset(query.tables))
        if entry is None:
            return None
        model, join_rows = entry
        translated = []
        for pred in query.predicates:
            column = f"{pred.table}__{pred.column}"
            if column not in model.columns:
                return None  # predicate outside the denormalized scope
            translated.append(
                TablePredicate(model.table_name, column, pred.op, pred.value)
            )
        return model.selectivity(translated) * join_rows

    def _subtree_factor(
        self, query: CardQuery, tree: JoinTree, table: str
    ) -> float:
        """Expected joined tuples contributed per row of ``table``."""
        selectivity = self._local_selectivity(query, table)
        factor = selectivity
        for child, join in tree[table]:
            expected = self._expected_fanout(query, table, join)
            conditional = expected / selectivity if selectivity > 0.0 else 0.0
            # Matched child rows are assumed average child rows: the child's
            # factor is evaluated over its unconditioned row distribution.
            factor *= conditional * self._subtree_factor(query, tree, child)
        return factor

    def estimation_overhead(self, query: CardQuery) -> float:
        return 0.04 * len(query.tables) + 0.02 * len(query.joins)

    @property
    def nbytes(self) -> int:
        total = sum(model.nbytes for model in self.models.values())
        total += sum(int(m.nbytes) for m in self._fanout_means.values())
        total += sum(model.nbytes for model, _rows in self.edge_models.values())
        return total


def train_bayescard(
    catalog: Catalog,
    filter_columns: dict[str, list[str]],
    max_bins: int = 64,
    sample_rows: int | None = None,
    denormalized_sample_rows: int = 120_000,
    train_edge_models: bool = True,
) -> BayesCardEstimator:
    """Train BayesCard: denormalize fan-outs + join edges, fit BNs.

    The per-edge denormalized BNs are the expensive part -- every join edge
    is materialized (sampled at ``denormalized_sample_rows``) and modeled
    over the union of both sides' filter columns, which is what makes
    BayesCard's Table 3 training time and model size exceed ByteCard's.
    """
    models: dict[str, TreeBayesNet] = {}
    fanout_columns: dict[tuple[str, JoinCondition], str] = {}
    fanout_means: dict[tuple[str, str], np.ndarray] = {}

    for table_name in catalog.table_names():
        base_columns = filter_columns.get(table_name, [])
        table = catalog.table(table_name)
        extra: list[Column] = []
        extra_names: list[str] = []
        for edge in catalog.join_schema.edges_for(table_name):
            condition = JoinCondition(
                edge.left_table, edge.left_column, edge.right_table, edge.right_column
            ).normalized()
            own_column = condition.side_for(table_name)
            other_table, other_column = (
                (condition.right_table, condition.right_column)
                if table_name == condition.left_table
                else (condition.left_table, condition.left_column)
            )
            fanout = _fanout_values(
                table.column(own_column).values,
                catalog.table(other_table).column(other_column).values,
            )
            name = _fanout_column_name(condition, table_name)
            extra.append(Column.from_ints(name, fanout))
            extra_names.append(name)
            fanout_columns[(table_name, condition)] = name
        if not base_columns and not extra_names:
            continue
        augmented = Table(
            table_name,
            [table.column(c) for c in table.column_names()] + extra,
            block_size=table.block_size,
        )
        modeled = list(dict.fromkeys(base_columns + extra_names))
        model = fit_tree_bn(
            augmented, modeled, max_bins=max_bins, sample_rows=sample_rows
        )
        models[table_name] = model
        # Per-bin means of each fan-out column, for expectation queries.
        for name, column in zip(extra_names, extra):
            disc = model.discretizers[name]
            bins = disc.bin_of(column.values)
            sums = np.zeros(disc.num_bins)
            np.add.at(sums, bins, column.values.astype(np.float64))
            counts = np.maximum(
                np.bincount(bins, minlength=disc.num_bins).astype(np.float64), 1.0
            )
            fanout_means[(table_name, name)] = sums / counts

    edge_models: dict[frozenset[str], tuple[TreeBayesNet, int]] = {}
    if train_edge_models:
        edge_models = _train_edge_models(
            catalog, filter_columns, max_bins, denormalized_sample_rows
        )
    return BayesCardEstimator(
        catalog, models, fanout_columns, fanout_means, edge_models
    )


def _train_edge_models(
    catalog: Catalog,
    filter_columns: dict[str, list[str]],
    max_bins: int,
    denormalized_sample_rows: int,
) -> dict[frozenset[str], tuple[TreeBayesNet, int]]:
    """One BN per join edge over the (sampled) denormalized relation."""
    from repro.estimators.deepdb.estimator import _denormalize
    from repro.utils.rng import derive_rng

    rng = derive_rng(17, "bayescard-denorm")
    edge_models: dict[frozenset[str], tuple[TreeBayesNet, int]] = {}
    for edge in catalog.join_schema:
        left = catalog.table(edge.left_table)
        right = catalog.table(edge.right_table)
        left_cols = filter_columns.get(edge.left_table, [])
        right_cols = filter_columns.get(edge.right_table, [])
        if not left_cols and not right_cols:
            continue
        data, join_rows = _denormalize(
            left.column(edge.left_column).values,
            right.column(edge.right_column).values,
            np.stack(
                [left.column(c).values.astype(np.float64) for c in left_cols],
                axis=1,
            )
            if left_cols
            else np.empty((len(left), 0)),
            np.stack(
                [right.column(c).values.astype(np.float64) for c in right_cols],
                axis=1,
            )
            if right_cols
            else np.empty((len(right), 0)),
            cap=denormalized_sample_rows,
            rng=rng,
        )
        if data.shape[0] == 0:
            continue
        names = [f"{edge.left_table}__{c}" for c in left_cols] + [
            f"{edge.right_table}__{c}" for c in right_cols
        ]
        edge_table = Table.from_arrays(
            f"edge__{edge.left_table}__{edge.right_table}",
            {name: data[:, i] for i, name in enumerate(names)},
        )
        model = fit_tree_bn(edge_table, names, max_bins=max_bins)
        edge_models[frozenset((edge.left_table, edge.right_table))] = (
            model,
            join_rows,
        )
    return edge_models
