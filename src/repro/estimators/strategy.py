"""Estimation strategies: adapter, fallback chains, and the query router.

The optimizer and the serving core speak only the
:class:`~repro.estimators.base.EstimationStrategy` protocol.  This module
supplies everything that turns concrete estimators into routable
strategies:

* :func:`as_strategy` / :class:`EstimatorStrategy` -- adapts any
  duck-typed :class:`CountEstimator` to the protocol.  This adapter is the
  **single remaining home of ``getattr`` capability discovery**: it probes
  once at construction and publishes the result as the protocol's
  capability flags, so consumers never probe again;
* :class:`LearnedStrategy` / :class:`TraditionalStrategy` /
  :class:`UpperBoundStrategy` -- the three named strategies of the
  framework: the learned BN/FactorJoin/RBX stack (via
  :class:`repro.core.ByteCard`), the Selinger/histogram fallback, and the
  UES-style never-underestimate bound for risk-averse routing;
* :class:`StrategyChain` -- a deterministic fallback chain: links are
  tried in order, an :class:`~repro.errors.EstimationError` (or
  ``NotImplementedError``) falls through to the next link, and answers
  from a non-head link carry ``fallback-<strategy>`` provenance;
* :class:`StrategyRouter` -- picks a chain per query class (table set,
  predicate shape, join-ness, tenant/risk tag) via ordered
  :class:`RoutingRule`\\ s, derates strategies whose observed error mass
  (runtime feedback or monitor assessments) exceeds a budget, and is
  itself a strategy -- drop it into an optimizer, a serving core, or an
  engine suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DetailError, EstimationError
from repro.estimators.base import (
    CountEstimator,
    EstimateDetail,
    EstimationStrategy,
)
from repro.estimators.ues import UpperBoundEstimator
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import CardQuery

__all__ = [
    "EstimatorStrategy",
    "LearnedStrategy",
    "QueryClass",
    "RoutingRule",
    "StrategyChain",
    "StrategyRouter",
    "TraditionalStrategy",
    "UpperBoundStrategy",
    "as_strategy",
    "classify_query",
]


def as_strategy(
    estimator: CountEstimator, strategy_id: str | None = None
) -> EstimationStrategy:
    """The protocol view of an estimator (identity for strategies)."""
    if isinstance(estimator, EstimationStrategy):
        if strategy_id is not None and strategy_id != estimator.strategy_id:
            raise ValueError(
                f"estimator is already strategy {estimator.strategy_id!r}; "
                f"cannot re-register as {strategy_id!r}"
            )
        return estimator
    return EstimatorStrategy(estimator, strategy_id=strategy_id)


def _as_detail(result) -> EstimateDetail:
    """Normalize a duck-typed detail result ((value, source) tuples from
    the serving tier, ServedEstimate-likes with .value/.source)."""
    if isinstance(result, EstimateDetail):
        return result
    if isinstance(result, tuple):
        value, source = result
        return EstimateDetail(float(value), str(source))
    return EstimateDetail(float(result.value), str(result.source))


class EstimatorStrategy(EstimationStrategy):
    """Adapter: any :class:`CountEstimator` behind the strategy protocol.

    Capability discovery happens **here, once, at construction** -- the
    probes the optimizer and serving core used to run per call are folded
    into the protocol's explicit flags.  Optional methods of the underlying
    estimator (``shard_selectivity``, ``estimate_count_batch``,
    ``install_plan_cache``) are bound straight through as instance
    attributes, so identities like
    ``strategy.shard_selectivity == bytecard.shard_selectivity`` hold.
    """

    def __init__(self, estimator: CountEstimator, strategy_id: str | None = None):
        self.estimator = estimator
        self.strategy_id = strategy_id or getattr(estimator, "name", "estimator")
        self.name = self.strategy_id
        self.catalog = getattr(estimator, "catalog", None)
        self._selectivity_detail_fn = getattr(
            estimator, "selectivity_detail", None
        )
        self._count_detail_fn = getattr(estimator, "estimate_count_detail", None)
        batch_fn = getattr(estimator, "estimate_count_batch", None)
        self.supports_batching = callable(batch_fn)
        if self.supports_batching:
            self.estimate_count_batch = batch_fn
        self.supports_join_batching = bool(
            getattr(estimator, "supports_join_batching", False)
        )
        shard_fn = getattr(estimator, "shard_selectivity", None)
        self.supports_shard_routing = callable(shard_fn)
        if self.supports_shard_routing:
            self.shard_selectivity = shard_fn
        install_fn = getattr(estimator, "install_plan_cache", None)
        self.supports_plan_cache = callable(install_fn)
        if self.supports_plan_cache:
            self.install_plan_cache = install_fn

    # -- plain task interface ------------------------------------------
    def estimate_count(self, query: CardQuery) -> float:
        return self.estimator.estimate_count(query)

    def selectivity(self, query: CardQuery) -> float:
        return self.estimator.selectivity(query)

    def estimation_overhead(self, query: CardQuery) -> float:
        return self.estimator.estimation_overhead(query)

    # -- provenance-carrying interface ---------------------------------
    def selectivity_detail(self, query: CardQuery) -> EstimateDetail:
        if self._selectivity_detail_fn is None:
            return EstimateDetail(float(self.estimator.selectivity(query)), "direct")
        try:
            return _as_detail(self._selectivity_detail_fn(query))
        except DetailError:
            raise
        except (EstimationError, NotImplementedError) as exc:
            raise DetailError(f"selectivity_detail failed: {exc}") from exc

    def estimate_count_detail(self, query: CardQuery) -> EstimateDetail:
        if self._count_detail_fn is None:
            return EstimateDetail(
                float(self.estimator.estimate_count(query)), "direct"
            )
        try:
            return _as_detail(self._count_detail_fn(query))
        except DetailError:
            raise
        except (EstimationError, NotImplementedError) as exc:
            raise DetailError(f"estimate_count_detail failed: {exc}") from exc

    @property
    def last_pass_stats(self):
        return getattr(self.estimator, "last_pass_stats", None)


class LearnedStrategy(EstimatorStrategy):
    """The learned stack (BN + FactorJoin + RBX) as a named strategy."""

    def __init__(self, estimator: CountEstimator):
        super().__init__(estimator, strategy_id="learned")


class TraditionalStrategy(EstimatorStrategy):
    """The Selinger/histogram fallback as a named strategy."""

    def __init__(self, estimator_or_catalog):
        if not isinstance(estimator_or_catalog, CountEstimator):
            from repro.estimators.traditional.selinger import SelingerEstimator

            estimator_or_catalog = SelingerEstimator(estimator_or_catalog)
        super().__init__(estimator_or_catalog, strategy_id="traditional")


class UpperBoundStrategy(EstimatorStrategy):
    """The UES-style never-underestimate bound as a named strategy."""

    def __init__(self, estimator_or_catalog):
        if not isinstance(estimator_or_catalog, UpperBoundEstimator):
            estimator_or_catalog = UpperBoundEstimator(estimator_or_catalog)
        super().__init__(estimator_or_catalog, strategy_id="upper_bound")


class StrategyChain(EstimationStrategy):
    """Ordered, deterministic fallback across strategies.

    Each call tries the links in order; a link failing with
    :class:`EstimationError` (:class:`DetailError` included -- a broken
    provenance path must not take the whole chain down) or
    ``NotImplementedError`` falls through to the next.  Answers from the
    head keep their own provenance; answers from a later link are labelled
    ``fallback-<strategy_id>`` so plan provenance shows exactly which
    strategy really answered.  Fallthroughs are counted per abandoned
    strategy in ``strategy_fallthroughs_total``.
    """

    def __init__(self, strategies, registry: MetricsRegistry | None = None):
        links = tuple(as_strategy(s) for s in strategies)
        if not links:
            raise ValueError("a strategy chain needs at least one link")
        self.links = links
        self.strategy_id = ">".join(link.strategy_id for link in links)
        self.name = self.strategy_id
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self.catalog = next(
            (link.catalog for link in links if link.catalog is not None), None
        )
        self.supports_batching = any(link.supports_batching for link in links)
        #: join batches are answered by whichever link takes the batch; the
        #: head decides whether batching joins is worthwhile at all
        self.supports_join_batching = links[0].supports_join_batching
        self.supports_shard_routing = any(
            link.supports_shard_routing for link in links
        )
        self.supports_plan_cache = any(link.supports_plan_cache for link in links)

    def _note_fallthrough(self, link: EstimationStrategy) -> None:
        self.registry.counter(
            "strategy_fallthroughs_total", strategy=link.strategy_id
        ).inc()

    def _exhausted(self, last: Exception | None) -> EstimationError:
        error = EstimationError(
            f"no strategy in chain {self.strategy_id!r} answered"
        )
        error.__cause__ = last
        return error

    # -- plain task interface ------------------------------------------
    def estimate_count(self, query: CardQuery) -> float:
        last: Exception | None = None
        for link in self.links:
            try:
                return float(link.estimate_count(query))
            except (EstimationError, NotImplementedError) as exc:
                last = exc
                self._note_fallthrough(link)
        raise self._exhausted(last)

    def selectivity(self, query: CardQuery) -> float:
        last: Exception | None = None
        for link in self.links:
            try:
                return float(link.selectivity(query))
            except (EstimationError, NotImplementedError) as exc:
                last = exc
                self._note_fallthrough(link)
        raise self._exhausted(last)

    def estimation_overhead(self, query: CardQuery) -> float:
        return self.links[0].estimation_overhead(query)

    # -- provenance-carrying interface ---------------------------------
    def selectivity_detail(self, query: CardQuery) -> EstimateDetail:
        last: Exception | None = None
        for index, link in enumerate(self.links):
            try:
                detail = link.selectivity_detail(query)
            except (EstimationError, NotImplementedError) as exc:
                last = exc
                self._note_fallthrough(link)
                continue
            if index == 0:
                return detail
            return EstimateDetail(detail.value, f"fallback-{link.strategy_id}")
        raise self._exhausted(last)

    def estimate_count_detail(self, query: CardQuery) -> EstimateDetail:
        last: Exception | None = None
        for index, link in enumerate(self.links):
            try:
                detail = link.estimate_count_detail(query)
            except (EstimationError, NotImplementedError) as exc:
                last = exc
                self._note_fallthrough(link)
                continue
            if index == 0:
                return detail
            return EstimateDetail(detail.value, f"fallback-{link.strategy_id}")
        raise self._exhausted(last)

    # -- batching -------------------------------------------------------
    def estimate_count_batch(
        self, table: str, queries: list[CardQuery]
    ) -> list[float]:
        last: Exception | None = None
        for link in self.links:
            try:
                return link.estimate_count_batch(table, queries)
            except (EstimationError, NotImplementedError) as exc:
                last = exc
                self._note_fallthrough(link)
        raise self._exhausted(last)

    # -- shard routing --------------------------------------------------
    def shard_selectivity(
        self, table: str, shard: int, query: CardQuery
    ) -> float | None:
        for link in self.links:
            if not link.supports_shard_routing:
                continue
            try:
                value = link.shard_selectivity(table, shard, query)
            except EstimationError:
                continue
            if value is not None:
                return value
        return None

    # -- plan-cache integration ----------------------------------------
    def install_plan_cache(self, cache) -> None:
        for link in self.links:
            if link.supports_plan_cache:
                link.install_plan_cache(cache)

    @property
    def last_pass_stats(self):
        return self.links[0].last_pass_stats


def classify_query(query: CardQuery, risk_tag: str | None = None) -> "QueryClass":
    """The routing features of one query."""
    ops = {pred.op.value for pred in query.predicates}
    for group in query.or_groups:
        ops.update(pred.op.value for pred in group)
    return QueryClass(
        tables=tuple(sorted(query.tables)),
        num_tables=len(query.tables),
        has_joins=bool(query.joins),
        ops=frozenset(ops),
        risk_tag=risk_tag,
    )


@dataclass(frozen=True)
class QueryClass:
    """What the router sees of a query: shape, scope, and tenant tag."""

    tables: tuple[str, ...]
    num_tables: int
    has_joins: bool
    ops: frozenset[str]
    risk_tag: str | None = None


@dataclass(frozen=True)
class RoutingRule:
    """One ordered routing rule: conditions ANDed, first match wins.

    Unset conditions always match.  ``tables``/``ops`` are subset
    conditions (the query's tables/operators must all be covered);
    ``risk_tags`` matches tagged sessions only.
    """

    chain: tuple[str, ...]
    tables: frozenset[str] | None = None
    min_tables: int = 1
    max_tables: int | None = None
    requires_joins: bool | None = None
    ops: frozenset[str] | None = None
    risk_tags: frozenset[str] | None = None

    def __post_init__(self):
        object.__setattr__(self, "chain", tuple(self.chain))
        for name in ("tables", "ops", "risk_tags"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, frozenset(value))

    def matches(self, query_class: QueryClass) -> bool:
        if query_class.num_tables < self.min_tables:
            return False
        if self.max_tables is not None and query_class.num_tables > self.max_tables:
            return False
        if (
            self.requires_joins is not None
            and query_class.has_joins != self.requires_joins
        ):
            return False
        if self.tables is not None and not set(query_class.tables) <= self.tables:
            return False
        if self.ops is not None and not query_class.ops <= self.ops:
            return False
        if self.risk_tags is not None and (
            query_class.risk_tag is None
            or query_class.risk_tag not in self.risk_tags
        ):
            return False
        return True


class StrategyRouter(EstimationStrategy):
    """Per-query-class strategy selection with deterministic fallbacks.

    The router holds named strategies, ordered :class:`RoutingRule`\\ s, and
    an observed-error scorecard.  For each query it classifies the query,
    picks the first matching rule's chain (else the default chain), then
    *derates* the chain head if its accumulated log-Q-Error mass on any of
    the query's tables exceeds ``derate_mass`` -- the head rotates to the
    back and the next strategy leads.  Rotation is deterministic: same
    scorecard, same query, same chain.

    The scorecard learns from three sources: explicit
    :meth:`observe_qerror` calls, the runtime feedback log
    (:meth:`refresh_from_feedback` -- per-strategy error mass of executed
    estimates), and monitor assessments (:meth:`monitor_listener`, wired
    via ``ModelMonitor.add_assessment_listener``).

    A router is itself an :class:`EstimationStrategy`: plugged into an
    optimizer or serving core, every call routes, and
    :meth:`cache_scope` returns the routed chain's identity so re-routing
    never serves a stale cached estimate from another strategy.
    """

    def __init__(
        self,
        strategies=None,
        rules=(),
        default_chain=None,
        registry: MetricsRegistry | None = None,
        feedback=None,
        derate_mass: float | None = None,
        default_risk_tag: str | None = None,
    ):
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self.feedback = feedback
        self.derate_mass = derate_mass
        self.default_risk_tag = default_risk_tag
        self.strategy_id = "router"
        self.name = "router"
        self.rules: list[RoutingRule] = list(rules)
        self._strategies: dict[str, EstimationStrategy] = {}
        self._chains: dict[tuple[str, ...], StrategyChain] = {}
        #: (strategy_id, table) -> accumulated log-Q-Error mass
        self.scorecard: dict[tuple[str, str], float] = {}
        if strategies:
            items = (
                strategies.items()
                if hasattr(strategies, "items")
                else ((None, s) for s in strategies)
            )
            for sid, strategy in items:
                self.register(strategy, strategy_id=sid)
        self.default_chain: tuple[str, ...] = (
            tuple(default_chain) if default_chain else tuple(self._strategies)
        )

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self, strategy: CountEstimator, strategy_id: str | None = None
    ) -> EstimationStrategy:
        """Register one strategy (adapting a bare estimator if needed)."""
        strategy = as_strategy(strategy, strategy_id=strategy_id)
        self._strategies[strategy.strategy_id] = strategy
        if self.catalog is None and strategy.catalog is not None:
            self.catalog = strategy.catalog
        self.supports_batching = self.supports_batching or strategy.supports_batching
        self.supports_join_batching = (
            self.supports_join_batching or strategy.supports_join_batching
        )
        self.supports_shard_routing = (
            self.supports_shard_routing or strategy.supports_shard_routing
        )
        self.supports_plan_cache = (
            self.supports_plan_cache or strategy.supports_plan_cache
        )
        self._chains.clear()
        return strategy

    def strategies(self) -> dict[str, EstimationStrategy]:
        return dict(self._strategies)

    def chain(self, ids) -> StrategyChain:
        """The (cached) chain over the named strategies, in order."""
        key = tuple(ids)
        chain = self._chains.get(key)
        if chain is None:
            missing = [sid for sid in key if sid not in self._strategies]
            if missing:
                raise KeyError(f"unknown strategies {missing!r}")
            chain = StrategyChain(
                [self._strategies[sid] for sid in key], registry=self.registry
            )
            self._chains[key] = chain
        return chain

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def classify(self, query: CardQuery, risk_tag: str | None = None) -> QueryClass:
        return classify_query(
            query, risk_tag if risk_tag is not None else self.default_risk_tag
        )

    def chain_for(
        self, query: CardQuery, risk_tag: str | None = None
    ) -> StrategyChain:
        """The fallback chain this query routes to."""
        query_class = self.classify(query, risk_tag)
        ids = self.default_chain
        for rule in self.rules:
            if rule.matches(query_class):
                ids = rule.chain
                break
        ids = self._derate(ids, query_class)
        if ids and self.registry.enabled:
            self.registry.counter("strategy_routed_total", strategy=ids[0]).inc()
        return self.chain(ids)

    def _derate(
        self, ids: tuple[str, ...], query_class: QueryClass
    ) -> tuple[str, ...]:
        if self.derate_mass is None or len(ids) < 2:
            return ids
        rotated = list(ids)
        for _ in range(len(rotated) - 1):
            head_mass = max(
                (self.error_mass(rotated[0], t) for t in query_class.tables),
                default=0.0,
            )
            if head_mass <= self.derate_mass:
                break
            rotated.append(rotated.pop(0))
            self.registry.counter(
                "strategy_derated_total", strategy=rotated[-1]
            ).inc()
        return tuple(rotated)

    # ------------------------------------------------------------------
    # Learning from observed error
    # ------------------------------------------------------------------
    def error_mass(self, strategy_id: str, table: str) -> float:
        return self.scorecard.get((strategy_id, table), 0.0)

    def observe_qerror(self, strategy_id: str, tables, qerror: float) -> None:
        """Fold one observed Q-Error into the strategy's scorecard."""
        if not math.isfinite(qerror):
            return
        mass = math.log(max(float(qerror), 1.0))
        for table in tables:
            key = (strategy_id, table)
            self.scorecard[key] = self.scorecard.get(key, 0.0) + mass

    def refresh_from_feedback(self, feedback=None) -> int:
        """Replace scorecard entries with the feedback log's per-strategy
        error mass (snapshot semantics: reflects currently retained
        evidence, so healed strategies recover as old records age out).
        A strategy scope recorded as a chain id credits the chain's head
        -- the strategy that actually answered (or failed to).
        Returns the number of entries updated."""
        log = feedback if feedback is not None else self.feedback
        if log is None:
            return 0
        updated = 0
        for (scope, table), mass in log.error_mass_by_strategy().items():
            head = scope.split(">", 1)[0]
            if head in self._strategies:
                self.scorecard[(head, table)] = mass
                updated += 1
        return updated

    def monitor_listener(self, report, kind: str) -> None:
        """``ModelMonitor.add_assessment_listener`` hook: fold per-strategy
        COUNT assessments into the scorecard."""
        strategy = getattr(report, "strategy", "")
        if kind != "count" or not strategy or strategy not in self._strategies:
            return
        for q in report.qerrors:
            self.observe_qerror(strategy, (report.name,), q)

    # ------------------------------------------------------------------
    # EstimationStrategy interface (route, then delegate)
    # ------------------------------------------------------------------
    def estimate_count(self, query: CardQuery) -> float:
        return self.chain_for(query).estimate_count(query)

    def selectivity(self, query: CardQuery) -> float:
        return self.chain_for(query).selectivity(query)

    def selectivity_detail(self, query: CardQuery) -> EstimateDetail:
        return self.chain_for(query).selectivity_detail(query)

    def estimate_count_detail(self, query: CardQuery) -> EstimateDetail:
        return self.chain_for(query).estimate_count_detail(query)

    def estimate_count_batch(
        self, table: str, queries: list[CardQuery]
    ) -> list[float]:
        if not queries:
            return []
        # One batch, one route: micro-batches group by table scope, so the
        # first query's class is representative of the whole batch.
        return self.chain_for(queries[0]).estimate_count_batch(table, queries)

    def shard_selectivity(
        self, table: str, shard: int, query: CardQuery
    ) -> float | None:
        return self.chain_for(query).shard_selectivity(table, shard, query)

    def install_plan_cache(self, cache) -> None:
        for strategy in self._strategies.values():
            if strategy.supports_plan_cache:
                strategy.install_plan_cache(cache)

    def estimation_overhead(self, query: CardQuery) -> float:
        return self.chain_for(query).estimation_overhead(query)

    def cache_scope(self, query: CardQuery) -> str:
        return self.chain_for(query).strategy_id
