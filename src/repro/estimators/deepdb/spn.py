"""Sum-Product Network structure learning and inference.

A compact LearnSPN-style implementation: columns are grouped by pairwise
mutual information (independence test), rows are split with 2-means
clustering, and leaves are histogram distributions over discretized bins.
Probability queries are evaluated bottom-up with per-column evidence
vectors (the same representation the BN uses), so SPN and BN estimates are
directly comparable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.estimators.bn.chow_liu import pairwise_mutual_information
from repro.estimators.bn.discretize import Discretizer


class SPNNode(abc.ABC):
    """A node of the SPN; evaluates P(evidence) over its column scope."""

    scope: tuple[int, ...]

    @abc.abstractmethod
    def probability(self, evidence: list[np.ndarray]) -> float:
        """P(evidence) restricted to this node's scope."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Approximate serialized size of the subtree."""

    def node_count(self) -> int:
        return 1


@dataclass
class LeafNode(SPNNode):
    """Histogram leaf over one column's bins."""

    column: int
    distribution: np.ndarray

    def __post_init__(self) -> None:
        self.scope = (self.column,)

    def probability(self, evidence: list[np.ndarray]) -> float:
        return float(np.dot(self.distribution, evidence[self.column]))

    def size_bytes(self) -> int:
        return int(self.distribution.nbytes)


@dataclass
class ProductNode(SPNNode):
    """Independent column groups: probabilities multiply."""

    children: list[SPNNode]

    def __post_init__(self) -> None:
        self.scope = tuple(sorted(c for child in self.children for c in child.scope))

    def probability(self, evidence: list[np.ndarray]) -> float:
        result = 1.0
        for child in self.children:
            result *= child.probability(evidence)
        return result

    def size_bytes(self) -> int:
        return sum(child.size_bytes() for child in self.children) + 16

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)


@dataclass
class SumNode(SPNNode):
    """Row clusters: probabilities mix by cluster weight."""

    children: list[SPNNode]
    weights: np.ndarray

    def __post_init__(self) -> None:
        if len(self.children) != self.weights.size:
            raise TrainingError("sum node weights do not match children")
        self.scope = tuple(sorted(self.children[0].scope))

    def probability(self, evidence: list[np.ndarray]) -> float:
        return float(
            sum(
                w * child.probability(evidence)
                for w, child in zip(self.weights, self.children)
            )
        )

    def size_bytes(self) -> int:
        return (
            sum(child.size_bytes() for child in self.children)
            + int(self.weights.nbytes)
            + 16
        )

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)


# ---------------------------------------------------------------------------
# Structure learning
# ---------------------------------------------------------------------------
def _two_means(
    data: np.ndarray, rng: np.random.Generator, iterations: int = 8
) -> np.ndarray:
    """Cheap 2-means cluster assignment over standardized rows."""
    std = data.std(axis=0)
    std[std == 0] = 1.0
    normalized = (data - data.mean(axis=0)) / std
    n = normalized.shape[0]
    centers = normalized[rng.choice(n, size=2, replace=False)]
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = np.stack(
            [np.sum((normalized - center) ** 2, axis=1) for center in centers]
        )
        new_assignment = np.argmin(distances, axis=0)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for k in range(2):
            members = normalized[assignment == k]
            if members.shape[0]:
                centers[k] = members.mean(axis=0)
    return assignment


def _independent_groups(
    binned: np.ndarray,
    bin_counts: list[int],
    columns: list[int],
    threshold: float,
) -> list[list[int]]:
    """Connected components of the pairwise-dependence graph."""
    k = len(columns)
    adjacency = [[False] * k for _ in range(k)]
    for i in range(k):
        for j in range(i + 1, k):
            mi = pairwise_mutual_information(
                binned[:, i], binned[:, j], bin_counts[i], bin_counts[j]
            )
            if mi > threshold:
                adjacency[i][j] = adjacency[j][i] = True
    seen = [False] * k
    groups: list[list[int]] = []
    for start in range(k):
        if seen[start]:
            continue
        component = [start]
        seen[start] = True
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for other in range(k):
                if adjacency[node][other] and not seen[other]:
                    seen[other] = True
                    component.append(other)
                    frontier.append(other)
        groups.append([columns[i] for i in sorted(component)])
    return groups


def learn_spn(
    data: np.ndarray,
    discretizers: list[Discretizer],
    min_instances: int = 256,
    independence_threshold: float = 0.05,
    rng: np.random.Generator | None = None,
    _columns: list[int] | None = None,
) -> SPNNode:
    """Learn an SPN over ``data`` (rows x all-columns, raw values).

    ``discretizers`` are fixed per global column index, so recursive calls
    share bin definitions and evidence vectors stay valid everywhere in the
    tree.
    """
    if rng is None:
        rng = np.random.default_rng(3)
    columns = _columns if _columns is not None else list(range(data.shape[1]))
    rows = data.shape[0]
    if rows == 0:
        raise TrainingError("cannot learn an SPN over zero rows")

    def make_leaves(cols: list[int]) -> SPNNode:
        leaves: list[SPNNode] = []
        for col in cols:
            disc = discretizers[col]
            bins = disc.bin_of(data[:, col])
            hist = np.bincount(bins, minlength=disc.num_bins).astype(np.float64)
            hist = (hist + 1e-6) / (hist.sum() + 1e-6 * disc.num_bins)
            leaves.append(LeafNode(col, hist))
        if len(leaves) == 1:
            return leaves[0]
        return ProductNode(leaves)

    if len(columns) == 1 or rows < min_instances:
        return make_leaves(columns)

    binned = np.stack(
        [discretizers[col].bin_of(data[:, col]) for col in columns], axis=1
    )
    bin_counts = [discretizers[col].num_bins for col in columns]
    groups = _independent_groups(binned, bin_counts, columns, independence_threshold)
    if len(groups) > 1:
        children = [
            learn_spn(
                data,
                discretizers,
                min_instances=min_instances,
                independence_threshold=independence_threshold,
                rng=rng,
                _columns=group,
            )
            for group in groups
        ]
        return ProductNode(children)

    assignment = _two_means(data[:, columns], rng)
    sizes = np.bincount(assignment, minlength=2)
    if sizes.min() == 0:
        return make_leaves(columns)
    children = []
    weights = []
    for cluster in range(2):
        member_rows = assignment == cluster
        children.append(
            learn_spn(
                data[member_rows],
                discretizers,
                min_instances=min_instances,
                # Relax the independence test slightly as we recurse, the
                # standard LearnSPN trick to guarantee termination.
                independence_threshold=independence_threshold * 1.15,
                rng=rng,
                _columns=columns,
            )
        )
        weights.append(sizes[cluster] / rows)
    return SumNode(children, np.asarray(weights))
