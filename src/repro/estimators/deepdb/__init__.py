"""DeepDB-style Sum-Product Networks (Hilprecht et al., VLDB 2020).

The data-driven baseline of Table 3.  SPNs recursively partition a table:
*product* nodes split near-independent column groups, *sum* nodes split row
clusters, leaves hold per-column histograms.  For join queries DeepDB trains
SPNs over *denormalized* join relations -- the design decision the paper
calls out as the source of its "longer training times and larger model
sizes", which this implementation reproduces by materializing (sampled)
FK-join denormalizations per join edge.
"""

from repro.estimators.deepdb.spn import SPNNode, LeafNode, SumNode, ProductNode, learn_spn
from repro.estimators.deepdb.estimator import DeepDBEstimator, train_deepdb

__all__ = [
    "SPNNode",
    "LeafNode",
    "SumNode",
    "ProductNode",
    "learn_spn",
    "DeepDBEstimator",
    "train_deepdb",
]
