"""DeepDB estimator: per-table SPNs plus denormalized join SPNs.

Training materializes, for every collected join edge, a (sampled)
denormalized relation joining the two tables, and learns an SPN over it --
the denormalization strategy the paper identifies as the reason for
DeepDB's "longer training times and larger model sizes" in Table 3.

Estimation uses the single-table SPN for one-table queries and combines
join-edge SPNs along the query's join tree: each edge SPN yields the
filtered edge-join cardinality, and overlapping tables are divided out
(an acyclic-join composition, analogous to how DeepDB merges ensembles).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError, TrainingError
from repro.estimators.base import CountEstimator
from repro.estimators.bn.discretize import Discretizer
from repro.estimators.deepdb.spn import SPNNode, learn_spn
from repro.datasets.base import DatasetBundle
from repro.sql.query import CardQuery, TablePredicate
from repro.storage.catalog import Catalog
from repro.utils.rng import derive_rng


class _TableSPN:
    """An SPN over one (possibly denormalized) relation."""

    def __init__(
        self,
        columns: list[tuple[str, str]],
        data: np.ndarray,
        base_rows: int,
        max_bins: int,
        rng: np.random.Generator,
        min_instances: int = 256,
    ):
        self.columns = columns
        self.base_rows = base_rows
        self._index = {key: i for i, key in enumerate(columns)}
        self.discretizers = [
            Discretizer(data[:, i], max_bins=max_bins) for i in range(len(columns))
        ]
        self.root: SPNNode = learn_spn(
            data, self.discretizers, min_instances=min_instances, rng=rng
        )

    def covers(self, predicates: list[TablePredicate]) -> bool:
        return all((p.table, p.column) in self._index for p in predicates)

    def probability(self, predicates: list[TablePredicate]) -> float:
        evidence = [
            np.ones(disc.num_bins) for disc in self.discretizers
        ]
        for pred in predicates:
            index = self._index[(pred.table, pred.column)]
            evidence[index] = evidence[index] * self.discretizers[index].evidence(pred)
        return max(0.0, self.root.probability(evidence))

    def estimate_rows(self, predicates: list[TablePredicate]) -> float:
        return self.probability(predicates) * self.base_rows

    @property
    def nbytes(self) -> int:
        return self.root.size_bytes() + sum(d.nbytes for d in self.discretizers)


class DeepDBEstimator(CountEstimator):
    """SPN-ensemble COUNT estimator."""

    name = "deepdb"

    def __init__(
        self,
        catalog: Catalog,
        table_spns: dict[str, _TableSPN],
        edge_spns: dict[frozenset[str], tuple[_TableSPN, int]],
    ):
        self.catalog = catalog
        self.table_spns = table_spns
        self.edge_spns = edge_spns

    def estimate_count(self, query: CardQuery) -> float:
        if query.or_groups:
            raise EstimationError("DeepDB baseline does not support OR predicates")
        if query.is_single_table():
            table = query.tables[0]
            spn = self.table_spns.get(table)
            if spn is None:
                raise EstimationError(f"no SPN for table {table!r}")
            return spn.estimate_rows(list(query.predicates))
        # Compose edge SPNs along the join tree:
        #   |T1 .. Tk| ~= prod_edges |edge join| / prod_inner tables |T|
        # where each factor is evaluated under the query's predicates.
        estimate = 1.0
        degree: dict[str, int] = {t: 0 for t in query.tables}
        for join in query.joins:
            key = frozenset(join.tables())
            entry = self.edge_spns.get(key)
            if entry is None:
                raise EstimationError(
                    f"no denormalized SPN for join {sorted(key)}"
                )
            spn, join_rows = entry
            predicates = [
                p for p in query.predicates if p.table in key and spn.covers([p])
            ]
            estimate *= max(spn.probability(predicates) * join_rows, 1e-9)
            for table in key:
                degree[table] += 1
        for table, count in degree.items():
            if count > 1:
                spn = self.table_spns[table]
                local = [p for p in query.predicates if p.table == table]
                filtered_rows = max(spn.estimate_rows(local), 1.0)
                estimate /= filtered_rows ** (count - 1)
        return max(estimate, 0.0)

    def estimation_overhead(self, query: CardQuery) -> float:
        return 0.1 * (len(query.tables) + len(query.joins))

    @property
    def nbytes(self) -> int:
        total = sum(spn.nbytes for spn in self.table_spns.values())
        total += sum(spn.nbytes for spn, _rows in self.edge_spns.values())
        return total


def train_deepdb(
    bundle: DatasetBundle,
    max_bins: int = 64,
    denormalized_sample_rows: int = 60_000,
    min_instances: int = 128,
    seed: int = 23,
) -> DeepDBEstimator:
    """Train the DeepDB ensemble: table SPNs + denormalized join-edge SPNs.

    ``min_instances`` controls SPN depth (DeepDB's RDC/row-split recursion
    bottoms out at this cluster size); smaller values grow deeper, larger
    ensembles -- the model-size behaviour Table 3 contrasts with ByteCard.
    """
    catalog = bundle.catalog
    rng = derive_rng(seed, "deepdb")
    table_spns: dict[str, _TableSPN] = {}
    for table_name in catalog.table_names():
        columns = bundle.filter_columns.get(table_name, [])
        if not columns:
            continue
        table = catalog.table(table_name)
        data = np.stack(
            [table.column(c).values.astype(np.float64) for c in columns], axis=1
        )
        table_spns[table_name] = _TableSPN(
            [(table_name, c) for c in columns],
            data,
            base_rows=len(table),
            max_bins=max_bins,
            rng=rng,
            min_instances=min_instances,
        )

    edge_spns: dict[frozenset[str], tuple[_TableSPN, int]] = {}
    for edge in catalog.join_schema:
        left = catalog.table(edge.left_table)
        right = catalog.table(edge.right_table)
        left_cols = bundle.filter_columns.get(edge.left_table, [])
        right_cols = bundle.filter_columns.get(edge.right_table, [])
        if not left_cols and not right_cols:
            continue
        data, join_rows = _denormalize(
            left.column(edge.left_column).values,
            right.column(edge.right_column).values,
            np.stack(
                [left.column(c).values.astype(np.float64) for c in left_cols],
                axis=1,
            )
            if left_cols
            else np.empty((len(left), 0)),
            np.stack(
                [right.column(c).values.astype(np.float64) for c in right_cols],
                axis=1,
            )
            if right_cols
            else np.empty((len(right), 0)),
            cap=denormalized_sample_rows,
            rng=rng,
        )
        if data.shape[0] == 0:
            continue
        columns = [(edge.left_table, c) for c in left_cols] + [
            (edge.right_table, c) for c in right_cols
        ]
        edge_spns[frozenset((edge.left_table, edge.right_table))] = (
            _TableSPN(
                columns,
                data,
                base_rows=join_rows,
                max_bins=max_bins,
                rng=rng,
                min_instances=min_instances,
            ),
            join_rows,
        )
    if not table_spns:
        raise TrainingError("no tables with filter columns to train on")
    return DeepDBEstimator(catalog, table_spns, edge_spns)


def _denormalize(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    left_data: np.ndarray,
    right_data: np.ndarray,
    cap: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Materialize the equi-join of two relations (sampled to ``cap`` rows).

    Returns the joined feature matrix and the *exact* join cardinality (the
    SPN learns the distribution from the sample; the cardinality anchors
    its row scale).
    """
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    join_rows = int(counts.sum())
    if join_rows == 0:
        return np.empty((0, left_data.shape[1] + right_data.shape[1])), 0
    left_index = np.repeat(np.arange(left_keys.size), counts)
    right_index = order[
        np.concatenate([np.arange(a, b) for a, b in zip(lo, hi)])
    ]
    if join_rows > cap:
        pick = rng.choice(join_rows, size=cap, replace=False)
        left_index = left_index[pick]
        right_index = right_index[pick]
    data = np.concatenate(
        [left_data[left_index], right_data[right_index]], axis=1
    )
    return data, join_rows
