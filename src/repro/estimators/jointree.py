"""Join-tree utilities shared by ground truth and join-size estimators.

The workload generators emit acyclic join templates, so every query's join
graph is a tree.  Rooting that tree at the query's first table gives the
recursion structure used both by exact weighted counting
(:mod:`repro.workloads.truth`) and by FactorJoin's factor-graph inference.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.sql.query import CardQuery, JoinCondition

JoinTree = dict[str, list[tuple[str, JoinCondition]]]


def build_join_tree(query: CardQuery, root: str | None = None) -> JoinTree:
    """Children adjacency of the query's join tree rooted at ``root``.

    Raises :class:`ExecutionError` when the join graph is cyclic (more
    conditions than a spanning tree) or disconnected.
    """
    if len(query.joins) != len(query.tables) - 1:
        raise ExecutionError(
            f"query joins {len(query.tables)} tables with {len(query.joins)} "
            "conditions; a tree join graph is required"
        )
    if root is None:
        root = query.tables[0]
    if root not in query.tables:
        raise ExecutionError(f"root {root!r} is not one of the query tables")
    children: JoinTree = {t: [] for t in query.tables}
    attached = {root}
    remaining = list(query.joins)
    while remaining:
        progressed = False
        for join in list(remaining):
            a, b = join.tables()
            if a in attached and b not in attached:
                children[a].append((b, join))
                attached.add(b)
                remaining.remove(join)
                progressed = True
            elif b in attached and a not in attached:
                children[b].append((a, join))
                attached.add(a)
                remaining.remove(join)
                progressed = True
        if not progressed:
            raise ExecutionError("join graph is cyclic or disconnected")
    return children
