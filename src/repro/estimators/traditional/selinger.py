"""Selinger-style COUNT estimator (the "sketch-based" baseline).

This is the estimator ByteHouse originally shipped: per-column equi-height
histograms composed under the two classical assumptions --

* **attribute independence**: conjunctive selectivities multiply;
* **join uniformity**: an equi-join's selectivity is
  ``1 / max(V(left key), V(right key))``.

Both assumptions are exactly what the synthetic datasets violate (correlated
columns, skewed fan-out), producing the orders-of-magnitude P99 Q-Errors of
the paper's Table 1.
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.estimators.base import CountEstimator
from repro.estimators.traditional.histogram import EquiHeightHistogram
from repro.sql.query import CardQuery
from repro.storage.catalog import Catalog


class SelingerEstimator(CountEstimator):
    """Histogram + independence + join-uniformity estimator."""

    name = "sketch"

    def __init__(self, catalog: Catalog, num_buckets: int = 64):
        self.catalog = catalog
        self.num_buckets = num_buckets
        self._histograms: dict[tuple[str, str], EquiHeightHistogram] = {}
        self._table_rows: dict[str, int] = {}
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            self._table_rows[table_name] = len(table)
            for column_name in table.column_names():
                values = table.column(column_name).values
                if len(values) == 0:
                    continue
                self._histograms[(table_name, column_name)] = EquiHeightHistogram(
                    values, num_buckets=num_buckets
                )

    # ------------------------------------------------------------------
    def histogram(self, table: str, column: str) -> EquiHeightHistogram:
        try:
            return self._histograms[(table, column)]
        except KeyError:
            raise EstimationError(
                f"no histogram for {table}.{column}; was the column empty?"
            ) from None

    def table_selectivity(self, query: CardQuery, table: str) -> float:
        """Independence-composed selectivity of the predicates on ``table``."""
        selectivity = 1.0
        for pred in query.predicates_on(table):
            selectivity *= self.histogram(table, pred.column).selectivity(pred)
        for group in query.or_groups:
            members = [p for p in group if p.table == table]
            if not members:
                continue
            # Inclusion-exclusion under independence: 1 - prod(1 - s_i).
            miss = 1.0
            for pred in members:
                miss *= 1.0 - self.histogram(table, pred.column).selectivity(pred)
            selectivity *= 1.0 - miss
        return selectivity

    def selectivity(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError("selectivity() is defined for single tables")
        return self.table_selectivity(query, query.tables[0])

    def estimate_count(self, query: CardQuery) -> float:
        estimate = 1.0
        for table in query.tables:
            rows = self._table_rows[table]
            estimate *= rows * self.table_selectivity(query, table)
        for join in query.joins:
            left_ndv = self.histogram(
                join.left_table, join.left_column
            ).total_distinct
            right_ndv = self.histogram(
                join.right_table, join.right_column
            ).total_distinct
            estimate /= max(left_ndv, right_ndv, 1)
        return max(estimate, 0.0)

    def estimation_overhead(self, query: CardQuery) -> float:
        # Histogram lookups are a handful of binary searches: near-free.
        return 0.02 * (len(query.all_predicates()) + len(query.joins) + 1)
