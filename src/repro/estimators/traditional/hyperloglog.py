"""HyperLogLog sketches and the sketch-based NDV baseline.

Implements Flajolet et al.'s HyperLogLog with the standard small-range
(linear counting) correction.  The sketch-based NDV baseline precomputes
one HLL per column -- exactly what the paper criticizes: the precomputed
sketch cannot see the query's predicates, so filtered NDV estimates degrade
badly (it can only cap the whole-column NDV by an estimated row count).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import NdvEstimator
from repro.sql.query import AggKind, CardQuery
from repro.storage.catalog import Catalog


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mixing hash (SplitMix64 finalizer)."""
    x = values.astype(np.uint64)
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(30)
    x = (x * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(27)
    x = (x * np.uint64(0x94D049BB133111EB)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(31)
    return x


class HyperLogLog:
    """HyperLogLog distinct-count sketch with ``2**precision`` registers."""

    def __init__(self, precision: int = 12):
        if not 4 <= precision <= 18:
            raise ValueError(f"precision must be in [4, 18], got {precision}")
        self.precision = precision
        self.num_registers = 1 << precision
        self.registers = np.zeros(self.num_registers, dtype=np.uint8)

    def add(self, values: np.ndarray) -> None:
        """Fold a batch of integer values into the sketch."""
        values = np.asarray(values)
        if values.size == 0:
            return
        hashed = _splitmix64(values.astype(np.int64).view(np.uint64))
        register_index = (hashed >> np.uint64(64 - self.precision)).astype(np.int64)
        remainder = hashed << np.uint64(self.precision)
        # rho: position of the leftmost 1-bit in the remaining bits, >= 1.
        remaining_bits = 64 - self.precision
        rho = np.full(values.shape, remaining_bits + 1, dtype=np.uint8)
        nonzero = remainder != 0
        if nonzero.any():
            # Leading zero count of the (64-bit shifted) remainder.
            bits = np.frompyfunc(lambda v: 64 - int(v).bit_length(), 1, 1)(
                remainder[nonzero]
            ).astype(np.int64)
            rho_nonzero = np.minimum(bits + 1, remaining_bits + 1)
            rho[nonzero] = rho_nonzero.astype(np.uint8)
        np.maximum.at(self.registers, register_index, rho)

    def estimate(self) -> float:
        """Current distinct-count estimate."""
        m = float(self.num_registers)
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = float(np.sum(2.0 ** -self.registers.astype(np.float64)))
        raw = alpha * m * m / harmonic
        zeros = int(np.count_nonzero(self.registers == 0))
        if raw <= 2.5 * m and zeros > 0:
            return m * float(np.log(m / zeros))  # linear counting
        return raw

    def merge(self, other: "HyperLogLog") -> None:
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)

    @property
    def nbytes(self) -> int:
        return int(self.registers.nbytes)


class SketchNdvEstimator(NdvEstimator):
    """Precomputed per-column HLL sketches (ByteHouse's original NDV path).

    The sketch is built once over the full column.  At query time the only
    predicate-awareness possible is capping the whole-column NDV by a crude
    filtered-row-count estimate -- which is why this baseline's Q-Error
    explodes on filtered NDV queries (paper Table 1, "NDV Est." row).
    """

    name = "sketch"

    def __init__(self, catalog: Catalog, precision: int = 12):
        self.catalog = catalog
        self._sketches: dict[tuple[str, str], HyperLogLog] = {}
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            for column_name in table.column_names():
                sketch = HyperLogLog(precision)
                sketch.add(table.column(column_name).values)
                self._sketches[(table_name, column_name)] = sketch

    def sketch(self, table: str, column: str) -> HyperLogLog:
        try:
            return self._sketches[(table, column)]
        except KeyError:
            raise EstimationError(f"no sketch for {table}.{column}") from None

    def estimate_ndv(self, query: CardQuery) -> float:
        if query.agg.kind is not AggKind.COUNT_DISTINCT:
            raise EstimationError("estimate_ndv requires COUNT DISTINCT")
        assert query.agg.table is not None and query.agg.column is not None
        full_ndv = self.sketch(query.agg.table, query.agg.column).estimate()
        table_rows = len(self.catalog.table(query.agg.table))
        if not query.predicates and not query.or_groups:
            return max(1.0, full_ndv)
        # The only cap available: assume predicates keep rows uniformly and
        # NDV cannot exceed the remaining row count.  With no histogram here,
        # apply the textbook magic selectivity of 1/3 per predicate.
        assumed_rows = table_rows * (1.0 / 3.0) ** len(query.all_predicates())
        return max(1.0, min(full_ndv, assumed_rows))

    def estimation_overhead(self, query: CardQuery) -> float:
        return 0.02  # reading a precomputed sketch is near-free
