"""Classical sample-extrapolation NDV estimators.

These are the "sample-based estimators [that] often rely on specific
heuristics or data assumptions" the paper contrasts RBX against:

* **Chao (1984/1992)**: ``d + f1^2 / (2 f2)`` -- a lower-bound estimator
  driven by singleton/doubleton counts;
* **GEE** (Charikar et al. 2000, "Towards estimation error guarantees for
  distinct values"): ``sqrt(N/n) * f1 + sum_{j>=2} f_j`` -- the
  guaranteed-error estimator;
* **linear scale-up**: ``d * N / n`` capped at ``N`` -- the naive baseline.
"""

from __future__ import annotations

import math

from repro.estimators.frequency import FrequencyProfile


def chao_estimate(profile: FrequencyProfile) -> float:
    """Chao's estimator from a frequency profile."""
    d = profile.sample_distinct
    if d == 0:
        return 0.0
    f1 = float(profile.counts[0]) if profile.counts.size >= 1 else 0.0
    f2 = float(profile.counts[1]) if profile.counts.size >= 2 else 0.0
    if f2 > 0:
        estimate = d + f1 * f1 / (2.0 * f2)
    else:
        # Chao's bias-corrected form when no doubletons were observed.
        estimate = d + f1 * (f1 - 1.0) / 2.0
    return min(estimate, float(profile.population_size))


def gee_estimate(profile: FrequencyProfile) -> float:
    """The GEE (guaranteed-error) estimator from a frequency profile."""
    d = profile.sample_distinct
    if d == 0:
        return 0.0
    if profile.sample_size <= 0:
        return 0.0
    scale = math.sqrt(
        max(1.0, profile.population_size / max(1, profile.sample_size))
    )
    f1 = float(profile.counts[0]) if profile.counts.size >= 1 else 0.0
    rest = float(d) - f1
    return min(scale * f1 + rest, float(profile.population_size))


def linear_scaleup_estimate(profile: FrequencyProfile) -> float:
    """Naive proportional extrapolation of the sample NDV."""
    d = profile.sample_distinct
    if d == 0 or profile.sample_size == 0:
        return 0.0
    estimate = d * profile.population_size / profile.sample_size
    return min(estimate, float(profile.population_size))
