"""Equi-height (equi-depth) histograms.

The workhorse of ByteHouse's original optimizer statistics: each bucket
holds (approximately) the same number of rows, with per-bucket distinct
counts for equality selectivity.  Also reused by FactorJoin's join-bucket
construction, mirroring the paper ("leveraging ... the equi-height
histograms in ByteHouse's optimizer").
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.sql.query import PredicateOp, TablePredicate


def equi_height_edges(sorted_values: np.ndarray, num_buckets: int) -> np.ndarray:
    """Equi-height bucket edges with singleton buckets for heavy hitters.

    Edges are drawn from quantile positions of the sorted data.  A value
    spanning several quantile positions (a heavy hitter) would collapse
    those edges into one; instead it receives a *singleton bucket*
    ``[v, nextafter(v))`` -- exactly how production equi-height histograms
    keep skewed columns accurate.
    """
    positions = np.linspace(0, sorted_values.size - 1, num_buckets + 1)
    raw = sorted_values[positions.astype(np.int64)].astype(np.float64)
    edges: list[float] = []
    for index, value in enumerate(raw):
        duplicated = (index > 0 and raw[index - 1] == value) or (
            index + 1 < raw.size and raw[index + 1] == value
        )
        if not edges or value > edges[-1]:
            edges.append(float(value))
        if duplicated:
            bump = float(np.nextafter(value, np.inf))
            if bump > edges[-1]:
                edges.append(bump)
    if len(edges) < 2:
        edges.append(float(np.nextafter(edges[0], np.inf)))
    edges[-1] = float(np.nextafter(edges[-1], np.inf))
    return np.asarray(edges, dtype=np.float64)


class EquiHeightHistogram:
    """Equi-height histogram over one numeric column.

    Buckets are half-open ``[edges[i], edges[i+1])`` except the last, which
    is closed on the right.  Stores per-bucket row counts and distinct
    counts; selectivity math assumes uniformity within buckets.
    """

    def __init__(self, values: np.ndarray, num_buckets: int = 64):
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise EstimationError("cannot build a histogram over an empty column")
        self.total_rows = int(values.size)
        sorted_values = np.sort(values)
        self.edges = equi_height_edges(sorted_values, num_buckets)
        self.num_buckets = self.edges.size - 1
        bucket_index = self._bucket_of(sorted_values)
        self.counts = np.bincount(bucket_index, minlength=self.num_buckets).astype(
            np.float64
        )
        # Per-bucket distinct counts.
        distinct = np.zeros(self.num_buckets, dtype=np.float64)
        uniques = np.unique(sorted_values)
        unique_buckets = self._bucket_of(uniques)
        np.add.at(distinct, unique_buckets, 1.0)
        self.distincts = np.maximum(distinct, 1.0)
        self.total_distinct = int(uniques.size)
        self.min_value = float(sorted_values[0])
        self.max_value = float(sorted_values[-1])

    # ------------------------------------------------------------------
    def _bucket_of(self, values: np.ndarray) -> np.ndarray:
        index = np.searchsorted(self.edges, values, side="right") - 1
        return np.clip(index, 0, self.num_buckets - 1)

    @property
    def nbytes(self) -> int:
        """Approximate serialized size (for model-size reporting)."""
        return int(self.edges.nbytes + self.counts.nbytes + self.distincts.nbytes)

    # ------------------------------------------------------------------
    # Selectivities (fractions of rows)
    # ------------------------------------------------------------------
    def selectivity(self, pred: TablePredicate) -> float:
        """Estimated fraction of rows satisfying ``pred``."""
        op = pred.op
        if op is PredicateOp.EQ:
            return self._eq_fraction(float(pred.value))  # type: ignore[arg-type]
        if op is PredicateOp.NE:
            return max(0.0, 1.0 - self._eq_fraction(float(pred.value)))  # type: ignore[arg-type]
        if op is PredicateOp.LT:
            return self._range_fraction(-np.inf, float(pred.value), high_open=True)  # type: ignore[arg-type]
        if op is PredicateOp.LE:
            return self._range_fraction(-np.inf, float(pred.value), high_open=False)  # type: ignore[arg-type]
        if op is PredicateOp.GT:
            return max(
                0.0,
                1.0 - self._range_fraction(-np.inf, float(pred.value), high_open=False),  # type: ignore[arg-type]
            )
        if op is PredicateOp.GE:
            return max(
                0.0,
                1.0 - self._range_fraction(-np.inf, float(pred.value), high_open=True),  # type: ignore[arg-type]
            )
        if op is PredicateOp.IN:
            return float(
                min(1.0, sum(self._eq_fraction(v) for v in pred.value))  # type: ignore[union-attr]
            )
        if op is PredicateOp.BETWEEN:
            low, high = pred.value  # type: ignore[misc]
            return self._range_fraction(float(low), float(high), high_open=False)
        raise EstimationError(f"unsupported predicate operator {op}")

    def _eq_fraction(self, value: float) -> float:
        if value < self.min_value or value > self.max_value:
            return 0.0
        bucket = int(self._bucket_of(np.array([value]))[0])
        # Uniform spread over the bucket's distinct values.
        return float(
            self.counts[bucket] / self.distincts[bucket] / self.total_rows
        )

    def _range_fraction(self, low: float, high: float, high_open: bool) -> float:
        """Fraction of rows with value in [low, high) or [low, high]."""
        if high < self.min_value or low > self.max_value:
            return 0.0
        covered = 0.0
        for bucket in range(self.num_buckets):
            b_lo = self.edges[bucket]
            b_hi = self.edges[bucket + 1]
            width = max(b_hi - b_lo, 1e-12)
            overlap_lo = max(low, b_lo)
            overlap_hi = min(high, b_hi)
            if overlap_hi < overlap_lo:
                continue
            fraction = min(1.0, (overlap_hi - overlap_lo) / width)
            covered += fraction * self.counts[bucket]
        return float(min(1.0, covered / self.total_rows))

    def ndv_in_range(self, low: float, high: float) -> float:
        """Estimated distinct values within [low, high]."""
        total = 0.0
        for bucket in range(self.num_buckets):
            b_lo = self.edges[bucket]
            b_hi = self.edges[bucket + 1]
            width = max(b_hi - b_lo, 1e-12)
            overlap = min(high, b_hi) - max(low, b_lo)
            if overlap <= 0 and not (low <= b_lo <= high):
                continue
            total += max(0.0, min(1.0, overlap / width)) * self.distincts[bucket]
        return max(1.0, total)
