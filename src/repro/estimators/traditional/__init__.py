"""Traditional (non-learned) estimators: the paper's baselines.

* **sketch-based**: equi-height histograms composed Selinger-style
  (attribute independence + join uniformity) for COUNT, plus precomputed
  HyperLogLog sketches for NDV -- ByteHouse's original estimator;
* **sample-based**: uniform row samples evaluated at query time (the
  AnalyticDB-style comparator), for both COUNT and NDV;
* **heuristic NDV**: Chao, GEE, and linear scale-up sample extrapolators.
"""

from repro.estimators.traditional.histogram import EquiHeightHistogram
from repro.estimators.traditional.selinger import SelingerEstimator
from repro.estimators.traditional.hyperloglog import HyperLogLog, SketchNdvEstimator
from repro.estimators.traditional.sampling import (
    SamplingCountEstimator,
    SamplingNdvEstimator,
)
from repro.estimators.traditional.ndv_heuristics import (
    chao_estimate,
    gee_estimate,
    linear_scaleup_estimate,
)

__all__ = [
    "EquiHeightHistogram",
    "SelingerEstimator",
    "HyperLogLog",
    "SketchNdvEstimator",
    "SamplingCountEstimator",
    "SamplingNdvEstimator",
    "chao_estimate",
    "gee_estimate",
    "linear_scaleup_estimate",
]
