"""Sample-based COUNT and NDV estimation (the AnalyticDB-style baseline).

A uniform row sample of each table is kept; at query time predicates are
evaluated on the samples and counts are scaled up.  Joins are estimated by
joining the *samples* (via the same weighted counting used for ground truth)
and scaling by the product of inverse sampling rates -- accurate for large
results, noisy for selective ones, and expensive per query: the estimation
overhead is proportional to sample rows touched, which is the effect behind
Figure 5's low-quantile results.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.estimators.frequency import frequency_profile
from repro.estimators.traditional.ndv_heuristics import gee_estimate
from repro.sql.query import AggKind, CardQuery
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.rng import derive_rng
from repro.workloads.predicates import table_mask


class _SampleStore:
    """Uniform per-table row samples shared by the two estimators."""

    def __init__(self, catalog: Catalog, rate: float, seed: int):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
        self.catalog = catalog
        self.rate = rate
        self.samples: dict[str, Table] = {}
        self.rates: dict[str, float] = {}
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            want = max(1, int(len(table) * rate))
            rng = derive_rng(seed, "sample", table_name)
            sample = table.sample(want, rng)
            self.samples[table_name] = sample
            self.rates[table_name] = len(sample) / max(1, len(table))


class SamplingCountEstimator(CountEstimator):
    """COUNT estimation by evaluating predicates on uniform samples."""

    name = "sample"

    def __init__(self, catalog: Catalog, rate: float = 0.02, seed: int = 5):
        self._store = _SampleStore(catalog, rate, seed)
        self.catalog = catalog

    @property
    def rate(self) -> float:
        return self._store.rate

    def selectivity(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError("selectivity() is defined for single tables")
        sample = self._store.samples[query.tables[0]]
        if len(sample) == 0:
            return 0.0
        return float(table_mask(sample, query).sum()) / len(sample)

    def estimate_count(self, query: CardQuery) -> float:
        if query.is_single_table():
            table = query.tables[0]
            matched = float(
                table_mask(self._store.samples[table], query).sum()
            )
            return matched / self._store.rates[table]
        # Join the samples with exact weighted counting, then scale up.
        from repro.workloads.truth import true_count  # local import: no cycle at module load

        sample_catalog = Catalog()
        scale = 1.0
        for table in query.tables:
            sample_catalog.register(self._store.samples[table])
            scale /= self._store.rates[table]
        sampled_count = true_count(sample_catalog, query)
        if sampled_count == 0:
            # Nothing matched in the sample: report the smallest resolvable
            # cardinality instead of zero (the usual sample-estimator fix).
            return max(1.0, 0.5 * scale ** (1.0 / max(1, len(query.tables))))
        return sampled_count * scale

    def estimation_overhead(self, query: CardQuery) -> float:
        # Real-time predicate evaluation over every sampled row -- the
        # dominant term of this method's latency footprint.
        rows_touched = sum(len(self._store.samples[t]) for t in query.tables)
        return 8e-4 * rows_touched + 0.05 * len(query.joins)


class SamplingNdvEstimator(NdvEstimator):
    """NDV estimation from filtered samples via the GEE extrapolator."""

    name = "sample"

    def __init__(self, catalog: Catalog, rate: float = 0.02, seed: int = 5):
        self._store = _SampleStore(catalog, rate, seed)
        self.catalog = catalog

    def estimate_ndv(self, query: CardQuery) -> float:
        if query.agg.kind is not AggKind.COUNT_DISTINCT:
            raise EstimationError("estimate_ndv requires COUNT DISTINCT")
        assert query.agg.table is not None and query.agg.column is not None
        table = query.agg.table
        sample = self._store.samples[table]
        mask = table_mask(sample, query)
        values = sample.column(query.agg.column).values[mask]
        matched_fraction = float(mask.sum()) / max(1, len(sample))
        population = max(
            1, int(len(self.catalog.table(table)) * matched_fraction)
        )
        profile = frequency_profile(values, population_size=population)
        estimate = gee_estimate(profile)
        return max(1.0, estimate)

    def estimation_overhead(self, query: CardQuery) -> float:
        return 8e-4 * len(self._store.samples[query.tables[0]])
