"""Estimator interfaces: the ABCs and the estimation-strategy protocol.

Two estimation tasks exist in the paper: ``COUNT`` (row counts of filtered
joins, driving materialization and join ordering) and ``COUNT-DISTINCT``
(NDV, driving hash-table pre-sizing).  Every estimator also reports an
*estimation overhead* in the engine's abstract cost units, because the
paper's end-to-end result (Figure 5) hinges on the fact that the
sample-based method's good Q-Error does not translate into good latency --
its per-query estimation cost is too high.

This module is the single home of the estimator-facing contracts.  Beyond
the two task ABCs it defines :class:`EstimationStrategy` -- the formal
protocol the optimizer and the serving core speak.  Historically those
consumers probed estimators with ``getattr`` for optional capabilities
(``selectivity_detail``, ``estimate_count_batch``, ``shard_selectivity``,
``install_plan_cache``, ``last_pass_stats``); the protocol makes every one
of those probes an explicit method or capability flag, so a new estimator
is a drop-in rather than an edit across layers.  Existing duck-typed
estimators are adapted with :func:`repro.estimators.strategy.as_strategy`,
the one remaining (and deliberate) home of capability discovery.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import EstimationError
from repro.sql.query import CardQuery


class CountEstimator(abc.ABC):
    """Estimates COUNT(*) cardinalities of (joined, filtered) queries."""

    #: short identifier used in benchmark tables ("sketch", "sample", ...)
    name: str = "count-estimator"

    @abc.abstractmethod
    def estimate_count(self, query: CardQuery) -> float:
        """Estimated number of result rows of ``query`` (>= 0)."""

    def estimation_overhead(self, query: CardQuery) -> float:
        """Cost-model units spent producing one estimate for ``query``.

        Default charges a negligible constant; subclasses override to model
        their real inference cost (e.g. real-time sampling).
        """
        return 0.01

    def selectivity(self, query: CardQuery) -> float:
        """Estimated fraction of the unfiltered result the query keeps.

        Only meaningful for single-table queries; used by the reader-choice
        optimizer.
        """
        raise NotImplementedError


class NdvEstimator(abc.ABC):
    """Estimates COUNT(DISTINCT column) for filtered single-table queries."""

    name: str = "ndv-estimator"

    @abc.abstractmethod
    def estimate_ndv(self, query: CardQuery) -> float:
        """Estimated number of distinct values of the aggregate target."""

    def estimation_overhead(self, query: CardQuery) -> float:
        return 0.01

    def group_ndv(self, query: CardQuery) -> float:
        """NDV of the combined group-by key (hash-table pre-sizing).

        Part of the base contract so consumers never probe for the method;
        estimators without a group-key model keep this default, which
        signals "unsupported" through the normal estimation-error channel.
        """
        raise EstimationError(f"{self.name} does not support group NDV")


@dataclass(frozen=True)
class EstimateDetail:
    """One estimate plus the provenance of how it was produced.

    ``source`` labels feed the optimizer's per-decision provenance
    accounting: ``direct`` (a bare estimator answered in-line), ``cache`` /
    ``model`` / ``fallback-*`` (the serving tier's paths), ``shard_model``
    (a shard-specialized model), ``fallback-<strategy>`` (a later link of a
    :class:`~repro.estimators.strategy.StrategyChain` answered), or
    ``detail_error`` (the provenance path itself raised; see
    :class:`~repro.errors.DetailError`).
    """

    value: float
    source: str


class EstimationStrategy(CountEstimator):
    """The formal protocol between estimator implementations and consumers.

    Every capability the optimizer and the serving core used to discover by
    ``getattr`` is an explicit member here:

    * ``selectivity`` / ``estimate_count`` -- the plain task interface
      (inherited from :class:`CountEstimator`);
    * ``selectivity_detail`` / ``estimate_count_detail`` -- the same
      answers with provenance, for plan-decision accounting;
    * ``estimate_count_batch`` + :attr:`supports_batching` /
      :attr:`supports_join_batching` -- the micro-batcher's hooks;
    * ``shard_selectivity`` + :attr:`supports_shard_routing` -- routing to
      shard-specialized models when pruning pins a partition;
    * ``install_plan_cache`` + :attr:`supports_plan_cache` -- the shared
      inference-plan cache;
    * :attr:`last_pass_stats` -- BN pass accounting for provenance;
    * ``cache_scope`` -- the strategy identity mixed into serving cache
      keys, so estimates produced under different strategies (an A/B run,
      a router that re-routed) never cross-pollinate.

    A strategy *is* a :class:`CountEstimator`, so it can be dropped
    anywhere an estimator is accepted (suites, services, benchmarks).
    """

    #: stable identifier; names the strategy in routing rules, cache keys,
    #: per-strategy Q-Error series, and A/B reports
    strategy_id: str = "strategy"

    #: the estimator benefits from ``estimate_count_batch`` micro-batching
    supports_batching: bool = False
    #: join queries may be micro-batched (shared-plan inference)
    supports_join_batching: bool = False
    #: ``shard_selectivity`` can answer for pinned partitions
    supports_shard_routing: bool = False
    #: ``install_plan_cache`` wires up a shared inference-plan cache
    supports_plan_cache: bool = False

    #: the catalog the strategy estimates over (None when not table-backed)
    catalog = None

    # -- provenance-carrying interface ---------------------------------
    def selectivity_detail(self, query: CardQuery) -> EstimateDetail:
        """Selectivity plus provenance; default answers in-line."""
        return EstimateDetail(float(self.selectivity(query)), "direct")

    def estimate_count_detail(self, query: CardQuery) -> EstimateDetail:
        """COUNT estimate plus provenance; default answers in-line."""
        return EstimateDetail(float(self.estimate_count(query)), "direct")

    # -- batching -------------------------------------------------------
    def estimate_count_batch(
        self, table: str, queries: list[CardQuery]
    ) -> list[float]:
        """Batched COUNT estimates; default degenerates to a loop."""
        return [float(self.estimate_count(query)) for query in queries]

    # -- shard routing --------------------------------------------------
    def shard_selectivity(
        self, table: str, shard: int, query: CardQuery
    ) -> float | None:
        """Selectivity from a shard-specialized model, or None."""
        return None

    # -- plan-cache integration ----------------------------------------
    def install_plan_cache(self, cache) -> None:
        """Install a shared inference-plan cache (no-op by default)."""

    @property
    def last_pass_stats(self):
        """Pass accounting of this thread's last join estimate, or None."""
        return None

    # -- serving-cache identity ----------------------------------------
    def cache_scope(self, query: CardQuery) -> str:
        """The strategy identity under which this query's estimate caches.

        A router overrides this per query (the scope is the routed chain),
        so derating that changes the route also changes the cache key.
        """
        return self.strategy_id
