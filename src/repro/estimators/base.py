"""Estimator interfaces.

Two estimation tasks exist in the paper: ``COUNT`` (row counts of filtered
joins, driving materialization and join ordering) and ``COUNT-DISTINCT``
(NDV, driving hash-table pre-sizing).  Every estimator also reports an
*estimation overhead* in the engine's abstract cost units, because the
paper's end-to-end result (Figure 5) hinges on the fact that the
sample-based method's good Q-Error does not translate into good latency --
its per-query estimation cost is too high.
"""

from __future__ import annotations

import abc

from repro.sql.query import CardQuery


class CountEstimator(abc.ABC):
    """Estimates COUNT(*) cardinalities of (joined, filtered) queries."""

    #: short identifier used in benchmark tables ("sketch", "sample", ...)
    name: str = "count-estimator"

    @abc.abstractmethod
    def estimate_count(self, query: CardQuery) -> float:
        """Estimated number of result rows of ``query`` (>= 0)."""

    def estimation_overhead(self, query: CardQuery) -> float:
        """Cost-model units spent producing one estimate for ``query``.

        Default charges a negligible constant; subclasses override to model
        their real inference cost (e.g. real-time sampling).
        """
        return 0.01

    def selectivity(self, query: CardQuery) -> float:
        """Estimated fraction of the unfiltered result the query keeps.

        Only meaningful for single-table queries; used by the reader-choice
        optimizer.
        """
        raise NotImplementedError


class NdvEstimator(abc.ABC):
    """Estimates COUNT(DISTINCT column) for filtered single-table queries."""

    name: str = "ndv-estimator"

    @abc.abstractmethod
    def estimate_ndv(self, query: CardQuery) -> float:
        """Estimated number of distinct values of the aggregate target."""

    def estimation_overhead(self, query: CardQuery) -> float:
        return 0.01
