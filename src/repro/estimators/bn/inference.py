"""Variable-elimination (sum-product) inference over an immutable context.

:class:`BNInferenceContext` is the reproduction of the paper's
``initContext`` output for the single-table model: the tree with its CPDs is
flattened into topologically-indexed, read-only arrays ("Root
Identification" and "CPD Indexing" in Section 5.1), after which
``selectivity``/``beliefs`` perform no allocation-shared mutation and can be
called concurrently from many query threads without locking.

Inference is the standard two-pass sum-product on a tree:

* upward pass (leaves to root): each node sends
  ``m_i(p) = sum_c P(c | p) * e_i(c) * prod_j m_j(c)`` to its parent;
* downward pass (root to leaves) for per-node beliefs
  ``b_i(c) = P(i = c, evidence)``.

The probability of the evidence -- the query's selectivity -- is the root's
belief total.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError


class BNInferenceContext:
    """Frozen, topologically-indexed tree BN ready for lock-free inference."""

    def __init__(
        self,
        order: np.ndarray,
        parents: np.ndarray,
        children: tuple[tuple[int, ...], ...],
        cpds: tuple[np.ndarray, ...],
    ):
        self.order = order
        self.parents = parents
        self.children = children
        self.cpds = cpds
        self.num_nodes = parents.size
        self.root = int(order[0])
        for array in (self.order, self.parents, *self.cpds):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_structure(
        cls, parents: np.ndarray, cpds: Sequence[np.ndarray]
    ) -> "BNInferenceContext":
        """Build the context: root identification + topological CPD indexing."""
        parents = np.asarray(parents, dtype=np.int64)
        d = parents.size
        if len(cpds) != d:
            raise ModelError(f"{d} nodes but {len(cpds)} CPDs")
        roots = np.flatnonzero(parents < 0)
        if roots.size != 1:
            raise ModelError(f"tree must have exactly one root, found {roots.size}")
        children_lists: list[list[int]] = [[] for _ in range(d)]
        for node in range(d):
            parent = int(parents[node])
            if parent >= 0:
                if not 0 <= parent < d:
                    raise ModelError(f"node {node} has out-of-range parent {parent}")
                children_lists[parent].append(node)
        # Topological order by BFS from the root; also validates acyclicity.
        order: list[int] = [int(roots[0])]
        cursor = 0
        while cursor < len(order):
            order.extend(children_lists[order[cursor]])
            cursor += 1
        if len(order) != d:
            raise ModelError("structure is cyclic or disconnected")
        frozen_cpds = tuple(np.ascontiguousarray(c, dtype=np.float64) for c in cpds)
        for node in range(d):
            parent = int(parents[node])
            cpd = frozen_cpds[node]
            if parent < 0 and cpd.ndim != 1:
                raise ModelError("root CPD must be 1-D")
            if parent >= 0 and cpd.ndim != 2:
                raise ModelError(f"node {node} CPD must be 2-D")
        return cls(
            order=np.asarray(order, dtype=np.int64),
            parents=parents.copy(),
            children=tuple(tuple(c) for c in children_lists),
            cpds=frozen_cpds,
        )

    # ------------------------------------------------------------------
    def bin_count(self, node: int) -> int:
        cpd = self.cpds[node]
        return int(cpd.shape[-1])

    @property
    def nbytes(self) -> int:
        return int(sum(c.nbytes for c in self.cpds))

    def _check_evidence(self, evidence: Sequence[np.ndarray]) -> None:
        if len(evidence) != self.num_nodes:
            raise ModelError(
                f"expected {self.num_nodes} evidence vectors, got {len(evidence)}"
            )
        for node, vec in enumerate(evidence):
            if vec.shape != (self.bin_count(node),):
                raise ModelError(
                    f"evidence for node {node} has shape {vec.shape}, "
                    f"expected ({self.bin_count(node)},)"
                )

    # ------------------------------------------------------------------
    def _upward(self, evidence: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Messages to parents, computed leaves-first.

        ``messages[i]`` is ``m_i`` over the *parent's* bins (unused for the
        root slot).
        """
        messages: list[np.ndarray | None] = [None] * self.num_nodes
        partials: list[np.ndarray | None] = [None] * self.num_nodes
        for node in self.order[::-1]:
            node = int(node)
            local = evidence[node].astype(np.float64, copy=True)
            for child in self.children[node]:
                message = messages[child]
                assert message is not None
                local *= message
            partials[node] = local
            parent = int(self.parents[node])
            if parent >= 0:
                messages[node] = self.cpds[node] @ local
        # Stash the root's combined local factor in its message slot.
        root_local = partials[self.root]
        assert root_local is not None
        messages[self.root] = root_local
        return [m if m is not None else np.ones(1) for m in messages]

    def selectivity(self, evidence: Sequence[np.ndarray]) -> float:
        """P(evidence): the fraction of rows satisfying all evidence."""
        self._check_evidence(evidence)
        messages = self._upward(evidence)
        root_belief = self.cpds[self.root] * messages[self.root]
        return float(np.clip(root_belief.sum(), 0.0, 1.0))

    def selectivity_batch(self, evidence: Sequence[np.ndarray]) -> np.ndarray:
        """P(evidence) for a whole batch of queries in one upward pass.

        ``evidence[i]`` has shape ``(bins_i, B)``: one evidence column per
        query in the batch.  The sum-product messages become matrix products
        (``cpds[node] @ local`` maps ``(bins, B)`` to ``(parent_bins, B)``),
        so the per-query Python/dispatch overhead of variable elimination is
        paid once for the batch -- this is what the serving tier's
        micro-batcher amortizes.  Returns a ``(B,)`` selectivity vector.
        """
        if len(evidence) != self.num_nodes:
            raise ModelError(
                f"expected {self.num_nodes} evidence matrices, got {len(evidence)}"
            )
        batch = evidence[0].shape[1] if evidence else 0
        for node, mat in enumerate(evidence):
            if mat.ndim != 2 or mat.shape != (self.bin_count(node), batch):
                raise ModelError(
                    f"evidence for node {node} has shape {mat.shape}, "
                    f"expected ({self.bin_count(node)}, {batch})"
                )
        messages: list[np.ndarray | None] = [None] * self.num_nodes
        for node in self.order[::-1]:
            node = int(node)
            local = evidence[node].astype(np.float64, copy=True)
            for child in self.children[node]:
                message = messages[child]
                assert message is not None
                local *= message
            parent = int(self.parents[node])
            if parent >= 0:
                messages[node] = self.cpds[node] @ local
            else:
                messages[node] = local
        root_local = messages[self.root]
        assert root_local is not None
        root_belief = self.cpds[self.root][:, None] * root_local
        return np.clip(root_belief.sum(axis=0), 0.0, 1.0)

    def beliefs(
        self, evidence: Sequence[np.ndarray]
    ) -> tuple[list[np.ndarray], float]:
        """Joint vectors ``b_i(c) = P(i = c, evidence)`` plus P(evidence)."""
        self._check_evidence(evidence)
        up: list[np.ndarray | None] = [None] * self.num_nodes
        local: list[np.ndarray] = [np.empty(0)] * self.num_nodes
        for node in self.order[::-1]:
            node = int(node)
            combined = evidence[node].astype(np.float64, copy=True)
            for child in self.children[node]:
                message = up[child]
                assert message is not None
                combined *= message
            local[node] = combined
            parent = int(self.parents[node])
            if parent >= 0:
                up[node] = self.cpds[node] @ combined

        down: list[np.ndarray] = [np.empty(0)] * self.num_nodes
        down[self.root] = self.cpds[self.root].copy()
        beliefs: list[np.ndarray] = [np.empty(0)] * self.num_nodes
        beliefs[self.root] = down[self.root] * local[self.root]
        probability = float(np.clip(beliefs[self.root].sum(), 0.0, 1.0))
        for node in self.order:
            node = int(node)
            for child in self.children[node]:
                # Everything at the parent except the child's own message.
                context_vec = down[node] * evidence[node]
                for sibling in self.children[node]:
                    if sibling != child:
                        sibling_msg = up[sibling]
                        assert sibling_msg is not None
                        context_vec = context_vec * sibling_msg
                down[child] = context_vec @ self.cpds[child]
                beliefs[child] = down[child] * local[child]
        return beliefs, probability

    def marginal_with_evidence(
        self, node: int, evidence: Sequence[np.ndarray]
    ) -> np.ndarray:
        """``P(node = c, evidence)`` for every bin ``c`` of ``node``."""
        beliefs, _probability = self.beliefs(evidence)
        return beliefs[node]
