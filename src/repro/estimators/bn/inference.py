"""Variable-elimination (sum-product) inference over an immutable context.

:class:`BNInferenceContext` is the reproduction of the paper's
``initContext`` output for the single-table model: the tree with its CPDs is
flattened into topologically-indexed, read-only arrays ("Root
Identification" and "CPD Indexing" in Section 5.1), after which
``selectivity``/``beliefs`` perform no allocation-shared mutation and can be
called concurrently from many query threads without locking.

Inference is the standard two-pass sum-product on a tree:

* upward pass (leaves to root): each node sends
  ``m_i(p) = sum_c P(c | p) * e_i(c) * prod_j m_j(c)`` to its parent;
* downward pass (root to leaves) for per-node beliefs
  ``b_i(c) = P(i = c, evidence)``.

The probability of the evidence -- the query's selectivity -- is the root's
belief total.

Both passes also come in batched form (``selectivity_batch`` /
``beliefs_batch``): evidence vectors become ``(bins, B)`` matrices, one
column per query, and the tree messages become matrix products, so the
Python/dispatch overhead of variable elimination is paid once for the whole
batch.  The downward pass combines sibling messages with prefix/suffix
running products, keeping it linear in the number of children.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError


class BNInferenceContext:
    """Frozen, topologically-indexed tree BN ready for lock-free inference."""

    def __init__(
        self,
        order: np.ndarray,
        parents: np.ndarray,
        children: tuple[tuple[int, ...], ...],
        cpds: tuple[np.ndarray, ...],
    ):
        self.order = order
        self.parents = parents
        self.children = children
        self.cpds = cpds
        self.num_nodes = parents.size
        self.root = int(order[0])
        for array in (self.order, self.parents, *self.cpds):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_structure(
        cls, parents: np.ndarray, cpds: Sequence[np.ndarray]
    ) -> "BNInferenceContext":
        """Build the context: root identification + topological CPD indexing."""
        parents = np.asarray(parents, dtype=np.int64)
        d = parents.size
        if len(cpds) != d:
            raise ModelError(f"{d} nodes but {len(cpds)} CPDs")
        roots = np.flatnonzero(parents < 0)
        if roots.size != 1:
            raise ModelError(f"tree must have exactly one root, found {roots.size}")
        children_lists: list[list[int]] = [[] for _ in range(d)]
        for node in range(d):
            parent = int(parents[node])
            if parent >= 0:
                if not 0 <= parent < d:
                    raise ModelError(f"node {node} has out-of-range parent {parent}")
                children_lists[parent].append(node)
        # Topological order by BFS from the root; also validates acyclicity.
        order: list[int] = [int(roots[0])]
        cursor = 0
        while cursor < len(order):
            order.extend(children_lists[order[cursor]])
            cursor += 1
        if len(order) != d:
            raise ModelError("structure is cyclic or disconnected")
        frozen_cpds = tuple(np.ascontiguousarray(c, dtype=np.float64) for c in cpds)
        for node in range(d):
            parent = int(parents[node])
            cpd = frozen_cpds[node]
            if parent < 0 and cpd.ndim != 1:
                raise ModelError("root CPD must be 1-D")
            if parent >= 0 and cpd.ndim != 2:
                raise ModelError(f"node {node} CPD must be 2-D")
        return cls(
            order=np.asarray(order, dtype=np.int64),
            parents=parents.copy(),
            children=tuple(tuple(c) for c in children_lists),
            cpds=frozen_cpds,
        )

    # ------------------------------------------------------------------
    def bin_count(self, node: int) -> int:
        cpd = self.cpds[node]
        return int(cpd.shape[-1])

    @property
    def nbytes(self) -> int:
        return int(sum(c.nbytes for c in self.cpds))

    def _check_evidence(self, evidence: Sequence[np.ndarray]) -> None:
        if len(evidence) != self.num_nodes:
            raise ModelError(
                f"expected {self.num_nodes} evidence vectors, got {len(evidence)}"
            )
        for node, vec in enumerate(evidence):
            if vec.shape != (self.bin_count(node),):
                raise ModelError(
                    f"evidence for node {node} has shape {vec.shape}, "
                    f"expected ({self.bin_count(node)},)"
                )

    def _check_evidence_batch(self, evidence: Sequence[np.ndarray]) -> int:
        if len(evidence) != self.num_nodes:
            raise ModelError(
                f"expected {self.num_nodes} evidence matrices, got {len(evidence)}"
            )
        batch = evidence[0].shape[1] if evidence else 0
        for node, mat in enumerate(evidence):
            if mat.ndim != 2 or mat.shape != (self.bin_count(node), batch):
                raise ModelError(
                    f"evidence for node {node} has shape {mat.shape}, "
                    f"expected ({self.bin_count(node)}, {batch})"
                )
        return batch

    # ------------------------------------------------------------------
    def _sweep_up(
        self, evidence: Sequence[np.ndarray]
    ) -> tuple[list[np.ndarray | None], list[np.ndarray]]:
        """Upward messages and combined local factors, leaves-first.

        ``up[i]`` is node ``i``'s message over the *parent's* bins (``None``
        for the root); ``local[i]`` is ``e_i * prod_j m_j`` over ``i``'s own
        bins.  Childless nodes alias their (float64) evidence directly --
        nothing downstream writes into a local factor, so the copy the old
        implementation made per node is pure overhead.  Works unchanged on
        ``(bins,)`` vectors and ``(bins, B)`` batch matrices.
        """
        up: list[np.ndarray | None] = [None] * self.num_nodes
        local: list[np.ndarray] = [np.empty(0)] * self.num_nodes
        for node in self.order[::-1]:
            node = int(node)
            vec = evidence[node]
            combined: np.ndarray | None = None
            for child in self.children[node]:
                message = up[child]
                assert message is not None
                if combined is None:
                    combined = vec * message
                else:
                    combined *= message
            if combined is None:
                combined = (
                    vec if vec.dtype == np.float64 else vec.astype(np.float64)
                )
            local[node] = combined
            parent = int(self.parents[node])
            if parent >= 0:
                up[node] = self.cpds[node] @ combined
        return up, local

    def _sweep_down(
        self,
        up: list[np.ndarray | None],
        local: list[np.ndarray],
        evidence: Sequence[np.ndarray],
        batched: bool,
    ) -> list[np.ndarray]:
        """Per-node beliefs from the root-to-leaves pass.

        Sibling messages are combined with prefix/suffix running products,
        so a node with ``k`` children costs ``O(k)`` vector multiplies
        instead of the ``O(k^2)`` of the naive all-but-one loop.
        """
        down: list[np.ndarray] = [np.empty(0)] * self.num_nodes
        beliefs: list[np.ndarray] = [np.empty(0)] * self.num_nodes
        root_cpd = self.cpds[self.root]
        down[self.root] = root_cpd[:, None] if batched else root_cpd
        beliefs[self.root] = down[self.root] * local[self.root]
        for node in self.order:
            node = int(node)
            kids = self.children[node]
            if not kids:
                continue
            # Everything at the node except each child's own message.
            base = down[node] * evidence[node]
            messages = [up[child] for child in kids]
            prefixes: list[np.ndarray | None] = [None] * len(kids)
            acc: np.ndarray | None = None
            for i, message in enumerate(messages):
                prefixes[i] = acc
                assert message is not None
                acc = message if acc is None else acc * message
            suffix: np.ndarray | None = None
            for i in range(len(kids) - 1, -1, -1):
                context_vec = base
                if prefixes[i] is not None:
                    context_vec = context_vec * prefixes[i]
                if suffix is not None:
                    context_vec = context_vec * suffix
                child = kids[i]
                if batched:
                    down[child] = self.cpds[child].T @ context_vec
                else:
                    down[child] = context_vec @ self.cpds[child]
                beliefs[child] = down[child] * local[child]
                message = messages[i]
                assert message is not None
                suffix = message if suffix is None else message * suffix
        return beliefs

    # ------------------------------------------------------------------
    def selectivity(self, evidence: Sequence[np.ndarray]) -> float:
        """P(evidence): the fraction of rows satisfying all evidence."""
        self._check_evidence(evidence)
        _up, local = self._sweep_up(evidence)
        root_belief = self.cpds[self.root] * local[self.root]
        return float(np.clip(root_belief.sum(), 0.0, 1.0))

    def selectivity_batch(self, evidence: Sequence[np.ndarray]) -> np.ndarray:
        """P(evidence) for a whole batch of queries in one upward pass.

        ``evidence[i]`` has shape ``(bins_i, B)``: one evidence column per
        query in the batch.  The sum-product messages become matrix products
        (``cpds[node] @ local`` maps ``(bins, B)`` to ``(parent_bins, B)``),
        so the per-query Python/dispatch overhead of variable elimination is
        paid once for the batch -- this is what the serving tier's
        micro-batcher amortizes.  Returns a ``(B,)`` selectivity vector.
        """
        self._check_evidence_batch(evidence)
        _up, local = self._sweep_up(evidence)
        root_belief = self.cpds[self.root][:, None] * local[self.root]
        return np.clip(root_belief.sum(axis=0), 0.0, 1.0)

    def beliefs(
        self, evidence: Sequence[np.ndarray]
    ) -> tuple[list[np.ndarray], float]:
        """Joint vectors ``b_i(c) = P(i = c, evidence)`` plus P(evidence)."""
        self._check_evidence(evidence)
        up, local = self._sweep_up(evidence)
        beliefs = self._sweep_down(up, local, evidence, batched=False)
        probability = float(np.clip(beliefs[self.root].sum(), 0.0, 1.0))
        return beliefs, probability

    def beliefs_batch(
        self, evidence: Sequence[np.ndarray]
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Per-node joint matrices plus the P(evidence) vector for a batch.

        ``evidence[i]`` has shape ``(bins_i, B)``; the result's ``i``-th
        entry has the same shape, column ``b`` holding what
        :meth:`beliefs` would return for query ``b`` alone.  One batched
        two-pass sum-product replaces ``B`` scalar ones -- the join-query
        analogue of :meth:`selectivity_batch`, feeding the shared-belief
        inference plans of the FactorJoin path.
        """
        self._check_evidence_batch(evidence)
        up, local = self._sweep_up(evidence)
        beliefs = self._sweep_down(up, local, evidence, batched=True)
        probabilities = np.clip(beliefs[self.root].sum(axis=0), 0.0, 1.0)
        return beliefs, probabilities

    def marginal_with_evidence(
        self, node: int, evidence: Sequence[np.ndarray]
    ) -> np.ndarray:
        """``P(node = c, evidence)`` for every bin ``c`` of ``node``."""
        beliefs, _probability = self.beliefs(evidence)
        return beliefs[node]
