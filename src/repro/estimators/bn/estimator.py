"""Single-table COUNT estimation with per-table tree BNs.

Wraps one :class:`TreeBayesNet` per table behind the :class:`CountEstimator`
interface.  OR-groups are handled the way the paper describes: "ByteCard
uses the inclusion-exclusion principle to transform OR-ed queries to AND-ed
formats before calculating selectivities".
"""

from __future__ import annotations

import threading
from itertools import combinations
from typing import Callable

from repro.errors import EstimationError
from repro.estimators.base import CountEstimator
from repro.estimators.bn.kernels import EvidenceCache, KernelPlan, resolve_backend
from repro.estimators.bn.model import TreeBayesNet, fit_tree_bn
from repro.sql.query import CardQuery, TablePredicate
from repro.storage.catalog import Catalog


class BNCountEstimator(CountEstimator):
    """Per-table tree-BN COUNT estimator (single-table queries only)."""

    name = "bn"

    def __init__(
        self,
        models: dict[str, TreeBayesNet],
        kernel: str | None = None,
        evidence_cache: EvidenceCache | None = None,
    ):
        self.models = dict(models)
        #: resolved kernel backend ("numpy"/"numba"/"off"); see REPRO_BN_KERNEL
        self.kernel_backend = resolve_backend(kernel)
        self.evidence_cache = evidence_cache
        self._kernel_plans: dict[str, KernelPlan] = {}
        self._kernel_lock = threading.Lock()

    @classmethod
    def train(
        cls,
        catalog: Catalog,
        columns_per_table: dict[str, list[str]],
        max_bins: int = 64,
        sample_rows: int | None = None,
    ) -> "BNCountEstimator":
        """Train one BN per table over the given column selections."""
        models = {
            table: fit_tree_bn(
                catalog.table(table),
                columns,
                max_bins=max_bins,
                sample_rows=sample_rows,
            )
            for table, columns in columns_per_table.items()
        }
        return cls(models)

    def model_for(self, table: str) -> TreeBayesNet:
        try:
            return self.models[table]
        except KeyError:
            raise EstimationError(f"no BN model for table {table!r}") from None

    def kernel_plan_for(self, table: str) -> KernelPlan | None:
        """The table's compiled kernel plan (None when the kernel is off)."""
        if self.kernel_backend == "off":
            return None
        plan = self._kernel_plans.get(table)
        if plan is None:
            with self._kernel_lock:
                plan = self._kernel_plans.get(table)
                if plan is None:
                    plan = KernelPlan(
                        self.model_for(table).init_context(),
                        backend=self.kernel_backend,
                    )
                    self._kernel_plans[table] = plan
        return plan

    # ------------------------------------------------------------------
    def table_selectivity(self, query: CardQuery, table: str) -> float:
        """Selectivity of all predicates (incl. OR-groups) on ``table``."""
        model = self.model_for(table)
        base = [p for p in query.predicates if p.table == table]
        groups = table_or_groups(query, table)
        return _selectivity_with_or_groups(model, base, groups)

    def selectivity(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError(
                "BNCountEstimator handles single tables; use FactorJoin for joins"
            )
        return self.table_selectivity(query, query.tables[0])

    def estimate_count(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError(
                "BNCountEstimator handles single tables; use FactorJoin for joins"
            )
        table = query.tables[0]
        return self.table_selectivity(query, table) * self.model_for(table).total_rows

    def estimate_count_batch(
        self, table: str, queries: list[CardQuery]
    ) -> list[float]:
        """Estimate a batch of single-table COUNT queries on one table.

        All plain conjunctive queries share one batched sum-product pass --
        a fused :class:`KernelPlan` upward sweep fed from the evidence
        cache when the kernel is on (bitwise identical to
        :meth:`TreeBayesNet.estimate_rows_batch`), the context's
        ``selectivity_batch`` otherwise; queries carrying OR-groups take
        the scalar inclusion-exclusion path.  Results align with the input
        order.
        """
        model = self.model_for(table)
        results: list[float | None] = [None] * len(queries)
        plain_indexes: list[int] = []
        plain_predicates: list[list[TablePredicate]] = []
        for i, query in enumerate(queries):
            if not query.is_single_table() or query.tables[0] != table:
                raise EstimationError(
                    f"batch for table {table!r} received query on "
                    f"{query.tables!r}"
                )
            if query.or_groups:
                results[i] = self.estimate_count(query)
            else:
                plain_indexes.append(i)
                plain_predicates.append(list(query.predicates))
        if plain_indexes:
            rows = self._rows_batch(model, plain_predicates)
            for i, estimate in zip(plain_indexes, rows):
                results[i] = float(estimate)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _rows_batch(
        self, model: TreeBayesNet, predicate_lists: list[list[TablePredicate]]
    ):
        plan = self.kernel_plan_for(model.table_name)
        if plan is None:
            return model.estimate_rows_batch(predicate_lists)
        cache = self.evidence_cache
        packs = plan.ones_packs(len(predicate_lists))
        for b, predicates in enumerate(predicate_lists):
            for pred in predicates:
                if pred.table != model.table_name:
                    raise EstimationError(
                        f"predicate on {pred.table!r} given to BN of "
                        f"{model.table_name!r}"
                    )
                index = model.column_index(pred.column)
                discretizer = model.discretizers[pred.column]
                vector = (
                    cache.vector(discretizer, pred)
                    if cache is not None
                    else discretizer.evidence(pred)
                )
                plan.apply_evidence(packs, index, b, vector)
        return plan.selectivities_packs(packs) * model.total_rows

    def estimation_overhead(self, query: CardQuery) -> float:
        # One tree message pass: linear in nodes, tiny constants.
        model = self.model_for(query.tables[0])
        return 0.03 + 0.005 * len(model.columns)

    @property
    def nbytes(self) -> int:
        return sum(model.nbytes for model in self.models.values())


def table_or_groups(
    query: CardQuery, table: str
) -> list[list[TablePredicate]]:
    """``table``'s OR-groups, validating that no group spans tables."""
    for group in query.or_groups:
        tables_in_group = {p.table for p in group}
        if table in tables_in_group and tables_in_group != {table}:
            raise EstimationError(
                "OR-groups spanning multiple tables are not supported"
            )
    return [
        [p for p in group if p.table == table]
        for group in query.or_groups
        if any(p.table == table for p in group)
    ]


def _selectivity_with_or_groups(
    model: TreeBayesNet,
    base: list[TablePredicate],
    groups: list[list[TablePredicate]],
    selectivity_fn: Callable[[list[TablePredicate]], float] | None = None,
) -> float:
    """Inclusion-exclusion over OR-groups, evaluated by the BN.

    ``P(base AND (g1a OR g1b) AND ...)`` expands into signed conjunctive
    terms; each conjunctive term is one BN selectivity call.  The expansion
    is exponential in the number of OR-groups, which is fine for the 1-2
    groups real queries carry (the paper applies the same transform).

    ``selectivity_fn`` substitutes the per-term evaluator -- shared-belief
    inference plans inject a memoizing wrapper here so each distinct
    conjunctive term is inferred at most once per plan, while the expansion
    structure (term order, per-level clipping) stays exactly the naive one.
    """
    if selectivity_fn is None:
        selectivity_fn = model.selectivity
    if not groups:
        return selectivity_fn(base)
    total = 0.0
    first, rest = groups[0], groups[1:]
    # Inclusion-exclusion over the members of the first group, recursing
    # into the remaining groups.
    for size in range(1, len(first) + 1):
        sign = (-1.0) ** (size + 1)
        for subset in combinations(first, size):
            total += sign * _selectivity_with_or_groups(
                model, base + list(subset), rest, selectivity_fn
            )
    return float(min(max(total, 0.0), 1.0))


def or_expansion_term_predicates(
    base: list[TablePredicate],
    groups: list[list[TablePredicate]],
) -> list[tuple[TablePredicate, ...]]:
    """Every conjunctive term :func:`_selectivity_with_or_groups` evaluates.

    Mirrors the expansion recursion exactly -- same subset enumeration,
    same ``base + subset`` concatenation order -- so the returned tuples
    are the memo keys ``TableInferencePlan.term_selectivity`` will look up.
    This is what lets the fused inference kernel pre-seed every term of a
    scope in the same batched pass that fills its beliefs.
    """
    terms: list[tuple[TablePredicate, ...]] = []

    def recurse(
        acc: list[TablePredicate], rest: list[list[TablePredicate]]
    ) -> None:
        if not rest:
            terms.append(tuple(acc))
            return
        first, tail = rest[0], rest[1:]
        for size in range(1, len(first) + 1):
            for subset in combinations(first, size):
                recurse(acc + list(subset), tail)

    if groups:
        recurse(list(base), list(groups))
    return terms


def or_expansion_terms(groups: list[list[TablePredicate]]) -> int:
    """Conjunctive terms (BN passes) the inclusion-exclusion expansion costs.

    One per non-empty member subset of each group, multiplied across groups;
    zero when there are no groups (the AND-only pass is counted separately).
    """
    if not groups:
        return 0
    terms = 1
    for group in groups:
        terms *= (1 << len(group)) - 1
    return terms
