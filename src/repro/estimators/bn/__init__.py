"""Tree-structured Bayesian networks: ByteCard's single-table COUNT model.

Structure is learned with the Chow-Liu algorithm (maximum-spanning tree over
pairwise mutual information), parameters with EM (which reduces to smoothed
maximum likelihood on fully observed data), and inference runs by variable
elimination (sum-product) over an *immutable inference context* -- the
topologically-indexed CPD arrays the paper's ``initContext`` interface
prepares so that query threads can estimate lock-free.
"""

from repro.estimators.bn.discretize import Discretizer
from repro.estimators.bn.chow_liu import chow_liu_tree, mutual_information_matrix
from repro.estimators.bn.learning import learn_parameters
from repro.estimators.bn.model import TreeBayesNet, fit_tree_bn
from repro.estimators.bn.inference import BNInferenceContext
from repro.estimators.bn.estimator import BNCountEstimator

__all__ = [
    "Discretizer",
    "chow_liu_tree",
    "mutual_information_matrix",
    "learn_parameters",
    "TreeBayesNet",
    "fit_tree_bn",
    "BNInferenceContext",
    "BNCountEstimator",
]
