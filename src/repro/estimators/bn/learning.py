"""Parameter learning for tree Bayesian networks.

The ModelForge Service learns CPDs with Expectation-Maximization on the
fixed Chow-Liu structure (paper Section 4.3).  On fully observed data EM
converges in a single M-step to the smoothed maximum-likelihood estimate;
the E-step matters when training rows have missing entries (``-1`` bin
codes), which happens when sampled ingestion batches carry NULLs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError

MISSING = -1


def _mle_counts(
    binned: np.ndarray,
    parents: np.ndarray,
    bin_counts: list[int],
    weights: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Sufficient statistics (count tables) from fully observed rows."""
    d = binned.shape[1]
    tables: list[np.ndarray] = []
    for node in range(d):
        parent = int(parents[node])
        if parent < 0:
            counts = np.zeros(bin_counts[node], dtype=np.float64)
            if weights is None:
                np.add.at(counts, binned[:, node], 1.0)
            else:
                np.add.at(counts, binned[:, node], weights)
        else:
            counts = np.zeros((bin_counts[parent], bin_counts[node]), dtype=np.float64)
            if weights is None:
                np.add.at(counts, (binned[:, parent], binned[:, node]), 1.0)
            else:
                np.add.at(counts, (binned[:, parent], binned[:, node]), weights)
        tables.append(counts)
    return tables


def _normalize(tables: list[np.ndarray], smoothing: float) -> list[np.ndarray]:
    """Turn count tables into (conditional) probability tables.

    ``smoothing`` is the *total* pseudo-count budget per distribution (i.e.
    per CPD row), spread evenly over its cells -- so wide CPDs (many child
    bins) are not flattened more than narrow ones.
    """
    cpds: list[np.ndarray] = []
    for counts in tables:
        per_cell = smoothing / counts.shape[-1]
        smoothed = counts + per_cell
        if smoothed.ndim == 1:
            cpds.append(smoothed / smoothed.sum())
        else:
            row_sums = smoothed.sum(axis=1, keepdims=True)
            cpds.append(smoothed / row_sums)
    return cpds


def learn_parameters(
    binned: np.ndarray,
    parents: np.ndarray,
    bin_counts: list[int],
    smoothing: float = 0.1,
    max_em_iterations: int = 10,
    tolerance: float = 1e-4,
) -> list[np.ndarray]:
    """Learn CPDs on a fixed tree structure.

    Parameters
    ----------
    binned:
        ``(rows, columns)`` integer bin codes; :data:`MISSING` marks a
        missing entry.
    parents:
        Parent index per column (-1 for the root), as from
        :func:`repro.estimators.bn.chow_liu.chow_liu_tree`.
    bin_counts:
        Number of bins per column.
    smoothing:
        Laplace pseudo-count added to every cell.
    max_em_iterations / tolerance:
        EM budget, only exercised when missing entries exist.

    Returns the CPD list: a 1-D prior for the root, a ``(parent_bins,
    child_bins)`` matrix for every other node.
    """
    if binned.ndim != 2:
        raise TrainingError("binned data must be a 2-D matrix")
    rows, d = binned.shape
    if rows == 0:
        raise TrainingError("cannot learn parameters from zero rows")
    if d != parents.size or d != len(bin_counts):
        raise TrainingError("parents/bin_counts do not match the data width")

    observed_mask = binned != MISSING
    fully_observed = observed_mask.all(axis=1)
    complete = binned[fully_observed]
    if complete.shape[0] == 0:
        raise TrainingError("EM needs at least one fully observed row to start")

    cpds = _normalize(_mle_counts(complete, parents, bin_counts), smoothing)
    incomplete = binned[~fully_observed]
    if incomplete.shape[0] == 0:
        return cpds

    # EM over the incomplete rows.  For a tree with at most one missing
    # entry per row the posterior is exact and cheap; multi-missing rows are
    # handled with a mean-field single-variable update, which is a standard
    # and adequate approximation for the low NULL rates seen in practice.
    previous_loglike = -np.inf
    for _ in range(max_em_iterations):
        tables = _mle_counts(complete, parents, bin_counts)
        loglike = 0.0
        for row in incomplete:
            filled, row_loglike = _expected_fill(row, parents, bin_counts, cpds)
            loglike += row_loglike
            for node in range(d):
                parent = int(parents[node])
                if parent < 0:
                    tables[node] += filled[node]
                else:
                    tables[node] += np.outer(filled[parent], filled[node])
        cpds = _normalize(tables, smoothing)
        if abs(loglike - previous_loglike) < tolerance * max(1.0, abs(loglike)):
            break
        previous_loglike = loglike
    return cpds


def _expected_fill(
    row: np.ndarray,
    parents: np.ndarray,
    bin_counts: list[int],
    cpds: list[np.ndarray],
) -> tuple[list[np.ndarray], float]:
    """Posterior bin distribution of every variable for one row.

    Observed variables get a one-hot; missing variables get their posterior
    given the observed ones, computed by sum-product on the tree.
    """
    from repro.estimators.bn.inference import BNInferenceContext

    d = row.size
    evidence: list[np.ndarray] = []
    for node in range(d):
        vec = np.ones(bin_counts[node]) if row[node] == MISSING else None
        if vec is None:
            vec = np.zeros(bin_counts[node])
            vec[int(row[node])] = 1.0
        evidence.append(vec)
    context = BNInferenceContext.from_structure(parents, cpds)
    beliefs, probability = context.beliefs(evidence)
    filled = []
    for node in range(d):
        belief = beliefs[node]
        total = belief.sum()
        filled.append(belief / total if total > 0 else np.ones_like(belief) / belief.size)
    return filled, float(np.log(max(probability, 1e-300)))
