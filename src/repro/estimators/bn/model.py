"""The tree Bayesian network model for one table.

Bundles the per-column discretizers, the Chow-Liu structure, the learned
CPDs, and the frozen :class:`BNInferenceContext`.  Mirrors the paper's
Figure 4 model: each node is a table column, each edge a conditional
dependency captured by a 1-D (root) or 2-D CPD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError, TrainingError
from repro.estimators.bn.chow_liu import chow_liu_tree, mutual_information_matrix, select_root
from repro.estimators.bn.discretize import Discretizer
from repro.estimators.bn.inference import BNInferenceContext
from repro.estimators.bn.learning import learn_parameters
from repro.sql.query import TablePredicate
from repro.storage.table import Table


@dataclass
class TreeBayesNet:
    """A trained single-table COUNT model."""

    table_name: str
    columns: tuple[str, ...]
    discretizers: dict[str, Discretizer]
    parents: np.ndarray
    cpds: list[np.ndarray]
    total_rows: int
    #: built by ``init_context`` (the paper's initContext); None until then
    context: BNInferenceContext | None = None

    # ------------------------------------------------------------------
    def init_context(self) -> BNInferenceContext:
        """Build (or return) the immutable inference context."""
        if self.context is None:
            self.context = BNInferenceContext.from_structure(self.parents, self.cpds)
        return self.context

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise EstimationError(
                f"BN for {self.table_name!r} does not model column {column!r}"
            ) from None

    @property
    def nbytes(self) -> int:
        """Serialized model size (CPDs + discretizer edges)."""
        return int(
            sum(c.nbytes for c in self.cpds)
            + sum(d.nbytes for d in self.discretizers.values())
            + self.parents.nbytes
        )

    # ------------------------------------------------------------------
    def evidence_for(
        self, predicates: list[TablePredicate]
    ) -> list[np.ndarray]:
        """Per-node evidence vectors for a conjunction of predicates."""
        context = self.init_context()
        evidence = [
            np.ones(context.bin_count(i)) for i in range(len(self.columns))
        ]
        for pred in predicates:
            if pred.table != self.table_name:
                raise EstimationError(
                    f"predicate on {pred.table!r} given to BN of {self.table_name!r}"
                )
            index = self.column_index(pred.column)
            evidence[index] = evidence[index] * self.discretizers[
                pred.column
            ].evidence(pred)
        return evidence

    def selectivity(self, predicates: list[TablePredicate]) -> float:
        """P(all predicates) under the model."""
        context = self.init_context()
        if not predicates:
            return 1.0
        return context.selectivity(self.evidence_for(predicates))

    def stacked_evidence_for(
        self, predicate_lists: list[list[TablePredicate]]
    ) -> list[np.ndarray]:
        """Per-node ``(bins, B)`` evidence matrices, one column per query."""
        context = self.init_context()
        batch = len(predicate_lists)
        stacked = [
            np.ones((context.bin_count(i), batch))
            for i in range(len(self.columns))
        ]
        for b, predicates in enumerate(predicate_lists):
            for pred in predicates:
                if pred.table != self.table_name:
                    raise EstimationError(
                        f"predicate on {pred.table!r} given to BN of "
                        f"{self.table_name!r}"
                    )
                index = self.column_index(pred.column)
                stacked[index][:, b] *= self.discretizers[pred.column].evidence(
                    pred
                )
        return stacked

    def selectivity_batch(
        self, predicate_lists: list[list[TablePredicate]]
    ) -> np.ndarray:
        """P(all predicates) for many conjunctions in one inference pass.

        Evidence columns of the whole batch are stacked per node so the
        sum-product runs once with matrix messages; see
        :meth:`BNInferenceContext.selectivity_batch`.
        """
        context = self.init_context()
        if not predicate_lists:
            return np.empty(0)
        return context.selectivity_batch(
            self.stacked_evidence_for(predicate_lists)
        )

    def beliefs_for(
        self, predicates: list[TablePredicate]
    ) -> tuple[list[np.ndarray], float]:
        """All per-column joint vectors plus P(predicates) in ONE pass.

        ``beliefs[i][c] = P(column_i in bin c, predicates)`` and the float is
        the conjunction's selectivity (the root belief total).  This is the
        primitive behind shared-belief inference plans: every join-key
        :meth:`distribution` and the local selectivity of one (table,
        predicates) scope come out of a single two-pass sum-product.
        """
        context = self.init_context()
        return context.beliefs(self.evidence_for(predicates))

    def beliefs_batch(
        self, predicate_lists: list[list[TablePredicate]]
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Batched :meth:`beliefs_for`: column ``b`` of each ``(bins, B)``
        matrix holds the beliefs of ``predicate_lists[b]``."""
        context = self.init_context()
        if not predicate_lists:
            return [], np.empty(0)
        return context.beliefs_batch(
            self.stacked_evidence_for(predicate_lists)
        )

    def estimate_rows_batch(
        self, predicate_lists: list[list[TablePredicate]]
    ) -> np.ndarray:
        return self.selectivity_batch(predicate_lists) * self.total_rows

    def estimate_rows(self, predicates: list[TablePredicate]) -> float:
        return self.selectivity(predicates) * self.total_rows

    def distribution(
        self, column: str, predicates: list[TablePredicate]
    ) -> np.ndarray:
        """``P(column in bin, predicates)`` over the column's bins.

        This is the marginal FactorJoin consumes: when ``column`` is a join
        key discretized on join-bucket boundaries, the result is the
        filtered per-bucket probability mass.
        """
        context = self.init_context()
        index = self.column_index(column)
        return context.marginal_with_evidence(index, self.evidence_for(predicates))


def fit_tree_bn(
    table: Table,
    columns: list[str],
    max_bins: int = 64,
    bucket_edges: dict[str, np.ndarray] | None = None,
    sample_rows: int | None = None,
    rng: np.random.Generator | None = None,
    smoothing: float = 0.1,
) -> TreeBayesNet:
    """Train a tree BN over ``columns`` of ``table``.

    Parameters
    ----------
    bucket_edges:
        Join-bucket boundaries per join-key column: those columns are
        discretized on exactly these edges so that FactorJoin's buckets and
        the BN's bins coincide.
    sample_rows:
        Train on a uniform sample of this many rows (the ModelForge trains
        on "online sampled data"); ``None`` uses the whole table.
    """
    if not columns:
        raise TrainingError(f"no columns selected for BN of {table.name!r}")
    for column in columns:
        if not table.has_column(column):
            raise TrainingError(f"table {table.name!r} has no column {column!r}")
    bucket_edges = bucket_edges or {}

    training = table
    if sample_rows is not None and sample_rows < len(table):
        if rng is None:
            rng = np.random.default_rng(0)
        training = table.sample(sample_rows, rng)

    discretizers: dict[str, Discretizer] = {}
    binned_columns: list[np.ndarray] = []
    bin_counts: list[int] = []
    for column in columns:
        full_values = table.column(column).values
        edges = bucket_edges.get(column)
        disc = Discretizer(full_values, max_bins=max_bins, edges=edges)
        discretizers[column] = disc
        binned_columns.append(disc.bin_of(training.column(column).values))
        bin_counts.append(disc.num_bins)
    binned = np.stack(binned_columns, axis=1)

    if len(columns) == 1:
        parents = np.array([-1], dtype=np.int64)
    else:
        mi = mutual_information_matrix(binned, bin_counts)
        parents = chow_liu_tree(mi, root=select_root(mi))
    cpds = learn_parameters(binned, parents, bin_counts, smoothing=smoothing)

    model = TreeBayesNet(
        table_name=table.name,
        columns=tuple(columns),
        discretizers=discretizers,
        parents=parents,
        cpds=cpds,
        total_rows=len(table),
    )
    model.init_context()
    return model
