"""Fused cross-query BN inference kernels (compiled level-packed sweeps).

:class:`BNInferenceContext` already batches the two-pass sum-product over a
``(bins, B)`` evidence matrix per node, but both sweeps still walk the tree
node by node in Python: one ``cpds[node] @ local`` GEMM dispatch per node,
one prefix/suffix sibling loop per parent.  For the shallow, narrow trees
Chow-Liu produces that Python dispatch dominates the arithmetic.

:class:`KernelPlan` compiles a model's tree once into a *level-packed*
layout and replaces the per-node walk with a handful of stacked GEMMs:

* nodes are grouped by ``(depth level, parent_bins, own_bins)`` -- grouping
  by exact CPD shape (instead of zero-padding a level to a common shape)
  keeps every stacked ``np.matmul`` bitwise identical to the per-node
  2-D products it replaces, with no masking arithmetic;
* each group's CPDs live in one contiguous ``(k, P, C)`` tensor; the upward
  messages of a whole group are one ``np.matmul(cpd_pack, local_pack)`` and
  the downward messages one ``np.matmul(cpd_pack.transpose(0, 2, 1),
  context_pack)`` -- the transpose *view* matters: a contiguous transposed
  copy changes BLAS kernel selection and breaks bit-identity at B=1;
* sibling prefix/suffix products become precompiled gather/scatter multiply
  instructions over ones-initialized accumulators (multiplying by an exact
  1.0 is bitwise neutral, so ragged fanouts need no conditionals).

The result of :meth:`KernelPlan.run` is bit-identical to
:meth:`BNInferenceContext.beliefs_batch` by construction (same operands,
same multiplication order, commuted only where IEEE multiplication commutes
bitwise) and is pinned so by property tests.

Evidence assembly is fed by :class:`EvidenceCache`: a generation-stamped
``predicate -> bin-mask vector`` cache so repeated query templates skip the
per-predicate Python bin loops of :meth:`Discretizer.evidence`.  Model
refreshes bump the owning table's generation exactly like the serving
tier's estimate/plan caches.

Backend selection (``REPRO_BN_KERNEL``):

* ``numpy`` (default, also ``""``/``on``/``1``): pure-NumPy kernels;
* ``numba``: jit-compiled scatter/gather multiply loops when numba is
  importable, silently falling back to ``numpy`` when it is not (the
  jitted loops perform the same IEEE elementwise multiplies, so results
  stay bitwise identical);
* ``off`` (also ``0``/``none``/``disabled``): disable the kernel path
  entirely -- estimators fall back to the PR 5 shared-plans pipeline.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelError
from repro.estimators.bn.discretize import Discretizer
from repro.estimators.bn.inference import BNInferenceContext
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import TablePredicate

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover - the common case in CI images
    numba = None

HAVE_NUMBA = numba is not None

#: environment variable selecting the kernel backend
BACKEND_ENV = "REPRO_BN_KERNEL"


def resolve_backend(mode: str | None = None) -> str:
    """Normalize a backend request (argument wins over ``REPRO_BN_KERNEL``).

    Returns one of ``"numpy"``, ``"numba"``, ``"off"``.  Asking for numba
    without numba installed degrades to ``"numpy"`` rather than failing --
    the flag is a fast-path hint, not a hard dependency.
    """
    raw = mode if mode is not None else os.environ.get(BACKEND_ENV, "")
    value = raw.strip().lower()
    if value in ("", "numpy", "on", "1", "default"):
        return "numpy"
    if value in ("off", "0", "none", "disabled"):
        return "off"
    if value == "numba":
        return "numba" if HAVE_NUMBA else "numpy"
    raise ValueError(f"unknown {BACKEND_ENV} backend {raw!r}")


# ----------------------------------------------------------------------
# Scatter/gather multiply primitives (the only backend-dependent ops).
# Both perform the same IEEE elementwise multiplies on the same operands,
# so switching backends never changes a single bit of the result.
# ----------------------------------------------------------------------
def _numpy_scatter_multiply(
    dst: np.ndarray,
    dst_slots: np.ndarray,
    src: np.ndarray,
    src_slots: np.ndarray,
) -> None:
    dst[dst_slots] *= src[src_slots]


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _numba_scatter_multiply(dst, dst_slots, src, src_slots):
        for i in range(dst_slots.size):
            dst[dst_slots[i]] *= src[src_slots[i]]

else:
    _numba_scatter_multiply = None


class _FlatSchedule:
    """Degenerate-group schedule: every shape group holds exactly one node.

    Chow-Liu trees over real tables rarely put two same-shaped CPDs on one
    level (bin counts are data-driven and almost always distinct), so the
    stacked ``(k, P, C)`` GEMMs degenerate to ``k = 1`` and the gather /
    scatter machinery around them -- pack copies, single-slot fancy
    indexing, ones-initialized accumulators -- becomes pure overhead.  This
    schedule precompiles the same sweep as straight 2-D ops per node:

    * upward: one ``cpd @ local`` GEMM per non-root group plus one
      elementwise multiply per edge (the first multiply into a parent
      allocates ``evidence * message`` instead of copying the evidence);
    * downward: sibling prefix/suffix products chain plain multiplies,
      skipping the neutral ``* 1.0`` terms entirely (bitwise no-ops).

    Every operation consumes the same IEEE operands in the same order as
    the grouped sweep, so results stay bit-identical; the property tests
    pin both paths against :meth:`BNInferenceContext.beliefs_batch`.
    """

    __slots__ = ("cpd", "cpd_t", "up_gemms", "up_mults", "down")

    def __init__(self, plan: "KernelPlan"):
        groups = plan.groups
        self.cpd = [
            None if grp.cpd_pack is None else grp.cpd_pack[0] for grp in groups
        ]
        self.cpd_t = [
            None if grp.cpd_pack_t is None else grp.cpd_pack_t[0]
            for grp in groups
        ]
        # Upward: GEMM groups per level, then (dst, src, fresh) multiplies
        # in the exact sorted-bucket order of the grouped scatter pass.
        # ``fresh`` marks the first message into a parent's local factor.
        self.up_gemms: list[list[int]] = [
            list(plan.groups_at_level[level])
            for level in range(plan.depth + 1)
        ]
        self.up_mults: list[list[tuple[int, int, bool]]] = []
        for level in range(plan.depth + 1):
            seen: set[int] = set()
            mults: list[tuple[int, int, bool]] = []
            for dst_g, _d, src_g, _s in plan.up_scatter[level]:
                mults.append((dst_g, src_g, dst_g not in seen))
                seen.add(dst_g)
            self.up_mults.append(mults)
        # Downward: per level, (parent group, child groups in rank order).
        self.down: list[list[tuple[int, list[int]]]] = []
        for level in range(plan.depth):
            entries: list[tuple[int, list[int]]] = []
            for g, ranks in plan.down_schedule[level]:
                entries.append((g, [sources[0][0] for _ps, sources in ranks]))
            self.down.append(entries)


class _Group:
    """One (level, parent_bins, bins) shape group of tree nodes."""

    __slots__ = ("level", "nodes", "parent_bins", "bins", "cpd_pack", "cpd_pack_t")

    def __init__(
        self,
        level: int,
        nodes: np.ndarray,
        parent_bins: int,
        bins: int,
        cpd_pack: np.ndarray | None,
    ):
        self.level = level
        self.nodes = nodes
        self.parent_bins = parent_bins
        self.bins = bins
        self.cpd_pack = cpd_pack
        # Transpose VIEW (required for bit-identity with per-node ``A.T @ x``).
        self.cpd_pack_t = None if cpd_pack is None else cpd_pack.transpose(0, 2, 1)


class KernelRun:
    """Results of one kernel invocation: per-node belief packs + P(evidence)."""

    def __init__(
        self,
        plan: "KernelPlan",
        beliefs: list[np.ndarray],
        probabilities: np.ndarray,
        batch: int,
    ):
        self.plan = plan
        self._beliefs = beliefs
        #: ``(B,)`` clipped root-belief totals -- one selectivity per column
        self.probabilities = probabilities
        self.batch = batch
        self._transposed: dict[int, np.ndarray] = {}

    def beliefs_matrix(self, node: int) -> np.ndarray:
        """``(bins, B)`` belief matrix of one node (a view into the packs)."""
        plan = self.plan
        pack = self._beliefs[plan.group_of[node]]
        if pack.ndim == 2:  # flat schedule: one node per group, 2-D packs
            return pack
        return pack[plan.slot_of[node]]

    def beliefs_list(self) -> list[np.ndarray]:
        """Per-node belief matrices in node order -- the
        :meth:`BNInferenceContext.beliefs_batch` result shape."""
        return [self.beliefs_matrix(node) for node in range(self.plan.num_nodes)]

    def probability(self, column: int) -> float:
        return float(self.probabilities[column])

    def scope_beliefs(self, column: int) -> list[np.ndarray]:
        """Per-node contiguous belief columns for one evidence column.

        Each node's ``(bins, B)`` matrix is transposed into a contiguous
        ``(B, bins)`` buffer once per run (cached), after which every
        column's vector is a zero-copy contiguous row view -- the same
        float values ``np.ascontiguousarray(matrix[:, column])`` would
        copy, without the per-scope copies.
        """
        out: list[np.ndarray] = []
        for node in range(self.plan.num_nodes):
            buf = self._transposed.get(node)
            if buf is None:
                buf = np.ascontiguousarray(self.beliefs_matrix(node).T)
                buf.setflags(write=False)
                self._transposed[node] = buf
            out.append(buf[column])
        return out


class KernelPlan:
    """A model's tree compiled for fused cross-query sum-product sweeps.

    Compile once per (model, process); :meth:`run` / :meth:`run_packs` are
    then lock-free and may be called concurrently from many threads.
    """

    def __init__(
        self,
        context: BNInferenceContext,
        backend: str = "numpy",
        flat: bool | None = None,
    ):
        if backend == "numba" and not HAVE_NUMBA:
            backend = "numpy"
        if backend not in ("numpy", "numba"):
            raise ValueError(f"unknown kernel backend {backend!r}")
        self.backend = backend
        self.context = context
        n = context.num_nodes
        self.num_nodes = n
        self.root = context.root

        depth = np.zeros(n, dtype=np.int64)
        for node in map(int, context.order[1:]):
            depth[node] = depth[int(context.parents[node])] + 1
        self.depth = int(depth.max()) if n else 0

        # -- shape groups ----------------------------------------------
        self.group_of = np.zeros(n, dtype=np.int64)
        self.slot_of = np.zeros(n, dtype=np.int64)
        raw_groups: list[dict] = []
        group_index: dict[tuple[int, int, int], int] = {}
        root_cpd = context.cpds[self.root]
        raw_groups.append(
            {"level": 0, "nodes": [self.root], "parent_bins": 0, "bins": int(root_cpd.shape[0])}
        )
        for node in map(int, context.order[1:]):
            cpd = context.cpds[node]
            key = (int(depth[node]), int(cpd.shape[0]), int(cpd.shape[1]))
            g = group_index.get(key)
            if g is None:
                g = group_index[key] = len(raw_groups)
                raw_groups.append(
                    {"level": key[0], "nodes": [], "parent_bins": key[1], "bins": key[2]}
                )
            self.group_of[node] = g
            self.slot_of[node] = len(raw_groups[g]["nodes"])
            raw_groups[g]["nodes"].append(node)
        self.groups: list[_Group] = []
        for g, info in enumerate(raw_groups):
            nodes = np.asarray(info["nodes"], dtype=np.int64)
            if g == 0:
                pack = None
            else:
                pack = np.ascontiguousarray(
                    np.stack([context.cpds[int(nd)] for nd in nodes], axis=0)
                )
                pack.setflags(write=False)
            self.groups.append(
                _Group(info["level"], nodes, info["parent_bins"], info["bins"], pack)
            )
        self.groups_at_level: list[list[int]] = [[] for _ in range(self.depth + 1)]
        for g, grp in enumerate(self.groups):
            self.groups_at_level[grp.level].append(g)
        #: ``(C, 1)`` root CPD column; broadcasts over the batch downward
        self.root_cpd_col = root_cpd[:, None]

        # -- upward scatter: child messages into parent locals ----------
        # One instruction per (rank, parent group, child group), emitted in
        # ascending child-rank order so the in-place multiplies hit each
        # parent's local factor in exactly _sweep_up's sequence.
        up_buckets: dict[tuple[int, int, int, int], tuple[list[int], list[int]]] = {}
        for node in map(int, context.order[1:]):
            parent = int(context.parents[node])
            rank = context.children[parent].index(node)
            key = (int(depth[node]), rank, int(self.group_of[parent]), int(self.group_of[node]))
            dst, src = up_buckets.setdefault(key, ([], []))
            dst.append(int(self.slot_of[parent]))
            src.append(int(self.slot_of[node]))
        self.up_scatter: list[list[tuple[int, np.ndarray, int, np.ndarray]]] = [
            [] for _ in range(self.depth + 1)
        ]
        for key in sorted(up_buckets):
            level, _rank, dst_g, src_g = key
            dst, src = up_buckets[key]
            self.up_scatter[level].append(
                (
                    dst_g,
                    np.asarray(dst, dtype=np.int64),
                    src_g,
                    np.asarray(src, dtype=np.int64),
                )
            )

        # -- downward schedule: per parent group, per child rank ---------
        # ``ranks[r] = (parent_slots, sources)`` where parent_slots are the
        # group slots of parents with fanout > r, and sources split their
        # rank-r children by child group: (child_group, child_slots,
        # positions-within-parent_slots).
        self.down_schedule: list[list[tuple[int, list[tuple[np.ndarray, list]]]]] = [
            [] for _ in range(self.depth)
        ]
        for level in range(self.depth):
            for g in self.groups_at_level[level]:
                grp = self.groups[g]
                fanouts = [len(context.children[int(nd)]) for nd in grp.nodes]
                max_rank = max(fanouts, default=0)
                if max_rank == 0:
                    continue
                ranks: list[tuple[np.ndarray, list]] = []
                for rank in range(max_rank):
                    parent_slots: list[int] = []
                    by_child_group: dict[int, tuple[list[int], list[int]]] = {}
                    for slot, nd in enumerate(map(int, grp.nodes)):
                        kids = context.children[nd]
                        if len(kids) <= rank:
                            continue
                        position = len(parent_slots)
                        parent_slots.append(slot)
                        child = kids[rank]
                        h = int(self.group_of[child])
                        cslots, positions = by_child_group.setdefault(h, ([], []))
                        cslots.append(int(self.slot_of[child]))
                        positions.append(position)
                    sources = [
                        (
                            h,
                            np.asarray(cslots, dtype=np.int64),
                            np.asarray(positions, dtype=np.int64),
                        )
                        for h, (cslots, positions) in sorted(by_child_group.items())
                    ]
                    ranks.append((np.asarray(parent_slots, dtype=np.int64), sources))
                self.down_schedule[level].append((g, ranks))

        # Groups whose local factors receive child messages (scatter
        # destinations) need a private copy of their evidence pack; all
        # other groups -- leaves, the bulk of a Chow-Liu tree -- can alias
        # the evidence directly, exactly like _sweep_up's childless nodes.
        scatter_dsts = {
            dst_g
            for level_instrs in self.up_scatter
            for dst_g, _d, _s, _ss in level_instrs
        }
        self.needs_local_copy = [g in scatter_dsts for g in range(len(self.groups))]

        # When every shape group is a single node (the norm for real
        # models, whose bin counts rarely collide) the stacked GEMMs buy
        # nothing and a flat 2-D schedule is strictly cheaper.  ``flat``
        # overrides the auto-detection so tests can pin either path.
        if flat is None:
            flat = all(grp.nodes.size == 1 for grp in self.groups)
        elif flat and any(grp.nodes.size != 1 for grp in self.groups):
            raise ModelError(
                "flat kernel schedule requires single-node shape groups"
            )
        self.flat = bool(flat)
        self._flat = _FlatSchedule(self) if self.flat else None

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(
            sum(g.cpd_pack.nbytes for g in self.groups if g.cpd_pack is not None)
        )

    def ones_packs(self, batch: int) -> list[np.ndarray]:
        """Fresh all-ones evidence packs for a ``batch``-column invocation."""
        if batch < 1:
            raise ModelError("kernel batch must be >= 1")
        if self.flat:
            return [np.ones((grp.bins, batch)) for grp in self.groups]
        return [
            np.ones((grp.nodes.size, grp.bins, batch)) for grp in self.groups
        ]

    def apply_evidence(
        self,
        packs: list[np.ndarray],
        node: int,
        column: int,
        vector: np.ndarray,
    ) -> None:
        """Multiply one predicate's bin-mask into one evidence column."""
        if self.flat:
            packs[self.group_of[node]][:, column] *= vector
        else:
            packs[self.group_of[node]][self.slot_of[node], :, column] *= vector

    # ------------------------------------------------------------------
    def run(self, evidence: Sequence[np.ndarray]) -> KernelRun:
        """Batched beliefs from per-node ``(bins, B)`` evidence matrices.

        Same contract as :meth:`BNInferenceContext.beliefs_batch`; the
        per-node matrices are scattered into the level packs and swept.
        """
        batch = self.context._check_evidence_batch(evidence)
        if batch < 1:
            raise ModelError("kernel batch must be >= 1")
        if self.flat:
            # One node per group: the 2-D matrices ARE the packs (no copy).
            return self.run_packs(
                [
                    np.asarray(evidence[int(grp.nodes[0])], dtype=np.float64)
                    for grp in self.groups
                ]
            )
        packs = [
            np.empty((grp.nodes.size, grp.bins, batch)) for grp in self.groups
        ]
        for node in range(self.num_nodes):
            packs[self.group_of[node]][self.slot_of[node]] = evidence[node]
        return self.run_packs(packs)

    def _up_grouped(self, ev_packs: list[np.ndarray]):
        """Grouped upward sweep: per-group local factors and messages."""
        scatter_multiply = (
            _numba_scatter_multiply
            if self.backend == "numba" and _numba_scatter_multiply is not None
            else _numpy_scatter_multiply
        )
        # Local factors start as (copies of) the evidence; child messages
        # are multiplied in below, in child-rank order.  Only scatter
        # destinations are ever written, so the rest alias the evidence.
        local = [
            pack.copy() if copy else pack
            for pack, copy in zip(ev_packs, self.needs_local_copy)
        ]
        msgs: list[np.ndarray | None] = [None] * len(self.groups)
        # Deepest level first; one stacked GEMM per shape group.
        for level in range(self.depth, 0, -1):
            for g in self.groups_at_level[level]:
                grp = self.groups[g]
                msgs[g] = np.matmul(grp.cpd_pack, local[g])
            for dst_g, dst_slots, src_g, src_slots in self.up_scatter[level]:
                scatter_multiply(local[dst_g], dst_slots, msgs[src_g], src_slots)
        return scatter_multiply, local, msgs

    def _up_flat(self, ev: list[np.ndarray]):
        """Flat upward sweep: per-node 2-D local factors and messages."""
        sched = self._flat
        assert sched is not None
        cpd = sched.cpd
        # Leaves alias the evidence; a parent's first message allocates
        # the ``evidence * message`` product fresh.
        local: list[np.ndarray] = list(ev)
        msgs: list[np.ndarray | None] = [None] * len(self.groups)
        for level in range(self.depth, 0, -1):
            for g in sched.up_gemms[level]:
                msgs[g] = cpd[g] @ local[g]
            for dst_g, src_g, fresh in sched.up_mults[level]:
                if fresh:
                    local[dst_g] = ev[dst_g] * msgs[src_g]
                else:
                    local[dst_g] *= msgs[src_g]
        return local, msgs

    def selectivities_packs(self, ev_packs: list[np.ndarray]) -> np.ndarray:
        """``(B,)`` evidence probabilities from the upward sweep alone.

        Bitwise identical to :meth:`BNInferenceContext.selectivity_batch`
        on the same stacked evidence -- the single-table COUNT batch path
        needs no per-node beliefs, so the downward sweep is skipped.
        """
        if self.flat:
            local, _msgs = self._up_flat(ev_packs)
            root_belief = self.root_cpd_col * local[0]
        else:
            _sm, local, _msgs = self._up_grouped(ev_packs)
            root_belief = self.root_cpd_col * local[0][0]
        return np.clip(root_belief.sum(axis=0), 0.0, 1.0)

    def run_packs(self, ev_packs: list[np.ndarray]) -> KernelRun:
        """The fused two-pass sweep over pre-assembled evidence packs.

        ``ev_packs`` is consumed read-only, so callers may reuse packs
        (belief matrices of childless nodes may alias them).
        """
        if self.flat:
            return self._run_packs_flat(ev_packs)
        batch = int(ev_packs[0].shape[2])
        scatter_multiply, local, msgs = self._up_grouped(ev_packs)

        # Downward: root to leaves; sibling products via ones-neutral
        # prefix/suffix accumulators (multiplying by exactly 1.0 is bitwise
        # neutral, so ragged fanouts need no conditionals).
        down: list[np.ndarray | None] = [None] * len(self.groups)
        beliefs: list[np.ndarray] = [np.empty(0)] * len(self.groups)
        down[0] = self.root_cpd_col  # (C, 1) broadcasts over the batch
        beliefs[0] = down[0] * local[0]
        for level in range(self.depth):
            ctx: dict[int, np.ndarray] = {
                h: np.empty(
                    (self.groups[h].nodes.size, self.groups[h].parent_bins, batch)
                )
                for h in self.groups_at_level[level + 1]
            }
            for g, ranks in self.down_schedule[level]:
                base = down[g] * ev_packs[g]
                suffix_acc = np.ones_like(base)
                suffixes: list[np.ndarray] = []
                for parent_slots, sources in reversed(ranks):
                    suffixes.append(suffix_acc[parent_slots])
                    for h, child_slots, positions in sources:
                        scatter_multiply(
                            suffix_acc, parent_slots[positions], msgs[h], child_slots
                        )
                suffixes.reverse()
                prefix_acc = np.ones_like(base)
                for (parent_slots, sources), suffix in zip(ranks, suffixes):
                    ctx_rows = base[parent_slots] * prefix_acc[parent_slots]
                    ctx_rows *= suffix
                    for h, child_slots, positions in sources:
                        ctx[h][child_slots] = ctx_rows[positions]
                        scatter_multiply(
                            prefix_acc, parent_slots[positions], msgs[h], child_slots
                        )
            for h in self.groups_at_level[level + 1]:
                grp = self.groups[h]
                down[h] = np.matmul(grp.cpd_pack_t, ctx[h])
                beliefs[h] = down[h] * local[h]

        probabilities = np.clip(beliefs[0][0].sum(axis=0), 0.0, 1.0)
        return KernelRun(self, beliefs, probabilities, batch)

    def _run_packs_flat(self, ev: list[np.ndarray]) -> KernelRun:
        """The same sweep over 2-D per-node packs (single-node groups).

        Bit-identical to the grouped sweep: the grouped path's single-slot
        gathers/scatters are plain elementwise ops here, its ones-neutral
        accumulator multiplies are skipped outright (``x * 1.0`` is bitwise
        ``x``), and ``matmul`` on a ``(1, P, C)`` stack equals the 2-D
        product of its only slice.
        """
        sched = self._flat
        assert sched is not None
        batch = int(ev[0].shape[1])
        cpd_t = sched.cpd_t
        n_groups = len(self.groups)
        local, msgs = self._up_flat(ev)

        down: list[np.ndarray | None] = [None] * n_groups
        beliefs: list[np.ndarray] = [np.empty(0)] * n_groups
        down[0] = self.root_cpd_col  # (C, 1) broadcasts over the batch
        beliefs[0] = down[0] * local[0]
        for level in range(self.depth):
            for g, child_groups in sched.down[level]:
                base = down[g] * ev[g]
                m = len(child_groups)
                if m == 1:
                    h = child_groups[0]
                    down[h] = cpd_t[h] @ base
                    beliefs[h] = down[h] * local[h]
                    continue
                # suffixes[r] = msgs[c_{m-1}] * ... * msgs[c_{r+1}]
                # (descending-rank left-associated, as in the grouped pass)
                suffixes: list[np.ndarray | None] = [None] * m
                acc: np.ndarray | None = None
                for r in range(m - 1, 0, -1):
                    mh = msgs[child_groups[r]]
                    acc = mh if acc is None else acc * mh
                    suffixes[r - 1] = acc
                prefix: np.ndarray | None = None
                for r, h in enumerate(child_groups):
                    context = base if prefix is None else base * prefix
                    suffix = suffixes[r]
                    if suffix is not None:
                        context = context * suffix
                    mh = msgs[h]
                    prefix = mh if prefix is None else prefix * mh
                    down[h] = cpd_t[h] @ context
                    beliefs[h] = down[h] * local[h]

        probabilities = np.clip(beliefs[0].sum(axis=0), 0.0, 1.0)
        return KernelRun(self, beliefs, probabilities, batch)


# ----------------------------------------------------------------------
# Compiled evidence
# ----------------------------------------------------------------------
#: (global_generation, table_generation) at insert time
_Stamp = tuple[int, int]


class EvidenceCache:
    """Generation-stamped ``predicate -> bin-mask vector`` LRU cache.

    :meth:`Discretizer.evidence` walks bins in a Python loop per predicate
    per query; for the repeated templates that dominate real workloads the
    resulting vectors are identical every time.  This cache keys them by
    the (frozen, hashable) :class:`TablePredicate` itself and invalidates
    like the serving tier's estimate/plan caches: a model refresh bumps the
    owning table's generation and lookups lazily drop stale entries.  The
    cached vectors are read-only so every consumer multiplies from the same
    immutable mask.

    Hit/miss/invalidation counts are mirrored into a
    :class:`~repro.obs.metrics.MetricsRegistry` as
    ``evidence_cache_hits_total`` / ``evidence_cache_misses_total`` /
    ``evidence_cache_invalidations_total``.
    """

    def __init__(
        self,
        max_entries: int = 8192,
        registry: MetricsRegistry | None = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self._lock = threading.Lock()
        self._entries: OrderedDict[TablePredicate, tuple[np.ndarray, _Stamp]] = (
            OrderedDict()
        )
        self._table_generation: dict[str, int] = {}
        self._global_generation = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        # Pre-register so exports show the series at zero from the start.
        self._hits_counter = self.registry.counter("evidence_cache_hits_total")
        self._misses_counter = self.registry.counter("evidence_cache_misses_total")
        self._invalidations_counter = self.registry.counter(
            "evidence_cache_invalidations_total"
        )

    # -- generations ---------------------------------------------------
    def bump_tables(self, tables: Iterable[str]) -> None:
        """Invalidate (lazily) every predicate vector on any of ``tables``."""
        with self._lock:
            for table in tables:
                self._table_generation[table] = (
                    self._table_generation.get(table, 0) + 1
                )

    def bump_all(self) -> None:
        """Invalidate (lazily) every cached vector."""
        with self._lock:
            self._global_generation += 1

    def _stamp(self, table: str) -> _Stamp:
        return (self._global_generation, self._table_generation.get(table, 0))

    # ------------------------------------------------------------------
    def vector(self, discretizer: Discretizer, pred: TablePredicate) -> np.ndarray:
        """The (read-only) bin-mask vector of one predicate.

        The discretizer is only consulted on a miss; its output is
        deterministic, so a current-generation hit is bitwise identical to
        a fresh :meth:`Discretizer.evidence` call.  A cached vector whose
        length no longer matches the discretizer (a refresh raced the bump)
        is treated as stale.
        """
        table = pred.table
        with self._lock:
            entry = self._entries.get(pred)
            if entry is not None:
                vec, stamp = entry
                if stamp == self._stamp(table) and vec.size == discretizer.num_bins:
                    self._entries.move_to_end(pred)
                    self.hits += 1
                    self._hits_counter.inc()
                    return vec
                del self._entries[pred]
                self.invalidations += 1
                self._invalidations_counter.inc()
        vec = np.ascontiguousarray(discretizer.evidence(pred), dtype=np.float64)
        vec.setflags(write=False)
        with self._lock:
            self._entries[pred] = (vec, self._stamp(table))
            self._entries.move_to_end(pred)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self.misses += 1
            self._misses_counter.inc()
        return vec

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
