"""Column discretization for Bayesian-network training and inference.

Each modeled column is mapped to a small number of bins.  Low-cardinality
columns get one bin per distinct value (exact); high-cardinality columns get
equi-height bins with within-bin uniformity assumed.  Join-key columns are
discretized on *join-bucket boundaries* supplied by the Model Preprocessor,
so that the BN's marginals line up exactly with FactorJoin's buckets.

A predicate is translated into an *evidence vector*: the per-bin fraction of
rows (assumed uniform within the bin) that satisfy the predicate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.sql.query import PredicateOp, TablePredicate


class Discretizer:
    """Bin mapping for one column.

    Parameters
    ----------
    values:
        The column data the bins are fitted on.
    max_bins:
        Upper bound on the number of bins.
    edges:
        Optional explicit bin edges (used for join keys: the join-bucket
        boundaries).  When given, ``max_bins`` is ignored.
    """

    def __init__(
        self,
        values: np.ndarray,
        max_bins: int = 64,
        edges: np.ndarray | None = None,
    ):
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise EstimationError("cannot discretize an empty column")
        uniques = np.unique(values)
        if edges is not None:
            edges = np.unique(np.asarray(edges, dtype=np.float64))
            if edges.size < 2:
                raise EstimationError("explicit edges must define >= 1 bin")
            self.edges = edges
            self.exact = False
        elif uniques.size <= max_bins:
            # One bin per distinct value: edges midway between neighbours.
            if uniques.size == 1:
                self.edges = np.array([uniques[0], uniques[0] + 1.0])
            else:
                mids = (uniques[:-1] + uniques[1:]) / 2.0
                self.edges = np.concatenate(
                    [[uniques[0] - 0.5], mids, [uniques[-1] + 0.5]]
                )
            self.exact = True
        else:
            from repro.estimators.traditional.histogram import equi_height_edges

            self.edges = equi_height_edges(np.sort(values), max_bins)
            self.exact = False

        self.num_bins = self.edges.size - 1
        #: for exact discretizers, the single value each bin represents
        self.exact_values: np.ndarray | None = uniques.copy() if self.exact else None
        self.min_value = float(uniques[0])
        self.max_value = float(uniques[-1])
        bins = self.bin_of(values)
        counts = np.bincount(bins, minlength=self.num_bins).astype(np.float64)
        self.bin_counts = counts
        ndv = np.zeros(self.num_bins, dtype=np.float64)
        np.add.at(ndv, self.bin_of(uniques), 1.0)
        self.bin_ndv = np.maximum(ndv, 1.0)
        self.total_rows = int(values.size)

    # ------------------------------------------------------------------
    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Bin index of each value (values outside the range are clamped)."""
        index = np.searchsorted(self.edges, np.asarray(values, dtype=np.float64),
                                side="right") - 1
        return np.clip(index, 0, self.num_bins - 1).astype(np.int64)

    @property
    def nbytes(self) -> int:
        return int(
            self.edges.nbytes + self.bin_counts.nbytes + self.bin_ndv.nbytes
        )

    # ------------------------------------------------------------------
    # Evidence vectors
    # ------------------------------------------------------------------
    def evidence(self, pred: TablePredicate) -> np.ndarray:
        """Per-bin fraction of rows satisfying ``pred``."""
        op = pred.op
        if op is PredicateOp.EQ:
            return self._eq_evidence(float(pred.value))  # type: ignore[arg-type]
        if op is PredicateOp.NE:
            return 1.0 - self._eq_evidence(float(pred.value))  # type: ignore[arg-type]
        if op is PredicateOp.IN:
            total = np.zeros(self.num_bins)
            for v in pred.value:  # type: ignore[union-attr]
                total += self._eq_evidence(float(v))
            return np.minimum(total, 1.0)
        if op is PredicateOp.BETWEEN:
            low, high = pred.value  # type: ignore[misc]
            return self._range_evidence(float(low), float(high),
                                        low_open=False, high_open=False)
        if op is PredicateOp.LT:
            return self._range_evidence(-np.inf, float(pred.value),  # type: ignore[arg-type]
                                        low_open=False, high_open=True)
        if op is PredicateOp.LE:
            return self._range_evidence(-np.inf, float(pred.value),  # type: ignore[arg-type]
                                        low_open=False, high_open=False)
        if op is PredicateOp.GT:
            return self._range_evidence(float(pred.value), np.inf,  # type: ignore[arg-type]
                                        low_open=True, high_open=False)
        if op is PredicateOp.GE:
            return self._range_evidence(float(pred.value), np.inf,  # type: ignore[arg-type]
                                        low_open=False, high_open=False)
        raise EstimationError(f"unsupported predicate operator {op}")

    def _eq_evidence(self, value: float) -> np.ndarray:
        vec = np.zeros(self.num_bins)
        if value < self.min_value or value > self.max_value:
            return vec
        bucket = int(self.bin_of(np.array([value]))[0])
        if self.exact:
            # Exact bins map one distinct value each: match or nothing.
            assert self.exact_values is not None
            if value == self.exact_values[bucket]:
                vec[bucket] = 1.0
        else:
            vec[bucket] = 1.0 / self.bin_ndv[bucket]
        return vec

    def _range_evidence(
        self, low: float, high: float, low_open: bool, high_open: bool
    ) -> np.ndarray:
        vec = np.zeros(self.num_bins)
        if self.exact:
            # Exact bins: a value either satisfies the range or does not.
            assert self.exact_values is not None
            values = self.exact_values
            above = values > low if low_open else values >= low
            below = values < high if high_open else values <= high
            vec[above & below] = 1.0
            return vec
        eps = 1e-9
        effective_low = low + eps if low_open else low
        effective_high = high - eps if high_open else high
        for bucket in range(self.num_bins):
            b_lo = self.edges[bucket]
            b_hi = self.edges[bucket + 1]
            width = max(b_hi - b_lo, 1e-12)
            overlap = min(effective_high, b_hi) - max(effective_low, b_lo)
            fraction = max(0.0, min(1.0, overlap / width))
            # Include the closed right endpoint of the last bin.
            if (
                bucket == self.num_bins - 1
                and effective_high >= b_hi
                and effective_low <= b_hi
            ):
                fraction = min(1.0, fraction + 1.0 / self.bin_ndv[bucket])
            vec[bucket] = fraction
        return vec
