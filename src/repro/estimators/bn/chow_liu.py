"""Chow-Liu structure learning.

The Chow-Liu algorithm (1968) finds the tree-structured distribution closest
in KL divergence to the empirical joint: compute pairwise mutual information
between all column pairs, take the maximum-weight spanning tree, and orient
it from a chosen root.  This is exactly the structural-learning step the
paper's ModelForge Service runs for every table's COUNT model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


def pairwise_mutual_information(
    x: np.ndarray, y: np.ndarray, x_bins: int, y_bins: int
) -> float:
    """Empirical mutual information (nats) between two binned columns."""
    n = x.size
    if n == 0:
        raise TrainingError("cannot compute mutual information of empty columns")
    joint = np.zeros((x_bins, y_bins), dtype=np.float64)
    np.add.at(joint, (x, y), 1.0)
    joint /= n
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)
    outer = np.outer(px, py)
    mask = joint > 0
    return float(np.sum(joint[mask] * np.log(joint[mask] / outer[mask])))


def mutual_information_matrix(
    binned: np.ndarray, bin_counts: list[int]
) -> np.ndarray:
    """Symmetric MI matrix over the columns of ``binned`` (n rows x d cols)."""
    n, d = binned.shape
    if d != len(bin_counts):
        raise TrainingError(
            f"binned data has {d} columns but {len(bin_counts)} bin counts given"
        )
    matrix = np.zeros((d, d), dtype=np.float64)
    for i in range(d):
        for j in range(i + 1, d):
            mi = pairwise_mutual_information(
                binned[:, i], binned[:, j], bin_counts[i], bin_counts[j]
            )
            matrix[i, j] = mi
            matrix[j, i] = mi
    return matrix


def chow_liu_tree(
    mi_matrix: np.ndarray, root: int = 0
) -> np.ndarray:
    """Maximum-weight spanning tree oriented away from ``root``.

    Returns the parent index of each node (-1 for the root).  Implemented as
    Prim's algorithm -- with at most a few dozen columns per table there is
    no need for anything fancier.
    """
    d = mi_matrix.shape[0]
    if mi_matrix.shape != (d, d):
        raise TrainingError("MI matrix must be square")
    if not 0 <= root < d:
        raise TrainingError(f"root index {root} out of range for {d} columns")
    parent = np.full(d, -1, dtype=np.int64)
    in_tree = np.zeros(d, dtype=bool)
    in_tree[root] = True
    best_weight = mi_matrix[root].copy()
    best_parent = np.full(d, root, dtype=np.int64)
    best_weight[root] = -np.inf
    for _ in range(d - 1):
        candidates = np.where(~in_tree, best_weight, -np.inf)
        node = int(np.argmax(candidates))
        if np.isneginf(candidates[node]):
            raise TrainingError("MI matrix produced a disconnected tree")
        in_tree[node] = True
        parent[node] = best_parent[node]
        improved = (~in_tree) & (mi_matrix[node] > best_weight)
        best_weight[improved] = mi_matrix[node][improved]
        best_parent[improved] = node
        best_weight[node] = -np.inf
    return parent


def select_root(mi_matrix: np.ndarray) -> int:
    """Pick the column with the highest total MI as root.

    The paper's Figure 4 roots the advertising model at ``Target Platform``,
    the column most other columns depend on; total MI is the standard proxy.
    """
    return int(np.argmax(mi_matrix.sum(axis=0)))
