"""UES-style pessimistic upper bounds from zone-map / frequency statistics.

The learned stack minimizes *expected* error; for risk-averse routing
(tenants where one catastrophic under-estimate -- a broadcast join of a
billion-row intermediate -- costs more than many mild over-estimates) the
router needs an estimator whose answers are **guaranteed never to
underestimate**.  This is the UES idea (Hertzschuch et al., CIDR 2021):
compose per-join-key *maximum value frequencies* into a join-cardinality
upper bound, taking the minimum over candidate join trees.

Soundness argument, piece by piece:

* **single table** -- rows surviving zone-map pruning are a superset of
  the matching rows (``ZoneMap.refutes`` only refutes provably-empty
  partitions), so the sum of surviving partition sizes bounds the filtered
  cardinality.  An ``EQ`` predicate on a column matches at most the
  column's max value frequency ``MF`` rows; an ``IN`` over ``k`` values at
  most ``k * MF``.  Range predicates and OR-groups only shrink the result,
  so ignoring them keeps the bound an upper bound;
* **joins** -- root the join tree at any table; each row of the partial
  result extends along an edge to at most ``MF(child key)`` rows of the
  child table (no key value occurs more often).  So ``u(root) * prod(MF)``
  over the tree's child-side keys bounds the join, and the minimum over
  candidate roots is still a bound.  On cyclic graphs the bound walks a
  BFS spanning tree; the ignored residual edges only filter further.

Max frequencies are exact (one ``np.unique`` per column, cached per table
generation so streaming appends never serve a stale -- unsound -- value).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import CountEstimator
from repro.sql.query import CardQuery, PredicateOp
from repro.storage.catalog import Catalog

__all__ = ["UpperBoundEstimator"]


class UpperBoundEstimator(CountEstimator):
    """Guaranteed-never-underestimate COUNT bounds (the UES construction)."""

    name = "upper_bound"

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        #: (table, column, generation-signature) -> exact max value frequency
        self._mf_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def max_frequency(self, table: str, column: str) -> float:
        """Exact maximum frequency of any single value in the column."""
        tbl = self.catalog.table(table)
        generations = tuple(
            tbl.partition_generation(i) for i in range(tbl.num_partitions)
        )
        key = (table, column, generations)
        cached = self._mf_cache.get(key)
        if cached is None:
            values = tbl.column(column).values
            if values.size == 0:
                cached = 0.0
            else:
                cached = float(np.unique(values, return_counts=True)[1].max())
            self._mf_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Single-table bound
    # ------------------------------------------------------------------
    def _partition_refuted(self, tbl, partition, query: CardQuery) -> bool:
        """Zone-map refutation, mirroring the engine's pruning semantics
        (any refuted AND predicate, or a fully-refuted table-local
        OR-group, proves the partition empty)."""
        if partition.num_rows == 0:
            return True
        for pred in query.predicates:
            if pred.table != tbl.name:
                continue
            if tbl.zone_map(partition.index, pred.column).refutes(pred):
                return True
        for group in query.or_groups:
            members = [p for p in group if p.table == tbl.name]
            if not members:
                continue
            if all(
                tbl.zone_map(partition.index, p.column).refutes(p)
                for p in members
            ):
                return True
        return False

    def table_bound(self, query: CardQuery, table: str) -> float:
        """Upper bound on the filtered cardinality of one table."""
        tbl = self.catalog.table(table)
        bound = 0.0
        for partition in tbl.partitions():
            if not self._partition_refuted(tbl, partition, query):
                bound += partition.num_rows
        # Equality-shaped predicates cap the bound at the column's max
        # value frequency; everything else (ranges, NE, OR-groups) can
        # only shrink the true result further, so leaving it uncapped
        # keeps the bound sound.
        for pred in query.predicates_on(table):
            if pred.op is PredicateOp.EQ:
                bound = min(bound, self.max_frequency(table, pred.column))
            elif pred.op is PredicateOp.IN:
                members = len(pred.value)  # type: ignore[arg-type]
                bound = min(
                    bound, members * self.max_frequency(table, pred.column)
                )
        return bound

    # ------------------------------------------------------------------
    # CountEstimator interface
    # ------------------------------------------------------------------
    def selectivity(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError("upper-bound selectivity is single-table")
        table = query.tables[0]
        rows = len(self.catalog.table(table))
        if rows == 0:
            return 0.0
        return min(1.0, self.table_bound(query, table) / rows)

    def estimate_count(self, query: CardQuery) -> float:
        if query.is_single_table():
            return self.table_bound(query, query.tables[0])
        # Adjacency of the join graph: table -> [(other table, child key)].
        adjacency: dict[str, list[tuple[str, str]]] = {
            t: [] for t in query.tables
        }
        for join in query.joins:
            norm = join.normalized()
            adjacency[norm.left_table].append(
                (norm.right_table, norm.right_column)
            )
            adjacency[norm.right_table].append(
                (norm.left_table, norm.left_column)
            )
        best = float("inf")
        for root in query.tables:
            total = self.table_bound(query, root)
            visited = {root}
            frontier = [root]
            while frontier and total < best:
                nxt: list[str] = []
                for parent in frontier:
                    for child, child_key in adjacency[parent]:
                        if child in visited:
                            continue
                        visited.add(child)
                        nxt.append(child)
                        # Each partial-result row extends to at most
                        # MF(child key) rows -- the UES expansion step.
                        total *= self.max_frequency(child, child_key)
                frontier = nxt
            # Tables the BFS never reached (disconnected join graph, or an
            # early exit once total >= best) contribute at worst a full
            # cross-product factor; multiplying keeps the bound sound.
            for other in query.tables:
                if other not in visited:
                    total *= self.table_bound(query, other)
            best = min(best, total)
        return best

    def estimation_overhead(self, query: CardQuery) -> float:
        # Zone-map probes plus cached frequency lookups: as cheap as the
        # sketch path, without per-predicate histogram walks.
        return 0.01 * (len(query.tables) + len(query.joins))
