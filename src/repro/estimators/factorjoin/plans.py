"""Shared-belief inference plans: one BN pass per (table, predicates).

The naive FactorJoin path re-runs a full two-pass ``beliefs()`` variable
elimination for every ``_filtered_distribution`` call, again for
``_local_selectivity``, and twice more per OR-group call site -- for the
same table and the same predicate set within one query.  A single
``beliefs()`` pass already yields *every* node's joint vector at once, so
all of those consumers can be served from one pass per (table,
AND-predicates) scope:

* join-key filtered distributions, for every key the query touches;
* the local AND selectivity (the root belief total comes free);
* OR-group inclusion-exclusion terms, each inferred at most once per plan
  instead of once per call site.

:class:`TableInferencePlan` owns one such scope.  Its results live in a
:class:`PlanArtifacts` container that can be shared across queries (via the
serving tier's generation-invalidated plan cache) and across threads -- the
container is lock-guarded and filled at most once.

Bit-identity: the beliefs pass and the upward-only selectivity pass share
one sweep implementation (:meth:`BNInferenceContext._sweep_up`), so the
plan-served probability and every plan-served distribution are *bitwise*
equal to what the naive per-call-site path produces.  The OR-group
expansion reuses the naive recursion verbatim, only swapping the per-term
evaluator for a memoizing one.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, Protocol

import numpy as np

from repro.estimators.bn.estimator import (
    _selectivity_with_or_groups,
    or_expansion_terms,
    table_or_groups,
)
from repro.estimators.bn.model import TreeBayesNet
from repro.sql.query import CardQuery, JoinCondition, TablePredicate


class PassStats:
    """BN inference passes requested (naive cost) vs actually executed."""

    __slots__ = ("requested", "executed")

    def __init__(self, requested: int = 0, executed: int = 0):
        self.requested = requested
        self.executed = executed

    @property
    def saved(self) -> int:
        return max(0, self.requested - self.executed)

    def snapshot(self) -> "PassStats":
        return PassStats(self.requested, self.executed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PassStats(requested={self.requested}, executed={self.executed})"
        )


class PlanArtifacts:
    """Fill-once results of one (table, base-predicates, OR-groups) scope.

    Instances may be shared by many plans (cross-query cache hits) and many
    threads; every field except ``lock`` is written under ``lock`` and only
    transitions empty -> filled, so readers can check-then-lock cheaply.
    """

    __slots__ = (
        "lock",
        "beliefs",
        "probability",
        "terms",
        "or_selectivity",
        "or_term_count",
    )

    def __init__(self):
        self.lock = threading.Lock()
        #: per-column joint vectors from the one beliefs pass (None = not run)
        self.beliefs: list[np.ndarray] | None = None
        #: P(base predicates) -- the root belief total of that same pass
        self.probability: float = 0.0
        #: memoized OR-expansion term selectivities keyed by predicate tuple
        self.terms: dict[tuple[TablePredicate, ...], float] = {}
        #: inclusion-exclusion result over the OR-groups (None = not run)
        self.or_selectivity: float | None = None
        #: conjunctive terms the expansion evaluated (for pass accounting)
        self.or_term_count: int = 0


def plan_key(
    table: str,
    base: list[TablePredicate],
    or_groups: list[list[TablePredicate]],
) -> Hashable:
    """Exact-identity key of one plan scope (order-sensitive, hashable)."""
    return (
        table,
        tuple(base),
        tuple(tuple(group) for group in or_groups),
    )


class ArtifactSource(Protocol):
    """Anything that can hand out shared artifacts for a plan scope."""

    def artifacts_for(
        self,
        table: str,
        base: list[TablePredicate],
        or_groups: list[list[TablePredicate]],
    ) -> PlanArtifacts: ...


class PlanArtifactSource:
    """Process-local artifact store with no invalidation.

    Used to share plan scopes across the queries of one micro-batch; the
    serving tier's :class:`~repro.serving.plan_cache.PlanDistributionCache`
    is the cross-query, generation-invalidated variant of the same protocol.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._artifacts: dict[Hashable, PlanArtifacts] = {}

    def artifacts_for(
        self,
        table: str,
        base: list[TablePredicate],
        or_groups: list[list[TablePredicate]],
    ) -> PlanArtifacts:
        key = plan_key(table, base, or_groups)
        with self._lock:
            artifacts = self._artifacts.get(key)
            if artifacts is None:
                artifacts = self._artifacts[key] = PlanArtifacts()
            return artifacts


class TableInferencePlan:
    """One table's shared-belief scope within a query (or a batch).

    Every consumer method bumps ``stats.requested`` by what the naive path
    would have spent there; ``stats.executed`` counts the passes that
    actually ran, so ``stats.saved`` is the amortization win.
    """

    def __init__(
        self,
        model: TreeBayesNet,
        base: list[TablePredicate],
        or_groups: list[list[TablePredicate]],
        stats: PassStats,
        artifacts: PlanArtifacts | None = None,
    ):
        self.model = model
        self.base = list(base)
        self.or_groups = [list(group) for group in or_groups]
        self.stats = stats
        self.artifacts = artifacts if artifacts is not None else PlanArtifacts()

    # -- the one pass -------------------------------------------------
    def _ensure_beliefs(self) -> PlanArtifacts:
        artifacts = self.artifacts
        if artifacts.beliefs is None:
            with artifacts.lock:
                if artifacts.beliefs is None:
                    beliefs, probability = self.model.beliefs_for(self.base)
                    self.stats.executed += 1
                    artifacts.probability = probability
                    artifacts.beliefs = beliefs
        return artifacts

    # -- consumers ----------------------------------------------------
    def distribution(self, column: str) -> np.ndarray:
        """``P(column in bin, base predicates)``; naive cost: one pass."""
        self.stats.requested += 1
        artifacts = self._ensure_beliefs()
        assert artifacts.beliefs is not None
        return artifacts.beliefs[self.model.column_index(column)]

    def and_selectivity(self) -> float:
        """``P(base predicates)`` -- free once the beliefs pass ran."""
        if not self.base:
            # model.selectivity([]) short-circuits to 1.0 without a pass.
            return 1.0
        self.stats.requested += 1
        return self._ensure_beliefs().probability

    def term_selectivity(
        self, predicates: tuple[TablePredicate, ...]
    ) -> float:
        """One memoized conjunctive term of the OR expansion."""
        self.stats.requested += 1
        artifacts = self.artifacts
        value = artifacts.terms.get(predicates)
        if value is None:
            value = self.model.selectivity(list(predicates))
            with artifacts.lock:
                if predicates not in artifacts.terms:
                    self.stats.executed += 1
                    artifacts.terms[predicates] = value
                value = artifacts.terms[predicates]
        return value

    def table_selectivity(self) -> float:
        """Selectivity including OR-groups (memoized inclusion-exclusion)."""
        if not self.or_groups:
            return self.and_selectivity()
        artifacts = self.artifacts
        if artifacts.or_selectivity is not None:
            # The naive path would have re-run the whole expansion here.
            self.stats.requested += artifacts.or_term_count
            return artifacts.or_selectivity
        calls = 0

        def term(predicates: list[TablePredicate]) -> float:
            nonlocal calls
            calls += 1
            return self.term_selectivity(tuple(predicates))

        value = _selectivity_with_or_groups(
            self.model, self.base, self.or_groups, selectivity_fn=term
        )
        with artifacts.lock:
            if artifacts.or_selectivity is None:
                artifacts.or_selectivity = value
                artifacts.or_term_count = calls
        return value

    def or_factor(self) -> float:
        """OR-group correction: with-groups over AND-only selectivity."""
        if not self.or_groups:
            return 1.0
        with_groups = self.table_selectivity()
        without_groups = self.and_selectivity()
        if without_groups <= 0.0:
            return 0.0
        return with_groups / without_groups

    def naive_pass_cost(self) -> int:
        """Passes the naive path pays to evaluate this scope's selectivity."""
        if self.or_groups:
            return or_expansion_terms(self.or_groups)
        return 1 if self.base else 0


class QueryInferencePlans:
    """All shared-belief plans serving one join query (or one batch).

    Also memoizes subtree weights keyed on (table, normalized parent join),
    so re-walks of the factor graph reuse whole messages, not just
    distributions.  ``stats`` may be shared across the queries of a batch so
    batched priming passes are accounted once.
    """

    def __init__(
        self,
        model_for: Callable[[str], TreeBayesNet],
        query: CardQuery,
        source: ArtifactSource | None = None,
        stats: PassStats | None = None,
    ):
        self.query = query
        self._model_for = model_for
        self._source = source
        self.stats = stats if stats is not None else PassStats()
        self._plans: dict[str, TableInferencePlan] = {}
        self._subtree: dict[
            tuple[str, tuple[tuple[str, str], tuple[str, str]]], np.ndarray
        ] = {}

    def plan_for(self, table: str) -> TableInferencePlan:
        plan = self._plans.get(table)
        if plan is None:
            model = self._model_for(table)
            base = [p for p in self.query.predicates if p.table == table]
            or_groups = table_or_groups(self.query, table)
            artifacts = (
                self._source.artifacts_for(table, base, or_groups)
                if self._source is not None
                else None
            )
            plan = TableInferencePlan(
                model, base, or_groups, self.stats, artifacts
            )
            self._plans[table] = plan
        return plan

    def subtree_weights(
        self,
        table: str,
        parent_join: JoinCondition,
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        key = (table, parent_join.normalized())
        weights = self._subtree.get(key)
        if weights is None:
            weights = compute()
            self._subtree[key] = weights
        return weights
