"""FactorJoin: join-size estimation on top of single-table BNs.

Following Wu et al. (SIGMOD 2023) as adapted by ByteCard: the offline phase
buckets the joint domain of each join-key equivalence class (equi-height,
200 buckets by default, built from the optimizer's histograms) and trains
per-table Bayesian networks whose join-key columns are discretized on those
bucket boundaries.  The online phase builds a factor graph from the query's
join conditions and propagates per-bucket distributions along it to bound
the join size -- with "almost no additional training overhead" beyond the
single-table models, which is the property Table 3 demonstrates.
"""

from repro.estimators.factorjoin.buckets import JoinBucketizer, JoinKeyClass
from repro.estimators.factorjoin.estimator import (
    SELECTIVITY_FLOOR,
    FactorJoinEstimator,
)
from repro.estimators.factorjoin.dimension_reduction import (
    join_key_tree,
    pairwise_bucket_joint,
)
from repro.estimators.factorjoin.plans import (
    PassStats,
    PlanArtifactSource,
    PlanArtifacts,
    QueryInferencePlans,
    TableInferencePlan,
)

__all__ = [
    "JoinBucketizer",
    "JoinKeyClass",
    "FactorJoinEstimator",
    "SELECTIVITY_FLOOR",
    "PassStats",
    "PlanArtifacts",
    "PlanArtifactSource",
    "QueryInferencePlans",
    "TableInferencePlan",
    "join_key_tree",
    "pairwise_bucket_joint",
]
