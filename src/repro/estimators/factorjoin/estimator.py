"""FactorJoin inference: join-size estimation over the factor graph.

At query time a factor graph is derived from the query's join tree.  Each
table node carries its BN-estimated, *filtered* per-bucket distribution over
its join keys; messages propagate bottom-up: a child subtree's per-bucket
tuple weights divided by the bucket's joint-domain NDV give the expected
fan-out multiplier per parent row whose key falls in that bucket (uniform
spread within a bucket -- exactly the granularity the bucketization trades
accuracy for).

Two inference modes are provided:

* ``expected`` (default): expected-value propagation, the estimate the
  Q-Error experiments use;
* ``bound``: replaces per-bucket mean multiplicities with per-bucket maximum
  frequencies, giving the upper-bound flavour of the original paper.

Join queries run through **shared-belief inference plans**
(:mod:`repro.estimators.factorjoin.plans`): one two-pass ``beliefs()``
variable elimination per (table, predicate set) serves every join-key
distribution, the local selectivity, and the OR-group correction of that
scope -- bit-identical to the naive one-pass-per-call-site path, which is
kept available as :meth:`estimate_count_unshared` for verification and
benchmarking.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import CountEstimator
from repro.estimators.bn.estimator import (
    BNCountEstimator,
    _selectivity_with_or_groups,
    or_expansion_term_predicates,
    or_expansion_terms,
    table_or_groups,
)
from repro.estimators.bn.kernels import EvidenceCache, KernelPlan, resolve_backend
from repro.estimators.bn.model import TreeBayesNet, fit_tree_bn
from repro.estimators.factorjoin.buckets import JoinBucketizer
from repro.estimators.factorjoin.plans import (
    ArtifactSource,
    PassStats,
    PlanArtifactSource,
    QueryInferencePlans,
    TableInferencePlan,
)
from repro.estimators.jointree import JoinTree, build_join_tree
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import CardQuery, JoinCondition, TablePredicate
from repro.storage.catalog import Catalog

#: Floor applied to local selectivities before they are used as divisors
#: when conditioning a join-key distribution.  One constant for both
#: ``_subtree_weights`` and ``_root_estimate`` (they used to disagree:
#: 1e-12 vs 0.0, the latter relying on IEEE inf propagation for empty
#: filters).  BN selectivities are already clipped to [0, 1], so flooring
#: only at the division sites leaves all other arithmetic untouched.
SELECTIVITY_FLOOR = 1e-12

#: OR expansions beyond this many conjunctive terms are left to the
#: memoized on-demand path rather than folded into a kernel invocation --
#: real queries carry 1-2 small groups, so this only guards pathological
#: batches from blowing up the evidence tensor width.
MAX_FOLDED_TERMS = 32


class FactorJoinEstimator(CountEstimator):
    """ByteCard's COUNT estimator: per-table BNs + join buckets.

    Handles single-table queries directly through the BNs and join queries
    through factor-graph propagation, so it is a drop-in COUNT estimator for
    the whole workload.
    """

    name = "bytecard"

    #: join COUNT queries sharing a table set may be micro-batched
    supports_join_batching = True

    def __init__(
        self,
        catalog: Catalog,
        models: dict[str, TreeBayesNet],
        bucketizer: JoinBucketizer,
        mode: str = "expected",
        metrics: MetricsRegistry | None = None,
        plan_cache: ArtifactSource | None = None,
        evidence_cache: EvidenceCache | None = None,
        kernel: str | None = None,
    ):
        if mode not in ("expected", "bound"):
            raise ValueError(f"unknown inference mode {mode!r}")
        self.catalog = catalog
        self.models = models
        self.bucketizer = bucketizer
        self.mode = mode
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        #: cross-query (table, predicate-fingerprint) artifact store; the
        #: serving tier installs its generation-invalidated cache here
        self.plan_cache = plan_cache
        #: fused-kernel backend: "numpy" / "numba" / "off"; ``None`` reads
        #: the REPRO_BN_KERNEL environment variable (NumPy by default)
        self.kernel_backend = resolve_backend(kernel)
        #: per-table compiled kernel plans, built lazily on first use; the
        #: models dict is immutable for the estimator's lifetime, so plans
        #: never go stale (model refreshes rebuild the whole estimator)
        self._kernel_plans: dict[str, KernelPlan] = {}
        #: per-table prior beliefs (all-ones evidence) -- unfiltered scopes
        #: of join-fan tables recur in every batch and their beliefs never
        #: change, so they are inferred once and served from here
        self._prior_beliefs: dict[str, tuple[list[np.ndarray], float]] = {}
        self._kernel_lock = threading.Lock()
        #: compiled predicate->bin-mask vectors; ByteCard hands in its
        #: loader-invalidated instance so the cache survives estimator
        #: rebuilds across model refreshes
        self.evidence_cache = (
            evidence_cache
            if evidence_cache is not None
            else EvidenceCache(registry=self.metrics)
        )
        self._bn = BNCountEstimator(
            models, kernel=self.kernel_backend, evidence_cache=self.evidence_cache
        )
        # Both the single-table batch path and the join priming path walk
        # the same per-table trees; share one compiled-plan dict so each
        # table's kernel is built (and counted) once.
        self._bn._kernel_plans = self._kernel_plans
        self._local = threading.local()
        if self.metrics.enabled:
            # Pre-register so dashboards (and pass-ratio deltas) see zeros
            # before the first join estimate rather than missing series.
            self.metrics.counter("bn_passes_total")
            self.metrics.counter("bn_passes_saved_total")
            self.metrics.counter("bn_kernel_batches_total")
            self.metrics.counter("bn_kernel_queries_total")
            self.metrics.histogram("bn_kernel_build_seconds")

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        catalog: Catalog,
        filter_columns: dict[str, list[str]],
        num_buckets: int = 200,
        max_bins: int = 64,
        sample_rows: int | None = None,
        mode: str = "expected",
        metrics: MetricsRegistry | None = None,
    ) -> "FactorJoinEstimator":
        """Offline phase: build join buckets, then per-table BNs.

        Join-key columns are added to each table's modeled columns and
        discretized on the class's bucket edges, so the BN marginal over a
        join key *is* the filtered bucket distribution FactorJoin needs.
        """
        bucketizer = JoinBucketizer(catalog, num_buckets=num_buckets)
        models: dict[str, TreeBayesNet] = {}
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            join_keys = bucketizer.join_key_columns(table_name)
            columns = list(
                dict.fromkeys(filter_columns.get(table_name, []) + join_keys)
            )
            if not columns:
                continue
            bucket_edges = {
                key: bucketizer.edges_for(table_name, key) for key in join_keys
            }
            models[table_name] = fit_tree_bn(
                table,
                columns,
                max_bins=max_bins,
                bucket_edges=bucket_edges,
                sample_rows=sample_rows,
            )
        return cls(catalog, models, bucketizer, mode=mode, metrics=metrics)

    # ------------------------------------------------------------------
    def model_for(self, table: str) -> TreeBayesNet:
        try:
            return self.models[table]
        except KeyError:
            raise EstimationError(f"no model for table {table!r}") from None

    def install_plan_cache(self, cache: ArtifactSource | None) -> None:
        """Install (or clear) the cross-query plan artifact cache."""
        self.plan_cache = cache

    def install_evidence_cache(self, cache: EvidenceCache | None) -> None:
        """Install (or clear) the compiled predicate-evidence cache."""
        self.evidence_cache = cache
        self._bn.evidence_cache = cache

    def kernel_plan_for(self, table: str) -> KernelPlan | None:
        """The table's compiled kernel plan (``None`` when the path is off).

        Compiled once per table per estimator; build time lands in the
        ``bn_kernel_build_seconds`` histogram.
        """
        if self.kernel_backend == "off":
            return None
        plan = self._kernel_plans.get(table)
        if plan is None:
            with self._kernel_lock:
                plan = self._kernel_plans.get(table)
                if plan is None:
                    start = time.perf_counter()
                    plan = KernelPlan(
                        self.model_for(table).init_context(),
                        backend=self.kernel_backend,
                    )
                    self.metrics.histogram("bn_kernel_build_seconds").observe(
                        time.perf_counter() - start
                    )
                    self._kernel_plans[table] = plan
        return plan

    @property
    def last_pass_stats(self) -> PassStats | None:
        """Pass accounting of this thread's most recent join estimate."""
        return getattr(self._local, "last_stats", None)

    def _record_pass_stats(self, stats: PassStats | None) -> None:
        self._local.last_stats = stats
        if stats is None:
            return
        if stats.executed:
            self.metrics.counter("bn_passes_total").inc(stats.executed)
        if stats.saved:
            self.metrics.counter("bn_passes_saved_total").inc(stats.saved)

    def selectivity(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError("selectivity() is defined for single tables")
        self._local.last_stats = None
        return self._bn.table_selectivity(query, query.tables[0])

    def estimate_count(self, query: CardQuery) -> float:
        if query.is_single_table():
            self._local.last_stats = None
            return self._bn.estimate_count(query)
        plans = QueryInferencePlans(
            self.model_for, query, source=self.plan_cache
        )
        estimate = self._estimate_join(query, plans)
        self._record_pass_stats(plans.stats)
        return estimate

    def estimate_count_unshared(self, query: CardQuery) -> float:
        """The naive one-pass-per-call-site path, kept verbatim.

        Exists so tests and ``bench_join_inference_latency`` can verify the
        shared-plan path is bit-identical and measure what it saves.
        """
        if query.is_single_table():
            return self._bn.estimate_count(query)
        tree = build_join_tree(query)
        root = query.tables[0]
        total = self._root_estimate(query, tree, root, None)
        return float(max(total, 0.0))

    def naive_pass_count(self, query: CardQuery) -> int:
        """BN passes :meth:`estimate_count_unshared` runs for ``query``."""
        if query.is_single_table():
            table = query.tables[0]
            groups = table_or_groups(query, table)
            if groups:
                return or_expansion_terms(groups)
            return 1 if any(p.table == table for p in query.predicates) else 0
        plans = QueryInferencePlans(self.model_for, query)
        self._root_estimate(query, build_join_tree(query), query.tables[0], plans)
        return plans.stats.requested

    def estimate_count_batch(
        self, table: str, queries: list[CardQuery]
    ) -> list[float]:
        """Batched COUNT estimation for one micro-batch key.

        Single-table batches go straight to the table's BN; join batches
        (the micro-batcher keys them on the sorted table set) run through
        :meth:`estimate_join_batch` so their plans share belief passes.
        """
        if any(not query.is_single_table() for query in queries):
            return self.estimate_join_batch(queries)
        results = self._bn.estimate_count_batch(table, queries)
        if self.kernel_backend != "off":
            # The plain (no OR-group) slice of the batch ran as one fused
            # kernel sweep inside the BN estimator; account for it here,
            # where the metrics registry lives.
            plain = sum(1 for query in queries if not query.or_groups)
            if plain:
                self.metrics.counter("bn_kernel_batches_total").inc()
                self.metrics.counter("bn_kernel_queries_total").inc(plain)
        return results

    def estimate_join_batch(self, queries: list[CardQuery]) -> list[float]:
        """Estimate a batch of join COUNT queries with shared plans.

        All queries share one artifact source, so identical (table,
        predicates) scopes are inferred once for the whole batch; every
        table's pending scopes (plus their OR-expansion terms) are primed
        by a single fused :class:`KernelPlan` sweep -- or, with the kernel
        off, by one ``beliefs_batch`` pass per table covering >= 2 scopes.
        Results align with input order.
        """
        if not queries:
            return []
        stats = PassStats()
        source: ArtifactSource = (
            self.plan_cache if self.plan_cache is not None else PlanArtifactSource()
        )
        plans_list: list[QueryInferencePlans | None] = [
            None
            if query.is_single_table()
            else QueryInferencePlans(
                self.model_for, query, source=source, stats=stats
            )
            for query in queries
        ]
        self._prime_batched_beliefs(plans_list, stats)
        results: list[float] = []
        for query, plans in zip(queries, plans_list):
            if plans is None:
                results.append(self._bn.estimate_count(query))
            else:
                results.append(self._estimate_join(query, plans))
        self._record_pass_stats(stats)
        return results

    def _prime_batched_beliefs(
        self,
        plans_list: list[QueryInferencePlans | None],
        stats: PassStats,
    ) -> None:
        """One fused kernel invocation per table's pending scopes.

        With the kernel path on (the default), *every* table with at least
        one pending scope is primed by a single :class:`KernelPlan` sweep
        that also folds in lone scopes and the conjunctive terms of each
        scope's OR expansion -- one pass per table per micro-batch.  With
        ``REPRO_BN_KERNEL=off`` the PR 5 behavior is preserved verbatim:
        one ``beliefs_batch`` per table covering >= 2 pending scopes,
        lone scopes left to their scalar on-demand pass.
        """
        pending: dict[str, dict[int, TableInferencePlan]] = {}
        for plans in plans_list:
            if plans is None:
                continue
            for table in plans.query.tables:
                plan = plans.plan_for(table)
                if plan.artifacts.beliefs is None:
                    pending.setdefault(table, {})[id(plan.artifacts)] = plan
        for table, scopes in pending.items():
            table_plans = list(scopes.values())
            kernel = self.kernel_plan_for(table)
            if kernel is not None:
                self._prime_with_kernel(table, kernel, table_plans, stats)
                continue
            if len(table_plans) < 2:
                continue  # a lone scope gains nothing from a batched pass
            bases = [plan.base for plan in table_plans]
            node_beliefs, probabilities = self.model_for(table).beliefs_batch(
                bases
            )
            stats.executed += 1
            for column, plan in enumerate(table_plans):
                artifacts = plan.artifacts
                with artifacts.lock:
                    if artifacts.beliefs is None:
                        artifacts.probability = float(probabilities[column])
                        artifacts.beliefs = [
                            np.ascontiguousarray(matrix[:, column])
                            for matrix in node_beliefs
                        ]

    def _table_prior(
        self, table: str, kernel: KernelPlan, stats: PassStats
    ) -> tuple[list[np.ndarray], float]:
        """The table's prior beliefs (all-ones evidence), inferred once."""
        prior = self._prior_beliefs.get(table)
        if prior is None:
            with self._kernel_lock:
                prior = self._prior_beliefs.get(table)
                if prior is None:
                    run = kernel.run_packs(kernel.ones_packs(1))
                    stats.executed += 1
                    if self.metrics.enabled:
                        self.metrics.counter("bn_kernel_batches_total").inc()
                        self.metrics.counter("bn_kernel_queries_total").inc()
                    prior = (run.scope_beliefs(0), run.probability(0))
                    self._prior_beliefs[table] = prior
        return prior

    def _prime_with_kernel(
        self,
        table: str,
        kernel: KernelPlan,
        table_plans: list[TableInferencePlan],
        stats: PassStats,
    ) -> None:
        """Fill every pending scope of ``table`` from one kernel sweep.

        Each scope contributes one evidence column; scopes with OR-groups
        contribute one extra column per conjunctive expansion term, whose
        probabilities pre-seed the plan's term memo -- so the downstream
        inclusion-exclusion walk runs without a single further BN pass.
        The whole invocation counts as one executed pass in ``stats``
        (that is what actually ran), which is exactly how
        ``PassStats.saved`` credits the folded lone scopes and terms.
        """
        model = self.model_for(table)
        specs: list[tuple[TableInferencePlan, tuple[TablePredicate, ...] | None]] = []
        for plan in table_plans:
            if not plan.base:
                # Unfiltered scope: its beliefs are the table's prior,
                # identical in every batch -- serve the cached pass.
                beliefs, probability = self._table_prior(table, kernel, stats)
                artifacts = plan.artifacts
                with artifacts.lock:
                    if artifacts.beliefs is None:
                        artifacts.probability = probability
                        artifacts.beliefs = list(beliefs)
            else:
                specs.append((plan, None))  # the scope's own beliefs column
            if plan.or_groups:
                terms = or_expansion_term_predicates(plan.base, plan.or_groups)
                if len(terms) <= MAX_FOLDED_TERMS:
                    seeded = plan.artifacts.terms
                    specs.extend(
                        (plan, term) for term in terms if term not in seeded
                    )
        if not specs:
            return
        cache = self.evidence_cache
        discretizers = model.discretizers
        packs = kernel.ones_packs(len(specs))
        for column, (plan, term) in enumerate(specs):
            predicates = plan.base if term is None else term
            for pred in predicates:
                if pred.table != table:
                    raise EstimationError(
                        f"predicate on {pred.table!r} in scope of {table!r}"
                    )
                discretizer = discretizers[pred.column]
                vector = (
                    cache.vector(discretizer, pred)
                    if cache is not None
                    else discretizer.evidence(pred)
                )
                kernel.apply_evidence(
                    packs, model.column_index(pred.column), column, vector
                )
        run = kernel.run_packs(packs)
        stats.executed += 1
        if self.metrics.enabled:
            self.metrics.counter("bn_kernel_batches_total").inc()
            self.metrics.counter("bn_kernel_queries_total").inc(len(specs))
        for column, (plan, term) in enumerate(specs):
            artifacts = plan.artifacts
            if term is None:
                with artifacts.lock:
                    if artifacts.beliefs is None:
                        artifacts.probability = run.probability(column)
                        artifacts.beliefs = run.scope_beliefs(column)
            else:
                with artifacts.lock:
                    artifacts.terms.setdefault(term, run.probability(column))

    def _estimate_join(
        self, query: CardQuery, plans: QueryInferencePlans
    ) -> float:
        start = time.perf_counter()
        tree = build_join_tree(query)
        root = query.tables[0]
        total = self._root_estimate(query, tree, root, plans)
        self.metrics.histogram("bn_join_inference_seconds").observe(
            time.perf_counter() - start
        )
        return float(max(total, 0.0))

    def estimation_overhead(self, query: CardQuery) -> float:
        # Shared-plan cost model: one beliefs pass per (table, predicates)
        # scope, plus the extra inclusion-exclusion terms OR-groups add,
        # plus per-join bucket-vector algebra.  Call-site counts no longer
        # matter -- every consumer of a scope reads the same pass.
        passes = len(query.tables)
        for table in query.tables:
            passes += or_expansion_terms(table_or_groups(query, table))
        return 0.05 * passes + 0.01 * len(query.joins)

    @property
    def nbytes(self) -> int:
        """Join-bucket footprint only (BN sizes are reported separately)."""
        return self.bucketizer.nbytes

    # ------------------------------------------------------------------
    # Factor-graph propagation
    # ------------------------------------------------------------------
    def _filtered_distribution(
        self,
        query: CardQuery,
        table: str,
        column: str,
        plans: QueryInferencePlans | None,
    ) -> np.ndarray:
        """``P(column in bucket AND local predicates)`` via the table's BN."""
        if plans is not None:
            plan = plans.plan_for(table)
            distribution = plan.distribution(column)
            factor = plan.or_factor()
            if factor != 1.0:
                distribution = distribution * factor
            return np.maximum(distribution, 0.0)
        model = self.model_for(table)
        predicates = [p for p in query.predicates if p.table == table]
        distribution = model.distribution(column, predicates)
        distribution = distribution * self._or_group_factor(query, table, predicates)
        return np.maximum(distribution, 0.0)

    def _local_selectivity(
        self, query: CardQuery, table: str, plans: QueryInferencePlans | None
    ) -> float:
        if plans is not None:
            return plans.plan_for(table).table_selectivity()
        return self._bn.table_selectivity(query, table)

    def _or_group_factor(
        self, query: CardQuery, table: str, base: list[TablePredicate]
    ) -> float:
        """Correction factor for OR-groups on ``table``.

        The bucket distribution is computed under the AND predicates only;
        OR-groups scale it by their conditional selectivity (assumed
        independent of the join key's bucket).
        """
        groups = table_or_groups(query, table)
        if not groups:
            return 1.0
        model = self.model_for(table)
        with_groups = _selectivity_with_or_groups(model, base, groups)
        without_groups = model.selectivity(base)
        if without_groups <= 0.0:
            return 0.0
        return with_groups / without_groups

    def _subtree_weights(
        self,
        query: CardQuery,
        tree: JoinTree,
        table: str,
        parent_join: JoinCondition,
        plans: QueryInferencePlans | None,
    ) -> np.ndarray:
        """Per-bucket tuple weights of ``table``'s subtree, keyed on the
        column joining ``table`` to its parent."""
        if plans is not None:
            return plans.subtree_weights(
                table,
                parent_join,
                lambda: self._subtree_weights_impl(
                    query, tree, table, parent_join, plans
                ),
            )
        return self._subtree_weights_impl(query, tree, table, parent_join, None)

    def _subtree_weights_impl(
        self,
        query: CardQuery,
        tree: JoinTree,
        table: str,
        parent_join: JoinCondition,
        plans: QueryInferencePlans | None,
    ) -> np.ndarray:
        parent_column = parent_join.side_for(table)
        rows = len(self.catalog.table(table))
        weights = rows * self._filtered_distribution(
            query, table, parent_column, plans
        )
        selectivity = max(
            self._local_selectivity(query, table, plans), SELECTIVITY_FLOOR
        )

        for child, join in tree[table]:
            own_column = join.side_for(table)
            child_weights = self._subtree_weights(query, tree, child, join, plans)
            multiplier = self._fanout_multiplier(child, join, child_weights)
            if own_column == parent_column:
                weights = weights * multiplier
            else:
                # Different join key: marginalize the multiplier over the
                # key's filtered distribution (conditional independence of
                # join keys given the filters -- FactorJoin's reduced form).
                key_dist = self._filtered_distribution(
                    query, table, own_column, plans
                )
                conditional = key_dist / selectivity
                scalar = float(np.sum(conditional * multiplier))
                weights = weights * scalar
        return weights

    def _fanout_multiplier(
        self, child: str, join: JoinCondition, child_weights: np.ndarray
    ) -> np.ndarray:
        """Expected (or bound) matches per parent row, per bucket."""
        child_column = join.side_for(child)
        cls = self.bucketizer.class_for(child, child_column)
        if self.mode == "expected":
            # Child tuples spread over the bucket's joint-domain values.
            return child_weights / cls.domain_ndv
        max_freq = cls.member_max_freq[(child, child_column)]
        child_ndv = np.maximum(cls.member_ndv[(child, child_column)], 1.0)
        # Upper bound: every matched value at its maximum multiplicity,
        # scaled by how much of the subtree weight sits on this bucket.
        per_value = child_weights / child_ndv
        return np.minimum(np.maximum(per_value, 0.0), max_freq) * (
            child_ndv / cls.domain_ndv
        ) + np.where(per_value > max_freq, per_value - max_freq, 0.0) * (
            child_ndv / cls.domain_ndv
        )

    def _root_estimate(
        self,
        query: CardQuery,
        tree: JoinTree,
        root: str,
        plans: QueryInferencePlans | None,
    ) -> float:
        """Combine the root's children; bucket-wise over the dominant key."""
        children = tree[root]
        rows = len(self.catalog.table(root))
        selectivity = self._local_selectivity(query, root, plans)
        if not children:
            return rows * selectivity
        # Group children by the root-side join column.
        by_column: dict[str, list[tuple[str, JoinCondition]]] = {}
        for child, join in children:
            by_column.setdefault(join.side_for(root), []).append((child, join))
        # The column with the most children is handled bucket-wise; the rest
        # contribute scalar multipliers via their filtered distributions.
        keyed_column = max(by_column, key=lambda c: len(by_column[c]))
        weights = rows * self._filtered_distribution(
            query, root, keyed_column, plans
        )
        local_selectivity = max(selectivity, SELECTIVITY_FLOOR)
        for child, join in by_column[keyed_column]:
            child_weights = self._subtree_weights(query, tree, child, join, plans)
            weights = weights * self._fanout_multiplier(child, join, child_weights)
        scalar = 1.0
        for column, group in by_column.items():
            if column == keyed_column:
                continue
            key_dist = self._filtered_distribution(query, root, column, plans)
            conditional = key_dist / local_selectivity
            for child, join in group:
                child_weights = self._subtree_weights(
                    query, tree, child, join, plans
                )
                multiplier = self._fanout_multiplier(child, join, child_weights)
                scalar *= float(np.sum(conditional * multiplier))
        return float(weights.sum() * scalar)
