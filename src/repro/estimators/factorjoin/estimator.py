"""FactorJoin inference: join-size estimation over the factor graph.

At query time a factor graph is derived from the query's join tree.  Each
table node carries its BN-estimated, *filtered* per-bucket distribution over
its join keys; messages propagate bottom-up: a child subtree's per-bucket
tuple weights divided by the bucket's joint-domain NDV give the expected
fan-out multiplier per parent row whose key falls in that bucket (uniform
spread within a bucket -- exactly the granularity the bucketization trades
accuracy for).

Two inference modes are provided:

* ``expected`` (default): expected-value propagation, the estimate the
  Q-Error experiments use;
* ``bound``: replaces per-bucket mean multiplicities with per-bucket maximum
  frequencies, giving the upper-bound flavour of the original paper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.estimators.base import CountEstimator
from repro.estimators.bn.estimator import BNCountEstimator, _selectivity_with_or_groups
from repro.estimators.bn.model import TreeBayesNet, fit_tree_bn
from repro.estimators.factorjoin.buckets import JoinBucketizer
from repro.estimators.jointree import JoinTree, build_join_tree
from repro.sql.query import CardQuery, JoinCondition, TablePredicate
from repro.storage.catalog import Catalog


class FactorJoinEstimator(CountEstimator):
    """ByteCard's COUNT estimator: per-table BNs + join buckets.

    Handles single-table queries directly through the BNs and join queries
    through factor-graph propagation, so it is a drop-in COUNT estimator for
    the whole workload.
    """

    name = "bytecard"

    def __init__(
        self,
        catalog: Catalog,
        models: dict[str, TreeBayesNet],
        bucketizer: JoinBucketizer,
        mode: str = "expected",
    ):
        if mode not in ("expected", "bound"):
            raise ValueError(f"unknown inference mode {mode!r}")
        self.catalog = catalog
        self.models = models
        self.bucketizer = bucketizer
        self.mode = mode
        self._bn = BNCountEstimator(models)

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        catalog: Catalog,
        filter_columns: dict[str, list[str]],
        num_buckets: int = 200,
        max_bins: int = 64,
        sample_rows: int | None = None,
        mode: str = "expected",
    ) -> "FactorJoinEstimator":
        """Offline phase: build join buckets, then per-table BNs.

        Join-key columns are added to each table's modeled columns and
        discretized on the class's bucket edges, so the BN marginal over a
        join key *is* the filtered bucket distribution FactorJoin needs.
        """
        bucketizer = JoinBucketizer(catalog, num_buckets=num_buckets)
        models: dict[str, TreeBayesNet] = {}
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            join_keys = bucketizer.join_key_columns(table_name)
            columns = list(
                dict.fromkeys(filter_columns.get(table_name, []) + join_keys)
            )
            if not columns:
                continue
            bucket_edges = {
                key: bucketizer.edges_for(table_name, key) for key in join_keys
            }
            models[table_name] = fit_tree_bn(
                table,
                columns,
                max_bins=max_bins,
                bucket_edges=bucket_edges,
                sample_rows=sample_rows,
            )
        return cls(catalog, models, bucketizer, mode=mode)

    # ------------------------------------------------------------------
    def model_for(self, table: str) -> TreeBayesNet:
        try:
            return self.models[table]
        except KeyError:
            raise EstimationError(f"no model for table {table!r}") from None

    def selectivity(self, query: CardQuery) -> float:
        if not query.is_single_table():
            raise EstimationError("selectivity() is defined for single tables")
        return self._bn.table_selectivity(query, query.tables[0])

    def estimate_count(self, query: CardQuery) -> float:
        if query.is_single_table():
            return self._bn.estimate_count(query)
        tree = build_join_tree(query)
        root = query.tables[0]
        total = self._root_estimate(query, tree, root)
        return float(max(total, 0.0))

    def estimate_count_batch(
        self, table: str, queries: list[CardQuery]
    ) -> list[float]:
        """Batched single-table COUNT estimation against one table's BN."""
        return self._bn.estimate_count_batch(table, queries)

    def estimation_overhead(self, query: CardQuery) -> float:
        # One BN message pass per table plus per-join bucket-vector algebra.
        return 0.05 * len(query.tables) + 0.02 * len(query.joins)

    @property
    def nbytes(self) -> int:
        """Join-bucket footprint only (BN sizes are reported separately)."""
        return self.bucketizer.nbytes

    # ------------------------------------------------------------------
    # Factor-graph propagation
    # ------------------------------------------------------------------
    def _filtered_distribution(
        self, query: CardQuery, table: str, column: str
    ) -> np.ndarray:
        """``P(column in bucket AND local predicates)`` via the table's BN."""
        model = self.model_for(table)
        predicates = [p for p in query.predicates if p.table == table]
        distribution = model.distribution(column, predicates)
        distribution = distribution * self._or_group_factor(query, table, predicates)
        return np.maximum(distribution, 0.0)

    def _local_selectivity(self, query: CardQuery, table: str) -> float:
        return self._bn.table_selectivity(query, table)

    def _or_group_factor(
        self, query: CardQuery, table: str, base: list[TablePredicate]
    ) -> float:
        """Correction factor for OR-groups on ``table``.

        The bucket distribution is computed under the AND predicates only;
        OR-groups scale it by their conditional selectivity (assumed
        independent of the join key's bucket).
        """
        groups = [
            [p for p in group if p.table == table]
            for group in query.or_groups
            if any(p.table == table for p in group)
        ]
        if not groups:
            return 1.0
        model = self.model_for(table)
        with_groups = _selectivity_with_or_groups(model, base, groups)
        without_groups = model.selectivity(base)
        if without_groups <= 0.0:
            return 0.0
        return with_groups / without_groups

    def _subtree_weights(
        self,
        query: CardQuery,
        tree: JoinTree,
        table: str,
        parent_join: JoinCondition,
    ) -> np.ndarray:
        """Per-bucket tuple weights of ``table``'s subtree, keyed on the
        column joining ``table`` to its parent."""
        parent_column = parent_join.side_for(table)
        rows = len(self.catalog.table(table))
        weights = rows * self._filtered_distribution(query, table, parent_column)
        selectivity = max(self._local_selectivity(query, table), 1e-12)

        for child, join in tree[table]:
            own_column = join.side_for(table)
            child_class = self.bucketizer.class_for(table, own_column)
            child_weights = self._subtree_weights(query, tree, child, join)
            multiplier = self._fanout_multiplier(child, join, child_weights)
            if own_column == parent_column:
                weights = weights * multiplier
            else:
                # Different join key: marginalize the multiplier over the
                # key's filtered distribution (conditional independence of
                # join keys given the filters -- FactorJoin's reduced form).
                key_dist = self._filtered_distribution(query, table, own_column)
                conditional = key_dist / selectivity
                scalar = float(np.sum(conditional * multiplier))
                weights = weights * scalar
            del child_class
        return weights

    def _fanout_multiplier(
        self, child: str, join: JoinCondition, child_weights: np.ndarray
    ) -> np.ndarray:
        """Expected (or bound) matches per parent row, per bucket."""
        child_column = join.side_for(child)
        cls = self.bucketizer.class_for(child, child_column)
        if self.mode == "expected":
            # Child tuples spread over the bucket's joint-domain values.
            return child_weights / cls.domain_ndv
        max_freq = cls.member_max_freq[(child, child_column)]
        child_ndv = np.maximum(cls.member_ndv[(child, child_column)], 1.0)
        # Upper bound: every matched value at its maximum multiplicity,
        # scaled by how much of the subtree weight sits on this bucket.
        per_value = child_weights / child_ndv
        return np.minimum(np.maximum(per_value, 0.0), max_freq) * (
            child_ndv / cls.domain_ndv
        ) + np.where(per_value > max_freq, per_value - max_freq, 0.0) * (
            child_ndv / cls.domain_ndv
        )

    def _root_estimate(
        self, query: CardQuery, tree: JoinTree, root: str
    ) -> float:
        """Combine the root's children; bucket-wise over the dominant key."""
        children = tree[root]
        rows = len(self.catalog.table(root))
        selectivity = max(self._local_selectivity(query, root), 0.0)
        if not children:
            return rows * selectivity
        # Group children by the root-side join column.
        by_column: dict[str, list[tuple[str, JoinCondition]]] = {}
        for child, join in children:
            by_column.setdefault(join.side_for(root), []).append((child, join))
        # The column with the most children is handled bucket-wise; the rest
        # contribute scalar multipliers via their filtered distributions.
        keyed_column = max(by_column, key=lambda c: len(by_column[c]))
        weights = rows * self._filtered_distribution(query, root, keyed_column)
        local_selectivity = max(selectivity, 1e-12)
        for child, join in by_column[keyed_column]:
            child_weights = self._subtree_weights(query, tree, child, join)
            weights = weights * self._fanout_multiplier(child, join, child_weights)
        scalar = 1.0
        for column, group in by_column.items():
            if column == keyed_column:
                continue
            key_dist = self._filtered_distribution(query, root, column)
            conditional = key_dist / local_selectivity
            for child, join in group:
                child_weights = self._subtree_weights(query, tree, child, join)
                multiplier = self._fanout_multiplier(child, join, child_weights)
                scalar *= float(np.sum(conditional * multiplier))
        return float(weights.sum() * scalar)
