"""Distribution-dimension reduction for multi-join-key tables.

A fact table with several join keys would require FactorJoin to maintain the
keys' joint bucket distribution, whose dimensionality grows multiplicatively.
The paper reduces it with "the same training procedure as the Chow-Liu
algorithm": a tree probabilistic structure over the join keys, so the joint
factorizes into pairwise conditionals.

In this reproduction the per-table BN already *contains* every join key as a
node of one Chow-Liu tree, so the reduction is structural: the joint of any
set of join keys factorizes along the tree.  This module exposes the two
pieces the framework and the ablation benchmarks use:

* :func:`join_key_tree` -- the Chow-Liu tree restricted to a table's join
  keys (which conditionals the factorization keeps);
* :func:`pairwise_bucket_joint` -- the exact pairwise bucket joint of two
  columns under the tree model, for validating the conditional-independence
  approximation used during propagation.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.bn.chow_liu import chow_liu_tree, mutual_information_matrix
from repro.estimators.bn.model import TreeBayesNet
from repro.sql.query import TablePredicate
from repro.storage.table import Table


def join_key_tree(
    table: Table, join_keys: list[str], max_bins: int = 64
) -> dict[str, str | None]:
    """Chow-Liu tree over a table's join keys.

    Returns ``key -> parent key`` (``None`` for the root).  This is the
    causality structure FactorJoin keeps instead of the full joint.
    """
    if not join_keys:
        return {}
    if len(join_keys) == 1:
        return {join_keys[0]: None}
    from repro.estimators.bn.discretize import Discretizer

    binned_columns = []
    bin_counts = []
    for key in join_keys:
        disc = Discretizer(table.column(key).values, max_bins=max_bins)
        binned_columns.append(disc.bin_of(table.column(key).values))
        bin_counts.append(disc.num_bins)
    binned = np.stack(binned_columns, axis=1)
    mi = mutual_information_matrix(binned, bin_counts)
    parents = chow_liu_tree(mi, root=0)
    return {
        join_keys[i]: (join_keys[int(p)] if p >= 0 else None)
        for i, p in enumerate(parents)
    }


def pairwise_bucket_joint(
    model: TreeBayesNet,
    column_a: str,
    column_b: str,
    predicates: list[TablePredicate] | None = None,
) -> np.ndarray:
    """Exact ``P(a-bin, b-bin, predicates)`` matrix under the tree model.

    Computed by clamping column ``a`` to each of its bins in turn and
    reading the marginal of ``b`` -- at most a few hundred message passes,
    acceptable for the offline validation this is meant for.
    """
    predicates = predicates or []
    context = model.init_context()
    index_a = model.column_index(column_a)
    index_b = model.column_index(column_b)
    bins_a = context.bin_count(index_a)
    bins_b = context.bin_count(index_b)
    base_evidence = model.evidence_for(predicates)
    joint = np.zeros((bins_a, bins_b))
    for bin_a in range(bins_a):
        clamp = np.zeros(bins_a)
        clamp[bin_a] = base_evidence[index_a][bin_a]
        evidence = list(base_evidence)
        evidence[index_a] = clamp
        joint[bin_a] = context.marginal_with_evidence(index_b, evidence)
    return joint
