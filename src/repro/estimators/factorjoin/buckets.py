"""Join-bucket construction.

Join keys connected through the collected join schema form *equivalence
classes* (e.g. ``title.id``, ``cast_info.movie_id``, ``movie_info.movie_id``
share one joint domain).  For each class the Model Preprocessor builds
equi-height buckets over the union of the participating columns' values;
every estimator-side structure (BN join-key bins, per-table bucket
statistics) then shares those boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EstimationError
from repro.storage.catalog import Catalog, JoinSchema

#: The paper's configuration: "for FactorJoin's bucket strategy, we opt for
#: equi-height buckets with a total count of 200".
DEFAULT_BUCKET_COUNT = 200


@dataclass
class JoinKeyClass:
    """One join-key equivalence class with its bucket boundaries."""

    class_id: int
    members: tuple[tuple[str, str], ...]
    edges: np.ndarray
    #: distinct values of the joint domain (union of members) per bucket
    domain_ndv: np.ndarray
    #: per-member bucket statistics, filled by the estimator at train time
    member_counts: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)
    member_ndv: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)
    member_max_freq: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)

    @property
    def num_buckets(self) -> int:
        return self.edges.size - 1

    def bucket_of(self, values: np.ndarray) -> np.ndarray:
        index = np.searchsorted(self.edges, np.asarray(values, dtype=np.float64),
                                side="right") - 1
        return np.clip(index, 0, self.num_buckets - 1).astype(np.int64)

    @property
    def nbytes(self) -> int:
        total = int(self.edges.nbytes + self.domain_ndv.nbytes)
        for store in (self.member_counts, self.member_ndv, self.member_max_freq):
            total += sum(int(arr.nbytes) for arr in store.values())
        return total


class JoinBucketizer:
    """Builds and indexes the join-key classes of a catalog."""

    def __init__(self, catalog: Catalog, num_buckets: int = DEFAULT_BUCKET_COUNT):
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        self.catalog = catalog
        self.num_buckets = num_buckets
        self.classes: list[JoinKeyClass] = []
        self._class_of: dict[tuple[str, str], int] = {}
        self._build(catalog.join_schema)

    # ------------------------------------------------------------------
    def _build(self, schema: JoinSchema) -> None:
        # Union-find over (table, column) nodes connected by join edges.
        parent: dict[tuple[str, str], tuple[str, str]] = {}

        def find(x: tuple[str, str]) -> tuple[str, str]:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: tuple[str, str], b: tuple[str, str]) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for edge in schema:
            union(
                (edge.left_table, edge.left_column),
                (edge.right_table, edge.right_column),
            )

        groups: dict[tuple[str, str], list[tuple[str, str]]] = {}
        for node in list(parent):
            groups.setdefault(find(node), []).append(node)

        for class_id, members in enumerate(
            sorted(groups.values(), key=lambda m: sorted(m)[0])
        ):
            members = tuple(sorted(members))
            union_values = np.concatenate(
                [
                    self.catalog.table(table).column(column).values.astype(np.float64)
                    for table, column in members
                ]
            )
            edges = self._equi_height_edges(union_values)
            domain = np.unique(union_values)
            bucket_index = (
                np.clip(
                    np.searchsorted(edges, domain, side="right") - 1,
                    0,
                    edges.size - 2,
                )
                if edges.size >= 2
                else np.zeros(domain.size, dtype=np.int64)
            )
            domain_ndv = np.bincount(
                bucket_index.astype(np.int64), minlength=edges.size - 1
            ).astype(np.float64)
            cls = JoinKeyClass(
                class_id=class_id,
                members=members,
                edges=edges,
                domain_ndv=np.maximum(domain_ndv, 1.0),
            )
            self._fill_member_stats(cls)
            self.classes.append(cls)
            for member in members:
                self._class_of[member] = class_id

    def _equi_height_edges(self, values: np.ndarray) -> np.ndarray:
        sorted_values = np.sort(values)
        positions = np.linspace(0, values.size - 1, self.num_buckets + 1).astype(
            np.int64
        )
        edges = np.unique(sorted_values[positions])
        if edges.size < 2:
            edges = np.array([edges[0], edges[0] + 1.0])
        else:
            edges[-1] = np.nextafter(edges[-1], np.inf)
        return edges.astype(np.float64)

    def _fill_member_stats(self, cls: JoinKeyClass) -> None:
        """Per-member per-bucket counts, NDVs and max frequencies."""
        for table, column in cls.members:
            values = self.catalog.table(table).column(column).values
            buckets = cls.bucket_of(values)
            counts = np.bincount(buckets, minlength=cls.num_buckets).astype(np.float64)
            uniques, freq = np.unique(values, return_counts=True)
            unique_buckets = cls.bucket_of(uniques)
            ndv = np.zeros(cls.num_buckets, dtype=np.float64)
            np.add.at(ndv, unique_buckets, 1.0)
            max_freq = np.zeros(cls.num_buckets, dtype=np.float64)
            np.maximum.at(max_freq, unique_buckets, freq.astype(np.float64))
            cls.member_counts[(table, column)] = counts
            cls.member_ndv[(table, column)] = np.maximum(ndv, 0.0)
            cls.member_max_freq[(table, column)] = np.maximum(max_freq, 0.0)

    # ------------------------------------------------------------------
    def class_for(self, table: str, column: str) -> JoinKeyClass:
        try:
            return self.classes[self._class_of[(table, column)]]
        except KeyError:
            raise EstimationError(
                f"{table}.{column} is not part of any collected join class"
            ) from None

    def has_class(self, table: str, column: str) -> bool:
        return (table, column) in self._class_of

    def edges_for(self, table: str, column: str) -> np.ndarray:
        return self.class_for(table, column).edges

    def join_key_columns(self, table: str) -> list[str]:
        """Join-key columns of ``table`` across all classes."""
        return sorted(
            column for (tbl, column) in self._class_of if tbl == table
        )

    @property
    def nbytes(self) -> int:
        return sum(cls.nbytes for cls in self.classes)
