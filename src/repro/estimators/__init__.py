"""Cardinality estimators: traditional baselines and learned models.

Sub-packages:

* :mod:`repro.estimators.traditional` -- Selinger-style histograms,
  HyperLogLog, and sampling (the paper's "sketch-based" and "sample-based"
  baselines);
* :mod:`repro.estimators.bn` -- tree-structured Bayesian networks
  (ByteCard's single-table COUNT model);
* :mod:`repro.estimators.factorjoin` -- FactorJoin join-size estimation on
  top of the per-table BNs (ByteCard's multi-table COUNT model);
* :mod:`repro.estimators.rbx` -- the RBX learned NDV estimator (ByteCard's
  COUNT-DISTINCT model);
* :mod:`repro.estimators.mscn` -- the MSCN query-driven baseline (Table 3);
* :mod:`repro.estimators.deepdb` -- a DeepDB-style SPN baseline (Table 3).

The estimator-facing contracts live in :mod:`repro.estimators.base`
(:class:`CountEstimator`, :class:`NdvEstimator`, and the
:class:`EstimationStrategy` protocol the optimizer and serving core
speak); :mod:`repro.estimators.strategy` supplies the adapter, the named
learned/traditional/upper-bound strategies, deterministic fallback
chains, and the per-query-class :class:`StrategyRouter`;
:mod:`repro.estimators.ues` the UES-style never-underestimate bound.
"""

from repro.estimators.base import (
    CountEstimator,
    EstimateDetail,
    EstimationStrategy,
    NdvEstimator,
)
from repro.estimators.strategy import (
    EstimatorStrategy,
    LearnedStrategy,
    QueryClass,
    RoutingRule,
    StrategyChain,
    StrategyRouter,
    TraditionalStrategy,
    UpperBoundStrategy,
    as_strategy,
    classify_query,
)
from repro.estimators.ues import UpperBoundEstimator

__all__ = [
    "CountEstimator",
    "EstimateDetail",
    "EstimationStrategy",
    "EstimatorStrategy",
    "LearnedStrategy",
    "NdvEstimator",
    "QueryClass",
    "RoutingRule",
    "StrategyChain",
    "StrategyRouter",
    "TraditionalStrategy",
    "UpperBoundEstimator",
    "UpperBoundStrategy",
    "as_strategy",
    "classify_query",
]
