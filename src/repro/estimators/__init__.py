"""Cardinality estimators: traditional baselines and learned models.

Sub-packages:

* :mod:`repro.estimators.traditional` -- Selinger-style histograms,
  HyperLogLog, and sampling (the paper's "sketch-based" and "sample-based"
  baselines);
* :mod:`repro.estimators.bn` -- tree-structured Bayesian networks
  (ByteCard's single-table COUNT model);
* :mod:`repro.estimators.factorjoin` -- FactorJoin join-size estimation on
  top of the per-table BNs (ByteCard's multi-table COUNT model);
* :mod:`repro.estimators.rbx` -- the RBX learned NDV estimator (ByteCard's
  COUNT-DISTINCT model);
* :mod:`repro.estimators.mscn` -- the MSCN query-driven baseline (Table 3);
* :mod:`repro.estimators.deepdb` -- a DeepDB-style SPN baseline (Table 3).
"""

from repro.estimators.base import CountEstimator, NdvEstimator

__all__ = ["CountEstimator", "NdvEstimator"]
