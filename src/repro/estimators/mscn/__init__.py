"""MSCN: the query-driven baseline (Kipf et al., CIDR 2019).

Multi-Set Convolutional Networks featurize a query as sets of table,
join, and predicate vectors, pool each set, and regress log-cardinality
with an MLP.  ByteCard rejects this family for production (Section 3.2.1):
training needs a large workload of queries *with executed true
cardinalities*, which is exactly what Table 3's training-time comparison
shows -- and what this implementation reproduces by generating and
ground-truthing its own training workload.
"""

from repro.estimators.mscn.model import MSCNEstimator, train_mscn

__all__ = ["MSCNEstimator", "train_mscn"]
