"""MSCN model: pooled set features -> MLP -> log cardinality."""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError, TrainingError
from repro.estimators.base import CountEstimator
from repro.estimators.rbx.network import MLP, AdamState
from repro.datasets.base import DatasetBundle
from repro.sql.featurize import QueryFeaturizer
from repro.sql.query import CardQuery
from repro.utils.rng import derive_rng
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.truth import true_count


class MSCNEstimator(CountEstimator):
    """A trained MSCN: featurizer plus regression network."""

    name = "mscn"

    def __init__(self, featurizer: QueryFeaturizer, network: MLP):
        self.featurizer = featurizer
        self.network = network

    def estimate_count(self, query: CardQuery) -> float:
        features = self.featurizer.featurize(query).pooled()
        log_card = float(self.network.forward(features[np.newaxis, :])[0])
        return float(max(np.expm1(np.clip(log_card, 0.0, 60.0)), 0.0))

    def selectivity(self, query: CardQuery) -> float:
        raise EstimationError("MSCN predicts cardinalities, not selectivities")

    def estimation_overhead(self, query: CardQuery) -> float:
        return 0.05  # featurization + one small forward pass

    @property
    def nbytes(self) -> int:
        return self.network.nbytes


def train_mscn(
    bundle: DatasetBundle,
    num_training_queries: int = 800,
    epochs: int = 50,
    batch_size: int = 64,
    learning_rate: float = 1e-3,
    hidden: tuple[int, ...] = (256, 256, 128),
    seed: int = 21,
) -> MSCNEstimator:
    """Train MSCN on a generated workload with executed true cardinalities.

    The expensive part -- deliberately reproduced -- is obtaining the
    training signal: every training query must be *executed* (here: counted
    exactly) to label it.  The paper notes its Table 3 numbers exclude even
    this labelling time; we include only the generation+featurization+fit
    time in ours and report labelling separately in the benchmark.
    """
    if num_training_queries <= 0:
        raise TrainingError("need a positive number of training queries")
    spec = WorkloadSpec(
        name=f"mscn-train-{bundle.name}",
        num_queries=num_training_queries,
        min_tables=1,
        max_tables=min(5, len(bundle.catalog.table_names())),
        max_predicates=4,
        aggregation_fraction=0.0,
        num_ndv_queries=0,
        max_true_cardinality=None,
        seed=seed,
    )
    workload = generate_workload(bundle, spec)
    featurizer = QueryFeaturizer(bundle.catalog)
    features = np.stack(
        [featurizer.featurize(q).pooled() for q in workload.queries]
    )
    targets = np.array(
        [
            np.log1p(workload.true_counts.get(q.name) or true_count(bundle.catalog, q))
            for q in workload.queries
        ]
    )
    network = MLP(features.shape[1], hidden=hidden, seed=seed)
    state = AdamState()
    rng = derive_rng(seed, "mscn-shuffle")
    n = features.shape[0]
    for _epoch in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            network.train_step(
                features[batch], targets[batch], state, learning_rate=learning_rate
            )
    return MSCNEstimator(featurizer, network)
