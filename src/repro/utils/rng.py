"""Deterministic random-number-generator plumbing.

Every stochastic component in the reproduction (dataset generators, workload
generators, model initialization, samplers) takes an explicit seed or
``numpy.random.Generator``.  These helpers derive independent child generators
from a parent seed so that runs are reproducible end to end while components
stay statistically independent of each other.
"""

from __future__ import annotations

import hashlib

import numpy as np


def spawn_seed(parent_seed: int, *names: str | int) -> int:
    """Derive a child seed from a parent seed and a path of names.

    The derivation hashes the path, so two different component names never
    collide and changing one component's name does not perturb another's
    stream.

    >>> spawn_seed(42, "imdb", "title") != spawn_seed(42, "imdb", "cast_info")
    True
    """
    payload = ":".join([str(parent_seed), *map(str, names)]).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(parent_seed: int, *names: str | int) -> np.random.Generator:
    """Return an independent ``Generator`` for the given component path."""
    return np.random.default_rng(spawn_seed(parent_seed, *names))
