"""Small shared utilities: deterministic RNG handling and timers."""

from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.timer import Stopwatch

__all__ = ["derive_rng", "spawn_seed", "Stopwatch"]
