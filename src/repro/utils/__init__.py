"""Small shared utilities: deterministic RNG handling, clocks, and timers."""

from repro.utils.clock import SYSTEM_CLOCK, Clock, SystemClock
from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.timer import Stopwatch

__all__ = [
    "Clock",
    "SystemClock",
    "SYSTEM_CLOCK",
    "derive_rng",
    "spawn_seed",
    "Stopwatch",
]
