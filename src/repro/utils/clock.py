"""Injectable time source shared by the forge, serving, and stream tiers.

Production code reads time through a :class:`Clock` so tests and the
:mod:`repro.stream` soak driver can substitute a deterministic simulated
clock (:class:`repro.stream.SimClock`) without monkeypatching
``time.monotonic`` globally.  The protocol is deliberately tiny:

``now()``
    A monotonically non-decreasing float of seconds.  Under the system
    clock this is ``time.monotonic()``; under a simulated clock it is
    virtual time that only moves when the driver advances it.

``wait_timeout(delay)``
    Translate a desired wait of ``delay`` clock-seconds into the *real*
    timeout to pass to ``Condition.wait`` / ``Event.wait``.  The system
    clock returns ``delay`` unchanged.  A simulated clock returns a short
    real poll interval instead, because virtual time does not pass while a
    thread sleeps -- waiters must wake periodically and re-read ``now()``.
    ``None`` (wait until notified) passes through under every clock.

Blocking waits must therefore always be written as a loop that re-checks
the deadline against ``clock.now()`` -- which is exactly how a correct
``Condition.wait`` loop is written anyway.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "SystemClock", "SYSTEM_CLOCK"]


@runtime_checkable
class Clock(Protocol):
    """Duck-typed time source; see the module docstring for the contract."""

    def now(self) -> float: ...

    def wait_timeout(self, delay: float | None) -> float | None: ...


class SystemClock:
    """The real wall clock: ``time.monotonic`` semantics."""

    def now(self) -> float:
        return time.monotonic()

    def wait_timeout(self, delay: float | None) -> float | None:
        return delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SystemClock()"


#: shared default instance; ``clock=None`` parameters resolve to this
SYSTEM_CLOCK = SystemClock()
