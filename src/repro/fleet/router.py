"""The fleet router: sharded dispatch, hedging, and worker supervision.

:class:`FleetRouter` is the fleet's front door and the optimizer's drop-in
estimator (:class:`CountEstimator` / :class:`NdvEstimator`): a request is
fingerprinted to its shard owner on the consistent-hash ring, dispatched
over the owner's frame connection, and answered from the worker's
:class:`~repro.serving.core.EstimationCore` -- the same pipeline, caches
and degradation contract as in-process serving, so values are
bit-identical to a single-process :class:`EstimationService` over the same
store.

What the router adds is *fault tolerance around processes*:

* **hedging** -- a worker answers within its serving deadline (its core
  degrades internally), so the router waits ``deadline * (1 +
  hedge_fraction)`` and then computes the traditional fallback locally.
  If the worker's reply lands while the hedge is being computed, the
  late reply wins (it is the learned estimate; the hedge was wasted
  work, which is counted).  Otherwise the request is abandoned -- a
  late reply is dropped by the client, never double-answered.
* **failover** -- a dead worker (EOF mid-request, failed submit, circuit
  open) degrades the request to the local traditional estimator
  immediately; no request is lost.
* **supervision** -- a heartbeat thread pings every worker; a dead or
  wedged (``heartbeat_misses`` silent pings) worker is restarted and
  re-warmed from the artifact store, up to ``max_restarts`` times.
  Consecutive request failures open a circuit that forces the same
  restart path without waiting for the heartbeat to notice.

Fleet-wide observability: every worker ships its registry snapshot over
IPC; :meth:`metrics_registry` merges them with the router's own registry
under per-process ``worker`` labels (see :mod:`repro.obs.merge`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable

from repro.core.config import ByteCardConfig
from repro.datasets.base import DatasetBundle
from repro.errors import EstimationError, FleetError, WorkerDied
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.fleet.client import FRAME_DROP_REASONS, WorkerClient
from repro.fleet.config import FleetConfig
from repro.fleet.sharding import ShardMap
from repro.fleet.worker import WorkerSpec
from repro.obs import export_json, export_text, merged_registry
from repro.obs.metrics import MetricsRegistry
from repro.serving.config import ServingConfig
from repro.sql.query import CardQuery

__all__ = ["FleetRouter", "FleetEstimate", "FleetStats"]


@dataclass(frozen=True)
class FleetEstimate:
    """One routed request: the value plus how the fleet produced it."""

    value: float
    #: the worker-reported serving source ("cache" | "model" | ...), or the
    #: router-level "fallback-hedge" / "fallback-failover" / "fallback-error"
    source: str
    #: shard owner the request was routed to
    worker: int
    latency_s: float
    #: the hedge timer fired (even if the worker's late reply won)
    hedged: bool = False
    #: the owner was unusable and the router answered locally
    failover: bool = False

    @property
    def degraded(self) -> bool:
        return self.source.startswith("fallback")


@dataclass(frozen=True)
class FleetStats:
    """Router-level counters (worker-side serving stats live in metrics)."""

    requests: int = 0
    hedges: int = 0
    #: hedges whose fallback compute was discarded for a late worker reply
    hedges_wasted: int = 0
    failovers: int = 0
    worker_errors: int = 0
    restarts: int = 0


class FleetRouter(CountEstimator, NdvEstimator):
    """Multi-process serving fleet behind one estimator interface."""

    name = "fleet"

    def __init__(
        self,
        bundle: DatasetBundle,
        store_dir,
        fallback_count: CountEstimator,
        fallback_ndv: NdvEstimator | None = None,
        bytecard_config: ByteCardConfig | None = None,
        serving_config: ServingConfig | None = None,
        fleet_config: FleetConfig | None = None,
        fallback_tables: tuple[str, ...] = (),
        registry: MetricsRegistry | None = None,
    ):
        self.bundle = bundle
        self.store_dir = str(store_dir)
        self.config = fleet_config or FleetConfig()
        self.serving_config = serving_config or ServingConfig()
        self.bytecard_config = bytecard_config
        self.fallback_count = fallback_count
        self.fallback_ndv = fallback_ndv
        self.fallback_tables = tuple(fallback_tables)
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=True)
        )
        # Every dropped-frame reason shows up in exports as an explicit
        # zero from the start -- a swallow that never happened is then
        # distinguishable from one that was never counted.
        if self.registry.enabled:
            self.registry.preregister(
                "fleet_frames_dropped_total", "reason", FRAME_DROP_REASONS
            )
        worker_ids = list(range(self.config.n_workers))
        self.shard_map = ShardMap(
            worker_ids, virtual_nodes=self.config.virtual_nodes
        )
        self._counts_lock = threading.Lock()
        self._counts = {
            "requests": 0,
            "hedges": 0,
            "hedges_wasted": 0,
            "failovers": 0,
            "worker_errors": 0,
            "restarts": 0,
        }
        self._clients_lock = threading.Lock()
        self._clients: dict[int, WorkerClient] = {}
        self._consecutive_failures = {wid: 0 for wid in worker_ids}
        self._restart_counts = {wid: 0 for wid in worker_ids}
        self._closed = threading.Event()
        # Spawn everyone first (warm-starts overlap), then await readiness.
        for wid in worker_ids:
            self._clients[wid] = self._spawn(wid)
        deadline = time.monotonic() + self.config.start_timeout_s
        try:
            for wid in worker_ids:
                remaining = max(0.1, deadline - time.monotonic())
                self._clients[wid].wait_ready(remaining)
        except FleetError:
            for client in self._clients.values():
                client.kill()
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True, name="fleet-supervisor"
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spec(self, worker_id: int) -> WorkerSpec:
        return WorkerSpec(
            worker_id=worker_id,
            store_dir=self.store_dir,
            bytecard_config=self.bytecard_config,
            serving_config=self.serving_config,
            fallback_tables=self.fallback_tables,
            handler_threads=self.config.handler_threads,
        )

    def _spawn(self, worker_id: int) -> WorkerClient:
        return WorkerClient(
            self._spec(worker_id),
            self.bundle,
            start_method=self.config.start_method,
            registry=self.registry,
        )

    def _client(self, worker_id: int) -> WorkerClient | None:
        with self._clients_lock:
            return self._clients.get(worker_id)

    def _restart(self, worker_id: int) -> bool:
        """Supervised restart with store re-warm; bounded by max_restarts."""
        with self._clients_lock:
            if self._closed.is_set():
                return False
            if self._restart_counts[worker_id] >= self.config.max_restarts:
                self.registry.counter(
                    "fleet_restarts_exhausted_total", worker=worker_id
                ).inc()
                return False
            self._restart_counts[worker_id] += 1
            old = self._clients.get(worker_id)
        if old is not None:
            old.kill()
        client = self._spawn(worker_id)
        try:
            client.wait_ready(self.config.start_timeout_s)
        except FleetError:
            client.kill()
            self.registry.counter(
                "fleet_restart_failures_total", worker=worker_id
            ).inc()
            return False
        with self._clients_lock:
            if self._closed.is_set():
                client.kill()
                return False
            self._clients[worker_id] = client
            self._consecutive_failures[worker_id] = 0
        self._bump("restarts")
        self.registry.counter(
            "fleet_worker_restarts_total", worker=worker_id
        ).inc()
        return True

    def _supervise(self) -> None:
        """Heartbeat sweep: restart dead workers, hard-restart wedged ones."""
        misses = {wid: 0 for wid in self.shard_map.worker_ids}
        while not self._closed.wait(self.config.heartbeat_interval_s):
            for worker_id in self.shard_map.worker_ids:
                if self._closed.is_set():
                    return
                client = self._client(worker_id)
                if client is None:
                    continue
                if not client.alive:
                    misses[worker_id] = 0
                    self._restart(worker_id)
                    continue
                if client.ping(timeout=self.config.heartbeat_timeout_s):
                    misses[worker_id] = 0
                    continue
                misses[worker_id] += 1
                if misses[worker_id] >= self.config.heartbeat_misses:
                    # Process alive but silent: wedged. Hard-restart.
                    misses[worker_id] = 0
                    client.kill()
                    self._restart(worker_id)

    def _note_failure(self, worker_id: int) -> None:
        """Circuit breaker: consecutive failures force a restart cycle."""
        with self._clients_lock:
            self._consecutive_failures[worker_id] += 1
            tripped = (
                self._consecutive_failures[worker_id]
                >= self.config.failure_threshold
            )
            if tripped:
                self._consecutive_failures[worker_id] = 0
            client = self._clients.get(worker_id) if tripped else None
        if tripped:
            self.registry.counter(
                "fleet_circuit_breaks_total", worker=worker_id
            ).inc()
            if client is not None and client.alive:
                # Kill; the supervisor's next sweep performs the restart.
                client.kill()

    def _note_success(self, worker_id: int) -> None:
        with self._clients_lock:
            self._consecutive_failures[worker_id] = 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _bump(self, key: str, amount: int = 1) -> None:
        with self._counts_lock:
            self._counts[key] += amount

    def _hedge_wait_s(self) -> float:
        deadline = self.serving_config.deadline_ms
        if deadline is None:
            return self.config.hedge_timeout_ms / 1000.0
        return deadline * (1.0 + self.config.hedge_fraction) / 1000.0

    def _fallback_fn(self, task: str) -> Callable[[CardQuery], float]:
        if task == "count":
            return self.fallback_count.estimate_count
        if self.fallback_ndv is not None:
            return self.fallback_ndv.estimate_ndv

        def no_ndv_fallback(_query: CardQuery) -> float:
            raise EstimationError("fleet has no NDV fallback estimator")

        return no_ndv_fallback

    def _finish(
        self,
        task: str,
        value: float,
        source: str,
        worker_id: int,
        start: float,
        hedged: bool = False,
        failover: bool = False,
    ) -> FleetEstimate:
        latency = time.perf_counter() - start
        self.registry.histogram("fleet_latency_seconds", task=task).observe(
            latency
        )
        return FleetEstimate(
            value=float(value),
            source=source,
            worker=worker_id,
            latency_s=latency,
            hedged=hedged,
            failover=failover,
        )

    def _dispatch(self, task: str, query: CardQuery) -> FleetEstimate:
        start = time.perf_counter()
        self._bump("requests")
        self.registry.counter("fleet_requests_total", task=task).inc()
        owner = self.shard_map.owner_for_tables(query.tables)
        fallback = self._fallback_fn(task)
        client = self._client(owner)
        if client is None or not client.alive:
            self._bump("failovers")
            self.registry.counter(
                "fleet_failovers_total", reason="worker-down"
            ).inc()
            return self._finish(
                task, fallback(query), "fallback-failover", owner, start,
                failover=True,
            )
        try:
            req_id, future = client.submit_estimate(task, query)
        except WorkerDied:
            self._note_failure(owner)
            self._bump("failovers")
            self.registry.counter(
                "fleet_failovers_total", reason="submit"
            ).inc()
            return self._finish(
                task, fallback(query), "fallback-failover", owner, start,
                failover=True,
            )
        try:
            payload = future.result(timeout=self._hedge_wait_s())
        except FutureTimeoutError:
            self._bump("hedges")
            self.registry.counter("fleet_hedges_total", task=task).inc()
            hedge_value = fallback(query)
            if future.done():
                # The worker's reply landed while the hedge was computed:
                # prefer it (it is the learned estimate), count the waste.
                try:
                    payload = future.result()
                except Exception:
                    # The late reply was an error frame; it is discarded in
                    # favor of the hedge -- count the drop, don't hide it.
                    self.registry.counter(
                        "fleet_frames_dropped_total", reason="late-reply"
                    ).inc()
                    self._note_failure(owner)
                    self._bump("worker_errors")
                    return self._finish(
                        task, hedge_value, "fallback-hedge", owner, start,
                        hedged=True,
                    )
                self._note_success(owner)
                self._bump("hedges_wasted")
                value, source, _wlat, _batched = payload
                return self._finish(
                    task, value, source, owner, start, hedged=True
                )
            client.abandon(req_id)
            self._note_failure(owner)
            return self._finish(
                task, hedge_value, "fallback-hedge", owner, start, hedged=True
            )
        except WorkerDied:
            self._note_failure(owner)
            self._bump("failovers")
            self.registry.counter(
                "fleet_failovers_total", reason="died"
            ).inc()
            return self._finish(
                task, fallback(query), "fallback-failover", owner, start,
                failover=True,
            )
        except Exception:
            # Worker-side estimation error ("err" frame): degrade locally.
            self._note_failure(owner)
            self._bump("worker_errors")
            self.registry.counter(
                "fleet_worker_errors_total", task=task
            ).inc()
            return self._finish(
                task, fallback(query), "fallback-error", owner, start
            )
        self._note_success(owner)
        value, source, _wlat, _batched = payload
        return self._finish(task, value, source, owner, start)

    # ------------------------------------------------------------------
    # Estimator interface
    # ------------------------------------------------------------------
    def estimate_count_detail(self, query: CardQuery) -> FleetEstimate:
        return self._dispatch("count", query)

    def estimate_count(self, query: CardQuery) -> float:
        return self._dispatch("count", query).value

    def estimate_ndv_detail(self, query: CardQuery) -> FleetEstimate:
        return self._dispatch("ndv", query)

    def estimate_ndv(self, query: CardQuery) -> float:
        return self._dispatch("ndv", query).value

    def owner_of(self, query: CardQuery) -> int:
        """The shard owner this query routes to (diagnostics and tests)."""
        return self.shard_map.owner_for_tables(query.tables)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> FleetStats:
        with self._counts_lock:
            return FleetStats(**self._counts)

    def worker_infos(self) -> dict[int, dict | None]:
        """Per-worker ready announcements (pid, model count)."""
        with self._clients_lock:
            clients = dict(self._clients)
        return {wid: client.ready_info for wid, client in sorted(clients.items())}

    def metrics_states(self, timeout: float = 2.0) -> dict[str, list]:
        """Registry snapshots by process identity: the merge protocol's
        input -- the router's own state plus one fetched per live worker."""
        states: dict[str, list] = {"router": self.registry.state()}
        with self._clients_lock:
            clients = sorted(self._clients.items())
        for worker_id, client in clients:
            if not client.alive:
                continue
            try:
                states[str(worker_id)] = client.fetch_metrics(timeout)
            except Exception:
                # A worker whose snapshot frame never arrived is simply
                # absent from the merge; the counter records the gap.
                self.registry.counter(
                    "fleet_frames_dropped_total", reason="metrics"
                ).inc()
                continue
        return states

    def metrics_registry(self) -> MetricsRegistry:
        """One fleet-wide registry, every series labeled by ``worker``."""
        return merged_registry(self.metrics_states())

    def metrics_text(self) -> str:
        """Prometheus-style text export of the merged fleet registry."""
        return export_text(self.metrics_registry())

    def metrics_json(self) -> dict:
        """Structured JSON export of the merged fleet registry."""
        return export_json(self.metrics_registry())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> bool:
        """Bounded fleet teardown: drain every worker, then reap.

        Returns ``True`` when every worker acknowledged a graceful drain
        within the budget (``fleet_config.shutdown_timeout_s`` when
        ``timeout`` is ``None``).
        """
        if self._closed.is_set():
            return True
        self._closed.set()
        self._supervisor.join(
            timeout=self.config.heartbeat_interval_s
            + self.config.heartbeat_timeout_s
            + 1.0
        )
        budget = (
            timeout if timeout is not None else self.config.shutdown_timeout_s
        )
        with self._clients_lock:
            clients = sorted(self._clients.items())
        deadline = time.monotonic() + budget
        clean = True
        for _worker_id, client in clients:
            remaining = max(0.5, deadline - time.monotonic())
            clean &= client.shutdown(remaining)
        return clean

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
