"""Consistent-hash shard ownership over the (table, model) space.

Each fleet worker warm-starts the *full* model set from the artifact store
(models are small; loading everything is what makes restart re-warm
trivial), but requests are routed by **shard ownership** so that a given
table's -- or a given join scope's -- traffic always lands on the same
worker.  Ownership is what makes the per-worker estimate caches, plan
caches, and micro-batches effective: repeated fingerprints hit a warm
cache instead of spreading cold across the fleet.

The ring uses SHA-1 points, not Python's builtin ``hash`` --
``PYTHONHASHSEED`` randomizes the latter per process, and the router and
any observer (tests, a rebalancing tool) must agree on ownership across
process boundaries.  Virtual nodes smooth the balance the way any small
consistent-hash deployment does.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.errors import FleetError

__all__ = ["ShardMap"]


def _point(key: str) -> int:
    """A stable 64-bit ring position for ``key`` (process-independent)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class ShardMap:
    """Consistent-hash ring mapping routing keys to worker ids."""

    def __init__(self, worker_ids: Sequence[int], virtual_nodes: int = 64):
        if not worker_ids:
            raise FleetError("a shard map needs at least one worker")
        if len(set(worker_ids)) != len(worker_ids):
            raise FleetError("worker ids must be unique")
        if virtual_nodes < 1:
            raise FleetError("virtual_nodes must be >= 1")
        self.worker_ids = tuple(worker_ids)
        self.virtual_nodes = virtual_nodes
        ring: list[tuple[int, int]] = []
        for wid in self.worker_ids:
            for vnode in range(virtual_nodes):
                ring.append((_point(f"worker:{wid}:vnode:{vnode}"), wid))
        ring.sort()
        self._points = [point for point, _wid in ring]
        self._owners = [wid for _point_, wid in ring]

    # ------------------------------------------------------------------
    # Routing keys
    # ------------------------------------------------------------------
    @staticmethod
    def scope_key(tables: Iterable[str]) -> str:
        """The routing key of a query's table scope.

        Single-table queries route by table; join queries route by their
        *sorted* table set, so every join over the same scope lands on the
        same worker and shares its plan-cache artifacts.
        """
        names = sorted(tables)
        if len(names) == 1:
            return f"table:{names[0]}"
        return "scope:" + "|".join(names)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owner_of(self, key: str) -> int:
        """The worker owning ``key``: first ring point at or after it."""
        index = bisect.bisect_right(self._points, _point(key))
        return self._owners[index % len(self._owners)]

    def owner_for_tables(self, tables: Iterable[str]) -> int:
        return self.owner_of(self.scope_key(tables))

    def assignment(self, keys: Iterable[str]) -> dict[int, list[str]]:
        """Group ``keys`` by owning worker (diagnostics and tests)."""
        grouped: dict[int, list[str]] = {wid: [] for wid in self.worker_ids}
        for key in keys:
            grouped[self.owner_of(key)].append(key)
        return grouped
