"""repro.fleet -- the multi-process serving fleet.

Scales the serving tier past one interpreter: ``N`` estimator worker
processes, each warm-started from the crash-safe artifact store with
**zero training** and owning a consistent-hash shard of the (table, model)
space, behind a router that hedges slow requests, fails over around dead
workers, and supervises restarts with store re-warm.  The pipeline inside
every worker is the *same* :class:`~repro.serving.core.EstimationCore` the
in-process :class:`~repro.serving.service.EstimationService` uses --
estimates are bit-identical across both transports.

* :mod:`repro.fleet.router`   -- sharded dispatch, hedging, supervision,
  merged fleet-wide metrics;
* :mod:`repro.fleet.worker`   -- the worker process: store warm-start +
  EstimationCore behind a frame loop;
* :mod:`repro.fleet.client`   -- the router's per-worker multiplexer with
  edge-triggered death detection;
* :mod:`repro.fleet.sharding` -- the SHA-1 consistent-hash ring;
* :mod:`repro.fleet.protocol` -- length-prefixed pickle frames;
* :mod:`repro.fleet.config`   -- the fleet's tunables.

Entry point: :meth:`repro.core.bytecard.ByteCard.fleet`.
"""

from repro.fleet.client import WorkerClient
from repro.fleet.config import FleetConfig
from repro.fleet.protocol import (
    DEADLINE_FROM_CONFIG,
    MAX_FRAME_BYTES,
    FrameConnection,
)
from repro.fleet.router import FleetEstimate, FleetRouter, FleetStats
from repro.fleet.sharding import ShardMap
from repro.fleet.worker import WorkerSpec, spawn_worker, worker_main

__all__ = [
    "DEADLINE_FROM_CONFIG",
    "FleetConfig",
    "FleetEstimate",
    "FleetRouter",
    "FleetStats",
    "FrameConnection",
    "MAX_FRAME_BYTES",
    "ShardMap",
    "WorkerClient",
    "WorkerSpec",
    "spawn_worker",
    "worker_main",
]
