"""The fleet worker: one process, one EstimationCore, a frame loop.

A worker is the fleet's unit of isolation.  It warm-starts a full
:class:`~repro.core.bytecard.ByteCard` from the crash-safe artifact store
(**zero training** -- the parent persisted its registry before spawning),
mirrors the parent's monitor verdicts (``fallback_tables``), and then binds
the *same* :class:`~repro.serving.core.EstimationCore` the in-process
:class:`~repro.serving.service.EstimationService` uses to a frame-based IPC
loop instead of direct method calls.  Identical models plus the identical
pipeline is what makes fleet estimates bit-identical to single-process
serving.

Estimate requests are dispatched to a small handler pool so the loop keeps
answering pings (the router's liveness signal) while inference runs;
``ping``/``metrics``/``shutdown`` are answered inline.  Shutdown reuses the
core's drain-ordered bounded close, then acknowledges with ``bye`` so the
router can tell a graceful exit from a crash (EOF without ``bye``).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.bytecard import ByteCard
from repro.core.config import ByteCardConfig
from repro.datasets.base import DatasetBundle
from repro.errors import ConnectionClosed, EstimationError
from repro.fleet.protocol import DEADLINE_FROM_CONFIG, FrameConnection
from repro.serving.config import ServingConfig
from repro.serving.core import _UNSET, EstimationCore

__all__ = ["WorkerSpec", "worker_main", "spawn_worker"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs besides the (fork-inherited) bundle."""

    worker_id: int
    store_dir: str
    bytecard_config: ByteCardConfig | None = None
    serving_config: ServingConfig | None = None
    #: the parent's monitor verdicts, mirrored so a gated table degrades to
    #: the traditional estimator in the worker exactly as it would in the
    #: parent (the worker itself never runs the monitor)
    fallback_tables: tuple[str, ...] = field(default_factory=tuple)
    #: concurrent IPC estimate handlers feeding the core's own pool
    handler_threads: int = 4


def worker_main(
    spec: WorkerSpec, bundle: DatasetBundle, sock: socket.socket
) -> None:
    """Process entry point: warm-start, announce, serve frames until EOF."""
    conn = FrameConnection(sock)
    try:
        bytecard = ByteCard.from_store(
            bundle,
            spec.store_dir,
            config=spec.bytecard_config,
            run_monitor=False,
        )
        bytecard.fallback_tables = set(spec.fallback_tables)
        core = EstimationCore(
            estimator=bytecard,
            fallback_count=bytecard._traditional_count,
            fallback_ndv=bytecard._traditional_ndv,
            config=spec.serving_config,
            loader=bytecard.loader,
            registry=bytecard.obs,
        )
    except Exception as exc:
        try:
            conn.send("fatal", 0, f"{type(exc).__name__}: {exc}")
        except Exception:
            pass
        conn.close()
        return
    try:
        conn.send(
            "ready",
            0,
            {
                "worker_id": spec.worker_id,
                "pid": os.getpid(),
                "models": len(bytecard.loader.loaded_keys()),
            },
        )
    except ConnectionClosed:
        conn.close()
        return

    def handle_estimate(req_id: int, task: str, query, deadline_token) -> None:
        try:
            deadline = (
                _UNSET if deadline_token == DEADLINE_FROM_CONFIG else deadline_token
            )
            if task == "count":
                served = core.serve_count(query, deadline)
            elif task == "ndv":
                served = core.serve_ndv(query, deadline)
            else:
                raise EstimationError(f"unknown estimation task {task!r}")
            conn.send(
                "res",
                req_id,
                (served.value, served.source, served.latency_s, served.batched),
            )
        except ConnectionClosed:
            pass
        except Exception as exc:
            try:
                conn.send("err", req_id, f"{type(exc).__name__}: {exc}")
            except ConnectionClosed:
                pass

    handlers = ThreadPoolExecutor(
        max_workers=spec.handler_threads,
        thread_name_prefix=f"fleet-w{spec.worker_id}",
    )
    try:
        while True:
            try:
                kind, req_id, payload = conn.recv()
            except ConnectionClosed:
                # Router gone (crash or hard close): drain quickly and exit.
                core.close(timeout=0.5)
                break
            if kind == "est":
                task, query, deadline_token = payload
                handlers.submit(handle_estimate, req_id, task, query, deadline_token)
            elif kind == "ping":
                try:
                    conn.send("pong", req_id, None)
                except ConnectionClosed:
                    break
            elif kind == "metrics":
                try:
                    conn.send("metrics_res", req_id, bytecard.obs.state())
                except ConnectionClosed:
                    break
            elif kind == "shutdown":
                # Bounded drain: in-flight estimates finish (or degrade via
                # the core's cancel path); handler threads unblock either
                # way, so the pool's exit join below cannot hang.
                core.close(timeout=payload)
                try:
                    conn.send("bye", req_id, None)
                except ConnectionClosed:
                    pass
                break
            # unknown frame kinds are ignored (forward compatibility)
    finally:
        handlers.shutdown(wait=False, cancel_futures=True)
        conn.close()


def spawn_worker(
    spec: WorkerSpec, bundle: DatasetBundle, start_method: str = "fork"
) -> tuple[multiprocessing.process.BaseProcess, FrameConnection]:
    """Fork one worker process; return its handle and the parent-side pipe.

    ``fork`` shares the parent's dataset bundle copy-on-write -- nothing is
    pickled at spawn time and startup cost is the store warm-start alone.
    The child end of the socketpair is *closed without shutdown* in the
    parent (a ``shutdown()`` would tear down the shared connection), so a
    worker death surfaces to the router as a clean EOF.
    """
    ctx = multiprocessing.get_context(start_method)
    parent_sock, child_sock = socket.socketpair()
    process = ctx.Process(
        target=worker_main,
        args=(spec, bundle, child_sock),
        daemon=True,
        name=f"fleet-worker-{spec.worker_id}",
    )
    process.start()
    child_sock.close()
    return process, FrameConnection(parent_sock)
