"""The router's handle to one worker process.

A :class:`WorkerClient` owns the process handle and the parent end of its
frame connection, and multiplexes concurrent requests over it: every
outbound frame gets a ``req_id``, a receiver thread resolves the matching
:class:`~concurrent.futures.Future` when the reply arrives (replies are
out of order by design -- pings overtake estimates).

Death detection is edge-triggered and total: the receiver thread sees EOF
(or a fatal frame) the moment the worker exits for any reason, marks the
client dead, and fails **every** pending future with
:class:`~repro.errors.WorkerDied` -- so a request in flight on a killed
worker surfaces immediately to the router's failover path instead of
waiting out a timeout.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future

from repro.datasets.base import DatasetBundle
from repro.errors import ConnectionClosed, FleetError, WorkerDied
from repro.fleet.protocol import DEADLINE_FROM_CONFIG
from repro.fleet.worker import WorkerSpec, spawn_worker
from repro.obs.metrics import MetricsRegistry

__all__ = ["WorkerClient", "FRAME_DROP_REASONS"]

#: every way a frame can be dropped on the parent side, pre-registered so
#: the export shows explicit zeros (a silent swallow is exactly what the
#: ``fleet_frames_dropped_total`` counter exists to expose)
FRAME_DROP_REASONS = (
    "desync",
    "undecodable",
    "unknown-kind",
    "abandoned",
    "ping",
    "late-reply",
    "metrics",
)


class WorkerClient:
    """Request multiplexer and lifecycle handle for one fleet worker."""

    def __init__(
        self,
        spec: WorkerSpec,
        bundle: DatasetBundle,
        start_method: str = "fork",
        registry: MetricsRegistry | None = None,
    ):
        self.spec = spec
        self.worker_id = spec.worker_id
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self.process, self.conn = spawn_worker(spec, bundle, start_method)
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._req_ids = itertools.count(1)
        self.ready = threading.Event()
        self.ready_info: dict | None = None
        self.dead = threading.Event()
        self.fatal_error: str | None = None
        self._receiver = threading.Thread(
            target=self._receive_loop,
            daemon=True,
            name=f"fleet-client-{spec.worker_id}",
        )
        self._receiver.start()

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            try:
                kind, req_id, payload = self.conn.recv()
            except ConnectionClosed:
                break  # normal EOF: the worker exited
            except FleetError:
                # Oversized/garbled frame: the stream is desynchronized and
                # nothing after it can be trusted -- count it and give up.
                self._count_drop("desync")
                break
            except Exception:  # pragma: no cover - defensive: bad frame
                self._count_drop("undecodable")
                break
            if kind == "ready":
                self.ready_info = payload
                self.ready.set()
            elif kind == "fatal":
                self.fatal_error = str(payload)
                break
            elif kind == "err":
                future = self._pop_pending(req_id)
                if future is not None and not future.done():
                    future.set_exception(FleetError(str(payload)))
            elif kind in ("res", "pong", "metrics_res", "bye"):
                future = self._pop_pending(req_id)
                if future is None:
                    # Nobody is waiting: an abandoned (hedged-away) request's
                    # late reply, or a reply to a request that already died.
                    self._count_drop("abandoned")
                elif not future.done():
                    future.set_result(payload)
            else:
                # Unknown frame kinds are tolerated (forward compatibility)
                # but never silently: the counter is the paper trail.
                self._count_drop("unknown-kind")
        self._mark_dead()

    def _count_drop(self, reason: str) -> None:
        self.registry.counter(
            "fleet_frames_dropped_total", reason=reason
        ).inc()

    def _pop_pending(self, req_id: int) -> Future | None:
        with self._lock:
            return self._pending.pop(req_id, None)

    def _mark_dead(self) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        self.dead.set()
        # Unblock ready-waiters too; wait_ready re-checks dead/fatal.
        self.ready.set()
        reason = self.fatal_error or "connection lost"
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    WorkerDied(f"worker {self.worker_id}: {reason}")
                )

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self.dead.is_set() and self.process.is_alive()

    def wait_ready(self, timeout: float | None = None) -> dict:
        """Block until the worker announced warm-start completion."""
        if not self.ready.wait(timeout):
            raise FleetError(
                f"worker {self.worker_id} not ready within {timeout}s"
            )
        if self.fatal_error is not None:
            raise FleetError(
                f"worker {self.worker_id} failed to start: {self.fatal_error}"
            )
        if self.dead.is_set():
            raise FleetError(f"worker {self.worker_id} died during startup")
        assert self.ready_info is not None
        return self.ready_info

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _submit(self, kind: str, payload: object) -> tuple[int, Future]:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        with self._lock:
            if self.dead.is_set():
                raise WorkerDied(f"worker {self.worker_id} is dead")
            req_id = next(self._req_ids)
            self._pending[req_id] = future
        try:
            self.conn.send(kind, req_id, payload)
        except ConnectionClosed as exc:
            self._pop_pending(req_id)
            raise WorkerDied(f"worker {self.worker_id}: {exc}") from exc
        return req_id, future

    def submit_estimate(
        self, task: str, query, deadline_token=DEADLINE_FROM_CONFIG
    ) -> tuple[int, Future]:
        """Dispatch one estimate; the future resolves to the ``res`` tuple
        ``(value, source, latency_s, batched)``."""
        return self._submit("est", (task, query, deadline_token))

    def abandon(self, req_id: int) -> None:
        """Forget a hedged-away request; a late reply is dropped silently."""
        self._pop_pending(req_id)

    def ping(self, timeout: float) -> bool:
        try:
            _req_id, future = self._submit("ping", None)
            future.result(timeout)
            return True
        except Exception:
            # A ping that never resolves is a dropped health frame: the
            # caller only sees False, so leave an audit trail here.
            self._count_drop("ping")
            return False

    def fetch_metrics(self, timeout: float) -> list:
        """The worker's :meth:`MetricsRegistry.state` snapshot."""
        _req_id, future = self._submit("metrics", None)
        return future.result(timeout)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float) -> bool:
        """Graceful bounded stop: drain request, ``bye`` ack, then join --
        escalating to terminate/kill so a wedged worker cannot hang us."""
        clean = False
        if not self.dead.is_set():
            # Give the worker most of the budget for its internal drain,
            # keeping headroom to observe the ack and reap the process.
            drain = max(0.1, timeout * 0.6)
            try:
                _req_id, future = self._submit("shutdown", drain)
                future.result(max(0.1, timeout * 0.8))
                clean = True
            except Exception:
                pass
        self.process.join(timeout=max(0.1, timeout * 0.2))
        if self.process.is_alive():
            clean = False
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():  # pragma: no cover - last resort
                self.process.kill()
                self.process.join(timeout=1.0)
        self.conn.close()
        self._mark_dead()
        return clean

    def kill(self) -> None:
        """Hard-kill the process (fault injection and circuit breaking)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        self.conn.close()
        self._mark_dead()
