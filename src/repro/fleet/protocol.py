"""The fleet's wire protocol: length-prefixed pickle frames over a socket.

One frame is a pickled ``(kind, req_id, payload)`` tuple preceded by a
4-byte big-endian length.  The framing is deliberately minimal -- both
endpoints are the same trusted codebase forked from one parent process, so
pickle's "only between cooperating processes" caveat is satisfied by
construction and the protocol needs no negotiation, versioning, or schema.

Frame kinds:

========== ======== =========================================================
kind       sender   payload
========== ======== =========================================================
``ready``   worker  ``{"worker_id", "pid", "models"}`` -- warm-start done
``fatal``   worker  error string -- warm-start failed, the worker is exiting
``est``     router  ``(task, query, deadline_token)``; ``task`` is ``count``
                    or ``ndv``; ``deadline_token`` is the string ``"cfg"``
                    (use the worker's configured deadline -- an ``_UNSET``
                    sentinel cannot cross a pickle boundary), a float
                    (milliseconds) or ``None`` (no deadline)
``res``     worker  ``(value, source, latency_s, batched)``
``err``     worker  error string -- the request raised
``ping``    router  ``None``
``pong``    worker  ``None``
``metrics`` router  ``None``
``metrics_res`` w.  :meth:`MetricsRegistry.state` snapshot
``shutdown`` router worker-side drain budget (seconds or ``None``)
``bye``     worker  ``None`` -- drain finished, the worker is exiting
========== ======== =========================================================

Requests are multiplexed by ``req_id``; replies may arrive out of order
(the worker handles estimates on a thread pool while answering pings
inline), so both sides key their pending state by id.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

from repro.errors import ConnectionClosed, FleetError

__all__ = ["FrameConnection", "MAX_FRAME_BYTES", "DEADLINE_FROM_CONFIG"]

_HEADER = struct.Struct(">I")

#: hard bound on one frame; anything bigger indicates a protocol bug (a
#: desynced stream reading garbage as a length), not a legitimate payload
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: the wire stand-in for "use the worker's configured deadline"
DEADLINE_FROM_CONFIG = "cfg"


class FrameConnection:
    """One framed, thread-safe, bidirectional connection over a socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def send(self, kind: str, req_id: int, payload: object) -> None:
        blob = pickle.dumps(
            (kind, req_id, payload), protocol=pickle.HIGHEST_PROTOCOL
        )
        if len(blob) > MAX_FRAME_BYTES:
            raise FleetError(
                f"frame of {len(blob)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte bound"
            )
        frame = _HEADER.pack(len(blob)) + blob
        with self._send_lock:
            if self._closed:
                raise ConnectionClosed("connection already closed locally")
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                raise ConnectionClosed(str(exc)) from exc

    def recv(self) -> tuple[str, int, object]:
        with self._recv_lock:
            header = self._recv_exact(_HEADER.size)
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise FleetError(
                    f"peer announced a {length}-byte frame (stream desync?)"
                )
            blob = self._recv_exact(length)
        kind, req_id, payload = pickle.loads(blob)
        return kind, req_id, payload

    def _recv_exact(self, nbytes: int) -> bytes:
        chunks: list[bytes] = []
        while nbytes:
            try:
                chunk = self._sock.recv(min(nbytes, 1 << 20))
            except OSError as exc:
                raise ConnectionClosed(str(exc)) from exc
            if not chunk:
                raise ConnectionClosed("peer closed the connection")
            chunks.append(chunk)
            nbytes -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
