"""Tunables of the multi-process serving fleet.

Defaults target the paper's deployment shape: a handful of estimator
processes behind one router, millisecond-scale serving deadlines enforced
*inside* each worker (its :class:`~repro.serving.core.EstimationCore`
degrades to the traditional estimator on its own), and a router whose
hedging exists to survive *process* failures -- a worker that is dead,
wedged, or unreachable -- rather than slow models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of :class:`repro.fleet.router.FleetRouter`."""

    #: estimator worker processes (each owns a consistent-hash shard)
    n_workers: int = 2
    #: virtual nodes per worker on the consistent-hash ring; more nodes
    #: smooth the shard balance, at O(n_workers * virtual_nodes) ring size
    virtual_nodes: int = 64
    #: slack fraction of the serving deadline the router grants on top of
    #: it before hedging: a worker answers within its own deadline (it
    #: degrades internally), so waiting ``deadline * (1 + hedge_fraction)``
    #: means a hedge fires only on transport/process trouble
    hedge_fraction: float = 0.5
    #: router-side wait before hedging when the serving deadline is None
    #: (the worker never self-degrades on time, so the router needs its
    #: own absolute budget), milliseconds
    hedge_timeout_ms: float = 250.0
    #: seconds between supervisor heartbeat sweeps
    heartbeat_interval_s: float = 0.25
    #: per-ping reply budget, seconds
    heartbeat_timeout_s: float = 1.0
    #: consecutive missed heartbeats before the worker is declared wedged
    #: and hard-restarted
    heartbeat_misses: int = 4
    #: consecutive request failures before the circuit opens and the
    #: worker is killed for a supervised restart
    failure_threshold: int = 3
    #: lifetime restart budget per worker; beyond it the shard serves from
    #: the router's local fallback permanently
    max_restarts: int = 5
    #: request-handler threads inside each worker (concurrent IPC requests
    #: feeding the worker's own EstimationCore pool)
    handler_threads: int = 4
    #: budget for every worker to warm-start from the store and report
    #: ready, seconds
    start_timeout_s: float = 120.0
    #: default budget for :meth:`FleetRouter.close`, seconds
    shutdown_timeout_s: float = 10.0
    #: multiprocessing start method; ``fork`` shares the parent's dataset
    #: bundle copy-on-write instead of pickling it per worker
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise SchemaError("n_workers must be >= 1")
        if self.virtual_nodes < 1:
            raise SchemaError("virtual_nodes must be >= 1")
        if self.hedge_fraction < 0:
            raise SchemaError("hedge_fraction must be >= 0")
        if self.hedge_timeout_ms <= 0:
            raise SchemaError("hedge_timeout_ms must be positive")
        if self.heartbeat_interval_s <= 0:
            raise SchemaError("heartbeat_interval_s must be positive")
        if self.heartbeat_timeout_s <= 0:
            raise SchemaError("heartbeat_timeout_s must be positive")
        if self.heartbeat_misses < 1:
            raise SchemaError("heartbeat_misses must be >= 1")
        if self.failure_threshold < 1:
            raise SchemaError("failure_threshold must be >= 1")
        if self.max_restarts < 0:
            raise SchemaError("max_restarts must be >= 0")
        if self.handler_threads < 1:
            raise SchemaError("handler_threads must be >= 1")
        if self.start_timeout_s <= 0:
            raise SchemaError("start_timeout_s must be positive")
        if self.shutdown_timeout_s <= 0:
            raise SchemaError("shutdown_timeout_s must be positive")
