"""repro.stream: streaming workload + drift simulator closing the forge loop.

A deterministic event-loop harness that replays a query arrival process and
a data-drift ingest schedule against one :class:`~repro.core.bytecard.ByteCard`
on simulated time, so the whole paper loop -- serving, runtime feedback,
monitor gating, forge retrains, hot swap -- runs end to end inside one
process with a reproducible timeline.
"""

from repro.stream.arrivals import (
    DEFAULT_CLASSES,
    ArrivalConfig,
    ArrivalProcess,
    FrequencyClass,
    QueryEvent,
)
from repro.stream.clock import SYSTEM_CLOCK, Clock, SimClock, SystemClock
from repro.stream.driver import (
    SoakTimeline,
    StreamConfig,
    StreamDriver,
    WindowStats,
    merge_events,
)
from repro.stream.ingest import (
    DRIFT_KINDS,
    DriftProbe,
    DriftRecipe,
    IngestEvent,
    IngestProcess,
    apply_ingest,
)

__all__ = [
    "DEFAULT_CLASSES",
    "DRIFT_KINDS",
    "SYSTEM_CLOCK",
    "ArrivalConfig",
    "ArrivalProcess",
    "Clock",
    "DriftProbe",
    "DriftRecipe",
    "FrequencyClass",
    "IngestEvent",
    "IngestProcess",
    "QueryEvent",
    "SimClock",
    "SoakTimeline",
    "StreamConfig",
    "StreamDriver",
    "SystemClock",
    "WindowStats",
    "apply_ingest",
    "merge_events",
]
