"""The simulated clock driving deterministic streaming runs.

:class:`SimClock` implements the :class:`repro.utils.clock.Clock` protocol
with *virtual* time: ``now()`` only moves when the owner calls
:meth:`advance` / :meth:`advance_to`.  The soak driver advances it to each
event's timestamp, so two runs with the same seed see bit-identical
timelines regardless of host speed -- and the forge scheduler's job
timestamps, backoff deadlines, and drain budgets all read the same virtual
axis when constructed with ``clock=SimClock(...)``.

Threads cannot sleep virtual time away (it would never pass), so
``wait_timeout`` translates every bounded wait into a short *real* poll
interval: waiters wake, re-read ``now()``, and go back to waiting until
the driver has advanced far enough.  That keeps ``Condition``-based code
(the forge workers) correct under both clocks without special cases.
"""

from __future__ import annotations

import threading

from repro.utils.clock import SYSTEM_CLOCK, Clock, SystemClock

__all__ = ["Clock", "SystemClock", "SYSTEM_CLOCK", "SimClock"]


class SimClock:
    """A thread-safe, manually advanced virtual clock."""

    def __init__(self, start: float = 0.0, poll_s: float = 0.002):
        if poll_s <= 0:
            raise ValueError(f"poll_s must be positive, got {poll_s}")
        self._now = float(start)
        self._lock = threading.Lock()
        #: real-seconds granularity at which blocked threads re-check time
        self.poll_s = float(poll_s)

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, delta_s: float) -> float:
        """Move time forward by ``delta_s`` seconds; returns the new time."""
        if delta_s < 0:
            raise ValueError(f"cannot advance time backwards by {delta_s}")
        with self._lock:
            self._now += float(delta_s)
            return self._now

    def advance_to(self, timestamp_s: float) -> float:
        """Move time forward to ``timestamp_s`` (no-op if already past)."""
        with self._lock:
            self._now = max(self._now, float(timestamp_s))
            return self._now

    def wait_timeout(self, delay: float | None) -> float | None:
        # Virtual seconds never elapse while a thread sleeps, so a bounded
        # wait becomes a real-time poll; an unbounded wait (``None``) stays
        # unbounded -- those waiters are woken by notify, not by time.
        if delay is None:
            return None
        return self.poll_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self.now():.3f})"
