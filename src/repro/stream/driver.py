"""The soak driver: replay query + ingest events against a live ByteCard.

:class:`StreamDriver` merges the pre-generated arrival and ingest streams
into one virtual-time event loop and plays it against the full stack:

* queries are served through the estimation service (cache, micro-batch,
  admission, deadline fallback) *and* executed through an
  :class:`~repro.engine.session.EngineSession` with feedback capture on,
  so every event both measures the served estimate's Q-Error against the
  actual result and deposits runtime evidence in the feedback log;
* ingest events mutate the catalog in place through the storage mutation
  API (:meth:`Table.append_rows` / :meth:`Table.delete_where`), with zone
  maps invalidated by partition generation;
* at every window boundary the driver asks the monitor to re-assess each
  table *from runtime evidence alone*; a failed verdict gates the table
  and -- when a :class:`~repro.forge.ForgeManager` is attached -- submits
  a prioritized background retrain that publishes mid-traffic;
* the per-window timeline (Q-Error quantiles, P99 latency, cache hit
  rate, fallback shares, detections, retrain landings, stalls) is read
  from the stack's own :mod:`repro.obs` surfaces
  (:class:`~repro.serving.stats.ServiceStats` deltas and forge counters).

The driver advances its :class:`~repro.stream.clock.SimClock` to each
event's timestamp, so the timeline is deterministic in the seeds; only
the *landing window* of a retrain depends on real thread scheduling
(training runs on real background workers -- that is the point).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Sequence

import numpy as np

from repro.engine import EngineConfig, EngineSession
from repro.errors import SchemaError
from repro.serving.config import ServingConfig
from repro.stream.arrivals import ArrivalProcess, QueryEvent
from repro.stream.clock import SimClock
from repro.stream.ingest import IngestEvent, IngestProcess, apply_ingest

__all__ = ["StreamConfig", "WindowStats", "SoakTimeline", "StreamDriver"]


@dataclass(frozen=True)
class StreamConfig:
    """Tunables of the soak loop."""

    #: timeline bucket width, in virtual seconds
    window_s: float = 30.0
    #: a window "stalls" when (admission rejections + deadline timeouts)
    #: exceed this share of its requests
    stall_fallback_budget: float = 0.1
    #: re-assess tables from feedback evidence at every window boundary
    reassess_each_window: bool = True
    #: extra windows of traffic replayed after the event horizon so
    #: post-retrain recovery is measured on live queries
    recovery_windows: int = 2
    #: real-seconds budget for draining in-flight retrains post-horizon
    drain_timeout_s: float = 120.0
    #: virtual seconds the clock is advanced per drain poll (lets simulated
    #: backoff deadlines expire while waiting on real training threads)
    drain_tick_s: float = 0.25

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise SchemaError("window_s must be positive")
        if self.stall_fallback_budget < 0:
            raise SchemaError("stall_fallback_budget must be >= 0")
        if self.recovery_windows < 0:
            raise SchemaError("recovery_windows must be >= 0")


@dataclass(frozen=True)
class WindowStats:
    """One timeline bucket of the soak run."""

    index: int
    t_start_s: float
    t_end_s: float
    #: "traffic" during the event horizon, "recovery" afterwards
    phase: str
    queries: int
    repeated: int
    probes: int
    ingest_events: int
    rows_appended: int
    rows_deleted: int
    qerror_p50: float
    qerror_p90: float
    qerror_max: float
    #: service-wide P99 over the recent latency window, milliseconds
    latency_p99_ms: float
    cache_hit_rate: float
    #: (rejections + timeouts) / requests within this window
    fallback_share: float
    rejected: int
    timeouts: int
    #: tables whose feedback re-assessment failed in this window
    detections: tuple[str, ...]
    #: background retrains that published during this window
    retrains_landed: int
    #: tables gated to the traditional estimator at window close
    gated_tables: tuple[str, ...]
    stalled: bool
    #: raw per-query Q-Errors (excluded from the JSON summary)
    qerrors: tuple[float, ...] = field(default=(), repr=False)

    def summary(self) -> dict:
        doc = asdict(self)
        doc.pop("qerrors")
        return doc


@dataclass
class SoakTimeline:
    """The driver's full record of one soak run."""

    windows: list[WindowStats] = field(default_factory=list)
    #: drift detections: {table, window, at_s, p90, error_mass}
    detections: list[dict] = field(default_factory=list)
    #: retrain landings: {window, at_s, count}
    landings: list[dict] = field(default_factory=list)
    #: True when every in-flight retrain finished within the drain budget
    drained: bool = True
    #: virtual time of the first ingest event (None: no ingest)
    first_drift_at_s: float | None = None

    # ------------------------------------------------------------------
    def baseline_p90(self) -> float | None:
        """P90 Q-Error over all queries in windows fully before the drift."""
        if self.first_drift_at_s is None:
            cutoff = float("inf")
        else:
            cutoff = self.first_drift_at_s
        sample = [
            q
            for w in self.windows
            if w.t_end_s <= cutoff
            for q in w.qerrors
        ]
        return float(np.quantile(sample, 0.9)) if sample else None

    def recovered_p90(self) -> float | None:
        """P90 Q-Error over the post-drain recovery windows."""
        sample = [
            q
            for w in self.windows
            if w.phase == "recovery"
            for q in w.qerrors
        ]
        return float(np.quantile(sample, 0.9)) if sample else None

    def stalled_windows(self) -> list[WindowStats]:
        return [w for w in self.windows if w.stalled]

    def detected_tables(self) -> set[str]:
        return {d["table"] for d in self.detections}

    def retrains_landed(self) -> int:
        return sum(entry["count"] for entry in self.landings)

    def as_dict(self) -> dict:
        return {
            "windows": [w.summary() for w in self.windows],
            "detections": self.detections,
            "landings": self.landings,
            "drained": self.drained,
            "first_drift_at_s": self.first_drift_at_s,
            "baseline_p90": self.baseline_p90(),
            "recovered_p90": self.recovered_p90(),
            "stalled_windows": [w.index for w in self.stalled_windows()],
        }


def merge_events(
    queries: Sequence[QueryEvent], ingests: Sequence[IngestEvent]
) -> tuple:
    """One timeline, ordered by timestamp; ingest wins ties.

    A mutation stamped at ``t`` is visible to every query stamped at ``t``,
    matching the "data lands, then analysts query it" reading of equal
    timestamps.
    """
    tagged = [(e.at_s, 0, e.seq, e) for e in ingests]
    tagged += [(e.at_s, 1, e.seq, e) for e in queries]
    tagged.sort(key=lambda item: item[:3])
    return tuple(item[3] for item in tagged)


class _Accumulator:
    """Mutable per-window tallies."""

    def __init__(self) -> None:
        self.qerrors: list[float] = []
        self.queries = 0
        self.repeated = 0
        self.probes = 0
        self.ingest_events = 0
        self.rows_appended = 0
        self.rows_deleted = 0


class StreamDriver:
    """Replay merged streams against ByteCard; record the window timeline."""

    def __init__(
        self,
        bytecard,
        arrivals: ArrivalProcess,
        ingest: IngestProcess | None = None,
        *,
        clock: SimClock | None = None,
        config: StreamConfig | None = None,
        manager=None,
        serving_config: ServingConfig | None = None,
        engine_config: EngineConfig | None = None,
    ):
        self.bytecard = bytecard
        self.arrivals = arrivals
        self.ingest = ingest
        self.clock = clock or SimClock()
        self.config = config or StreamConfig()
        self.manager = manager
        self.serving_config = serving_config or ServingConfig(
            deadline_ms=250.0
        )
        self.engine_config = engine_config or EngineConfig(
            enable_feedback=True
        )
        if not self.engine_config.enable_feedback:
            raise SchemaError(
                "the soak driver requires EngineConfig(enable_feedback=True)"
            )

    # ------------------------------------------------------------------
    def merged_events(self) -> tuple:
        ingest_events = self.ingest.events() if self.ingest else ()
        return merge_events(self.arrivals.events(), ingest_events)

    # ------------------------------------------------------------------
    def run(self) -> SoakTimeline:
        bytecard = self.bytecard
        feedback = bytecard.enable_feedback()
        service = bytecard.serve(
            config=self.serving_config, feedback=feedback
        )
        session = EngineSession(
            bytecard.bundle.catalog,
            service=service,
            config=self.engine_config,
            registry=bytecard.obs,
        )
        timeline = SoakTimeline()
        events = self.merged_events()
        ingest_events = self.ingest.events() if self.ingest else ()
        if ingest_events:
            timeline.first_drift_at_s = min(e.at_s for e in ingest_events)
        horizon = self.arrivals.config.horizon_s
        try:
            window_end = self._play(
                timeline, events, session, service,
                t_start=0.0, t_stop=horizon, phase="traffic",
            )
            timeline.drained = self._drain_forge()
            if self.config.recovery_windows > 0:
                duration = self.config.recovery_windows * self.config.window_s
                recovery = self.arrivals.extension(window_end, duration)
                self._play(
                    timeline, recovery, session, service,
                    t_start=window_end, t_stop=window_end + duration,
                    phase="recovery",
                )
        finally:
            service.close()
        return timeline

    # ------------------------------------------------------------------
    def _play(
        self, timeline, events, session, service, t_start, t_stop, phase
    ) -> float:
        """Replay ``events`` over ``[t_start, t_stop)``; returns the final
        window boundary (a multiple of ``window_s`` from ``t_start``)."""
        window_s = self.config.window_s
        window_start = t_start
        window_end = t_start + window_s
        acc = _Accumulator()
        prev_stats = service.stats()
        prev_landed = self._landed_total()
        for event in events:
            while event.at_s >= window_end:
                prev_stats, prev_landed = self._close_window(
                    timeline, acc, service, session,
                    window_start, window_end, phase,
                    prev_stats, prev_landed,
                )
                acc = _Accumulator()
                window_start = window_end
                window_end += window_s
            self.clock.advance_to(event.at_s)
            if isinstance(event, IngestEvent):
                summary = apply_ingest(session.catalog, event)
                acc.ingest_events += 1
                if summary["action"] == "append":
                    acc.rows_appended += summary["rows"]
                else:
                    acc.rows_deleted += summary["rows"]
            else:
                self._serve_query(event, session, service, acc)
        while window_start < t_stop:
            prev_stats, prev_landed = self._close_window(
                timeline, acc, service, session,
                window_start, window_end, phase,
                prev_stats, prev_landed,
            )
            acc = _Accumulator()
            window_start = window_end
            window_end += window_s
        self.clock.advance_to(window_start)
        return window_start

    def _serve_query(self, event, session, service, acc) -> None:
        estimate = service.estimate_count_detail(event.query)
        result = session.run(event.query)
        actual = max(1.0, float(result.result_rows))
        served = max(1.0, float(estimate.value))
        acc.qerrors.append(max(served / actual, actual / served))
        acc.queries += 1
        acc.repeated += 1 if event.repeated else 0
        acc.probes += 1 if event.probe else 0

    # ------------------------------------------------------------------
    def _close_window(
        self, timeline, acc, service, session,
        t_start, t_end, phase, prev_stats, prev_landed,
    ):
        detections: list[str] = []
        if self.config.reassess_each_window:
            detections = self._reassess(timeline, t_end)
        stats = service.stats()
        requests = stats.requests - prev_stats.requests
        rejected = stats.rejected - prev_stats.rejected
        timeouts = stats.timeouts - prev_stats.timeouts
        hits = stats.cache_hits - prev_stats.cache_hits
        misses = stats.cache_misses - prev_stats.cache_misses
        landed_total = self._landed_total()
        landed = landed_total - prev_landed
        if landed > 0:
            timeline.landings.append(
                {
                    "window": len(timeline.windows),
                    "at_s": t_end,
                    "count": landed,
                }
            )
        fallback_share = (
            (rejected + timeouts) / requests if requests > 0 else 0.0
        )
        qerrors = acc.qerrors
        window = WindowStats(
            index=len(timeline.windows),
            t_start_s=t_start,
            t_end_s=t_end,
            phase=phase,
            queries=acc.queries,
            repeated=acc.repeated,
            probes=acc.probes,
            ingest_events=acc.ingest_events,
            rows_appended=acc.rows_appended,
            rows_deleted=acc.rows_deleted,
            qerror_p50=float(np.quantile(qerrors, 0.5)) if qerrors else 1.0,
            qerror_p90=float(np.quantile(qerrors, 0.9)) if qerrors else 1.0,
            qerror_max=float(max(qerrors)) if qerrors else 1.0,
            latency_p99_ms=stats.p99_latency * 1e3,
            cache_hit_rate=(
                hits / (hits + misses) if hits + misses > 0 else 0.0
            ),
            fallback_share=fallback_share,
            rejected=rejected,
            timeouts=timeouts,
            detections=tuple(detections),
            retrains_landed=landed,
            gated_tables=tuple(sorted(self.bytecard.fallback_tables)),
            stalled=(
                requests > 0
                and fallback_share > self.config.stall_fallback_budget
            ),
            qerrors=tuple(qerrors),
        )
        timeline.windows.append(window)
        return stats, landed_total

    def _reassess(self, timeline, at_s) -> list[str]:
        """Ask the monitor for a runtime-evidence verdict per table."""
        log = self.bytecard.feedback_log
        if log is None:
            return []
        tables = sorted(
            {
                record.table_scope[0]
                for record in log.snapshot()
                if len(record.table_scope) == 1
            }
        )
        failed = []
        for table in tables:
            report = self.bytecard.reassess_from_feedback(table)
            if report is not None and report.passed is False:
                failed.append(table)
                timeline.detections.append(
                    {
                        "table": table,
                        "window": len(timeline.windows),
                        "at_s": at_s,
                        "p90": report.p90,
                        "error_mass": report.error_mass,
                    }
                )
        return failed

    # ------------------------------------------------------------------
    def _landed_total(self) -> float:
        try:
            return self.bytecard.obs.counter(
                "forge_jobs_succeeded_total", kind="bn"
            ).value
        except Exception:
            return 0.0

    def _drain_forge(self) -> bool:
        """Wait (real time) for in-flight retrains, ticking virtual time.

        Training runs on real threads, but their retry/backoff deadlines
        live on the simulated clock -- each poll advances it a tick so a
        failed attempt's backoff can expire while we wait.
        """
        if self.manager is None:
            return True
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            if self.manager.drain(timeout=0.0):
                return True
            self.clock.advance(self.config.drain_tick_s)
            time.sleep(0.01)
        return self.manager.drain(timeout=0.0)
