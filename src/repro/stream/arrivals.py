"""Timestamped query arrivals: frequency classes, diurnal bursts, freshness.

Real warehouse traffic is dominated by *repeated templates* whose
frequencies differ by orders of magnitude and drift over the day, with a
long tail of ad-hoc variants (Breadbox; SWIRL's varying-frequency query
classes).  :class:`ArrivalProcess` reproduces that texture on top of the
existing :mod:`repro.workloads` templates:

* every template is assigned to a **frequency class** (hot/warm/cold by
  default); repeated arrivals replay templates proportionally to their
  class weight, so a handful of templates carries most of the traffic;
* arrival times follow a **non-homogeneous Poisson process** whose rate
  swings sinusoidally over a compressed "day" (diurnal bursts), sampled
  by thinning;
* a configurable share of arrivals is **unique**: a template re-anchored
  with fresh literals drawn from per-(table, column) value pools captured
  at construction time;
* after a drift recipe lands, unique arrivals on the drifted table start
  **chasing fresh data**: they become probe queries over the newly
  ingested value region (analysts query recent data), which is what
  surfaces a stale model's misestimates to the feedback loop.

Everything is pre-generated at construction from a seed-derived RNG, so
the event timeline is bit-identical across runs -- the determinism the
soak driver's acceptance tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.errors import SchemaError
from repro.sql.query import CardQuery, PredicateOp, TablePredicate
from repro.storage.catalog import Catalog
from repro.stream.ingest import DriftProbe
from repro.utils.rng import derive_rng
from repro.workloads.generator import Workload

__all__ = ["FrequencyClass", "ArrivalConfig", "QueryEvent", "ArrivalProcess"]

#: values kept per (table, column) pool for re-anchoring unique queries
POOL_SIZE = 256


@dataclass(frozen=True)
class FrequencyClass:
    """One query-frequency band; ``weight`` is its share of repeated traffic."""

    name: str
    weight: float


#: default bands: a few hot templates dominate, a long cold tail remains
DEFAULT_CLASSES = (
    FrequencyClass("hot", 0.6),
    FrequencyClass("warm", 0.3),
    FrequencyClass("cold", 0.1),
)


@dataclass(frozen=True)
class ArrivalConfig:
    """Shape of the simulated query stream."""

    #: length of the simulated stream, in virtual seconds
    horizon_s: float = 600.0
    #: mean arrival rate at the diurnal midpoint, queries per virtual second
    base_qps: float = 2.0
    #: diurnal modulation depth in [0, 1): rate swings base*(1 +/- amplitude)
    burst_amplitude: float = 0.6
    #: period of one compressed "day", in virtual seconds
    day_s: float = 240.0
    #: share of arrivals that replay a template verbatim (the rest are
    #: unique re-anchored variants or, post-drift, fresh-data probes)
    repeat_fraction: float = 0.7
    #: post-drift share of *unique* arrivals that probe the drifted region
    probe_fraction: float = 0.5
    frequency_classes: tuple[FrequencyClass, ...] = DEFAULT_CLASSES
    seed: int = 17

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise SchemaError("horizon_s must be positive")
        if self.base_qps <= 0:
            raise SchemaError("base_qps must be positive")
        if not 0 <= self.burst_amplitude < 1:
            raise SchemaError("burst_amplitude must be in [0, 1)")
        if self.day_s <= 0:
            raise SchemaError("day_s must be positive")
        if not 0 <= self.repeat_fraction <= 1:
            raise SchemaError("repeat_fraction must be in [0, 1]")
        if not 0 <= self.probe_fraction <= 1:
            raise SchemaError("probe_fraction must be in [0, 1]")
        if not self.frequency_classes:
            raise SchemaError("at least one frequency class is required")


@dataclass(frozen=True)
class QueryEvent:
    """One timestamped query arrival."""

    at_s: float
    seq: int
    query: CardQuery
    #: name of the template this arrival derives from ("" for probes)
    template: str
    #: verbatim template replay (False: unique variant or probe)
    repeated: bool
    #: True when this arrival probes a freshly drifted value region
    probe: bool = False

    def key(self) -> tuple:
        """Stable comparison key for determinism assertions."""
        return (self.at_s, self.seq, self.query.name, str(self.query))


class ArrivalProcess:
    """Pre-generated, deterministic stream of :class:`QueryEvent`."""

    def __init__(
        self,
        catalog: Catalog,
        workload: Workload,
        config: ArrivalConfig | None = None,
        probes: Sequence[DriftProbe] = (),
    ):
        if not workload.queries:
            raise SchemaError("arrival process needs a non-empty workload")
        self.config = config or ArrivalConfig()
        self.templates: tuple[CardQuery, ...] = tuple(workload.queries)
        self.probes = tuple(sorted(probes, key=lambda p: p.at_s))
        rng = derive_rng(self.config.seed, "stream", "arrivals")
        self._class_of, self._weights = self._assign_classes(rng)
        self._pools = self._capture_pools(catalog)
        self._events = self._generate(
            rng, start_s=0.0, duration_s=self.config.horizon_s, seq_base=0
        )

    # ------------------------------------------------------------------
    def events(self) -> tuple[QueryEvent, ...]:
        return self._events

    def extension(self, start_s: float, duration_s: float) -> tuple[QueryEvent, ...]:
        """More arrivals for ``[start_s, start_s + duration_s)``.

        Deterministic in ``(seed, start_s, duration_s)`` and independent of
        how many times it is called -- the driver uses it for post-drain
        recovery windows.
        """
        rng = derive_rng(
            self.config.seed, "stream", "arrivals", f"ext@{start_s:.3f}"
        )
        return self._generate(
            rng,
            start_s=start_s,
            duration_s=duration_s,
            seq_base=len(self._events),
        )

    def template_class(self, template_name: str) -> str:
        """Frequency-class name a template was assigned to."""
        return self._class_of[template_name]

    # ------------------------------------------------------------------
    def _assign_classes(
        self, rng: np.random.Generator
    ) -> tuple[dict[str, str], np.ndarray]:
        """Partition templates into frequency classes; per-template weights."""
        classes = self.config.frequency_classes
        order = rng.permutation(len(self.templates))
        chunks = np.array_split(order, len(classes))
        class_of: dict[str, str] = {}
        weights = np.zeros(len(self.templates))
        for cls, chunk in zip(classes, chunks):
            for index in chunk:
                class_of[self.templates[int(index)].name] = cls.name
                weights[int(index)] = cls.weight / max(1, len(chunk))
        total = weights.sum()
        if total <= 0:
            raise SchemaError("frequency class weights must not all be zero")
        return class_of, weights / total

    def _capture_pools(self, catalog: Catalog) -> dict[tuple[str, str], np.ndarray]:
        """Literal pools for unique-query re-anchoring, captured at t0."""
        pools: dict[tuple[str, str], np.ndarray] = {}
        for template in self.templates:
            for pred in template.all_predicates():
                key = (pred.table, pred.column)
                if key in pools:
                    continue
                values = catalog.table(pred.table).column(pred.column).values
                step = max(1, len(values) // POOL_SIZE)
                pools[key] = np.sort(values[::step].astype(np.float64))[:POOL_SIZE]
        return pools

    def _generate(
        self,
        rng: np.random.Generator,
        start_s: float,
        duration_s: float,
        seq_base: int,
    ) -> tuple[QueryEvent, ...]:
        config = self.config
        peak_rate = config.base_qps * (1.0 + config.burst_amplitude)
        events: list[QueryEvent] = []
        t = start_s
        seq = seq_base
        while True:
            # Thinning: propose at the peak rate, accept with lambda(t)/peak.
            t += rng.exponential(1.0 / peak_rate)
            if t >= start_s + duration_s:
                break
            rate = config.base_qps * (
                1.0
                + config.burst_amplitude * np.sin(2.0 * np.pi * t / config.day_s)
            )
            if rng.random() >= rate / peak_rate:
                continue
            events.append(self._arrival(rng, at_s=float(t), seq=seq))
            seq += 1
        return tuple(events)

    def _arrival(self, rng: np.random.Generator, at_s: float, seq: int) -> QueryEvent:
        index = int(rng.choice(len(self.templates), p=self._weights))
        template = self.templates[index]
        if rng.random() < self.config.repeat_fraction:
            return QueryEvent(
                at_s=at_s, seq=seq, query=template,
                template=template.name, repeated=True,
            )
        active = [p for p in self.probes if p.at_s <= at_s]
        if active and rng.random() < self.config.probe_fraction:
            probe = active[int(rng.choice(len(active)))]
            return QueryEvent(
                at_s=at_s,
                seq=seq,
                query=probe.query(name=f"probe:{probe.table}.{probe.column}"),
                template="",
                repeated=False,
                probe=True,
            )
        return QueryEvent(
            at_s=at_s,
            seq=seq,
            query=self._unique_variant(rng, template, seq),
            template=template.name,
            repeated=False,
        )

    def _unique_variant(
        self, rng: np.random.Generator, template: CardQuery, seq: int
    ) -> CardQuery:
        """Re-anchor the template's AND predicates with fresh literals."""
        predicates = tuple(
            self._reanchor(rng, pred) for pred in template.predicates
        )
        return replace(
            template, predicates=predicates, name=f"{template.name}~u{seq}"
        )

    def _reanchor(
        self, rng: np.random.Generator, pred: TablePredicate
    ) -> TablePredicate:
        pool = self._pools[(pred.table, pred.column)]
        if pred.op is PredicateOp.BETWEEN:
            low, high = np.sort(rng.choice(pool, size=2))
            return replace(pred, value=(float(low), float(high)))
        if pred.op is PredicateOp.IN:
            width = min(len(pred.value), len(pool))  # type: ignore[arg-type]
            picks = rng.choice(pool, size=width, replace=False)
            return replace(
                pred, value=tuple(sorted(float(v) for v in set(picks)))
            )
        return TablePredicate(
            pred.table, pred.column, pred.op, float(rng.choice(pool))
        )
