"""Data-drift ingestion: recipes compiled into deterministic mutation events.

A :class:`DriftRecipe` declares *what* changes and *when* -- which table and
column, the kind of drift (domain shift, skew flip, NDV explosion, or a bulk
delete), how much data moves, and over how many batches.  At construction
time :class:`IngestProcess` compiles every recipe against the *t0* catalog
into fully materialized :class:`IngestEvent` objects: appended batches carry
their row arrays, deletes carry their predicates.  Nothing is drawn from the
RNG at apply time, so the mutation stream is bit-identical across runs with
the same seed -- and independent of how the interleaved queries execute.

Drift kinds
-----------
``shift``
    Bootstrap-sampled rows whose target column moves past the trained
    domain by ``magnitude`` domain-widths (NeuroCard's data-update
    degradation scenario: new values the stale model has never binned).
``skew``
    Sampled rows whose target column is re-drawn Zipf-distributed over
    the t0 values ranked coldest-first, flipping which values are hot.
``ndv``
    Sampled rows whose target column is re-drawn uniformly over a domain
    ``magnitude`` times wider than t0, inflating the distinct count.
``delete``
    Tombstone-compacting bulk delete of roughly ``fraction`` of the rows
    (the lowest ``fraction`` quantile of the target column).

Each recipe also yields a :class:`DriftProbe`: a single-table predicate
over the freshly drifted value region.  The arrival process turns probes
into "analysts querying recent data" traffic, which is what drags the
stale model's misestimates into the feedback log.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.sql.query import CardQuery, PredicateOp, TablePredicate
from repro.storage.catalog import Catalog
from repro.utils.rng import derive_rng

__all__ = [
    "DriftRecipe",
    "DriftProbe",
    "IngestEvent",
    "IngestProcess",
    "apply_ingest",
]

DRIFT_KINDS = ("shift", "skew", "ndv", "delete")


@dataclass(frozen=True)
class DriftRecipe:
    """One declared drift: what moves, when, and by how much."""

    table: str
    column: str
    #: one of :data:`DRIFT_KINDS`
    kind: str
    #: virtual time of the first batch
    at_s: float
    #: appended rows as a fraction of the table's t0 size (for ``delete``:
    #: the quantile of the column below which rows are removed)
    fraction: float = 0.5
    #: number of batches the drift is split into
    batches: int = 1
    #: batches are spread evenly over ``[at_s, at_s + spread_s]``
    spread_s: float = 0.0
    #: drift-kind-specific strength: domain-widths for ``shift``, Zipf
    #: exponent for ``skew``, domain multiplier for ``ndv``
    magnitude: float = 1.0
    #: columns given fresh, strictly increasing values in appended rows
    #: (primary keys), instead of bootstrap-sampled duplicates
    fresh_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise SchemaError(
                f"unknown drift kind {self.kind!r}; expected one of {DRIFT_KINDS}"
            )
        if not 0 < self.fraction <= 4.0:
            raise SchemaError("fraction must be in (0, 4]")
        if self.batches < 1:
            raise SchemaError("batches must be >= 1")
        if self.spread_s < 0 or self.at_s < 0:
            raise SchemaError("at_s and spread_s must be non-negative")
        if self.magnitude <= 0:
            raise SchemaError("magnitude must be positive")

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.table}.{self.column}@{self.at_s:g}"


@dataclass(frozen=True)
class DriftProbe:
    """A fresh-data predicate the arrival process queries after a drift."""

    table: str
    column: str
    #: virtual time from which the probe is live (the drift's first batch)
    at_s: float
    predicate: TablePredicate

    def query(self, name: str = "") -> CardQuery:
        return CardQuery(
            tables=(self.table,),
            predicates=(self.predicate,),
            name=name or f"probe:{self.table}.{self.column}",
        )


@dataclass(frozen=True)
class IngestEvent:
    """One materialized mutation: an append batch or a bulk delete."""

    at_s: float
    seq: int
    table: str
    #: ``"append"`` or ``"delete"``
    action: str
    #: originating recipe label (for the timeline)
    recipe: str
    #: appended column arrays (``action == "append"``)
    arrays: Mapping[str, np.ndarray] | None = None
    #: delete predicates (``action == "delete"``)
    predicates: tuple[TablePredicate, ...] = ()

    @property
    def num_rows(self) -> int:
        if self.arrays is None:
            return 0
        return len(next(iter(self.arrays.values())))

    def key(self) -> tuple:
        """Stable comparison key (hashed payload) for determinism tests."""
        if self.arrays is not None:
            payload = tuple(
                (
                    name,
                    hashlib.sha256(
                        np.ascontiguousarray(values).tobytes()
                    ).hexdigest(),
                )
                for name, values in sorted(self.arrays.items())
            )
        else:
            payload = tuple(str(p) for p in self.predicates)
        return (self.at_s, self.seq, self.table, self.action, payload)


def apply_ingest(catalog: Catalog, event: IngestEvent) -> dict:
    """Apply one event to the live catalog; returns a mutation summary."""
    table = catalog.table(event.table)
    if event.action == "append":
        assert event.arrays is not None
        appended = table.append_rows(event.arrays)
        return {
            "action": "append",
            "table": event.table,
            "rows": appended,
            "partitions": table.num_partitions,
        }
    if event.action == "delete":
        deleted = table.delete_where(*event.predicates)
        return {
            "action": "delete",
            "table": event.table,
            "rows": deleted,
            "partitions": table.num_partitions,
        }
    raise SchemaError(f"unknown ingest action {event.action!r}")


def _zipf_weights(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()


class IngestProcess:
    """Recipes compiled into a deterministic, pre-materialized event stream."""

    def __init__(
        self,
        catalog: Catalog,
        recipes: Sequence[DriftRecipe],
        seed: int = 29,
    ):
        self.recipes = tuple(recipes)
        self.seed = seed
        events: list[IngestEvent] = []
        probes: list[DriftProbe] = []
        for recipe in self.recipes:
            compiled, probe = self._compile(catalog, recipe)
            events.extend(compiled)
            probes.append(probe)
        events.sort(key=lambda e: (e.at_s, e.table, e.recipe))
        self._events = tuple(
            IngestEvent(
                at_s=e.at_s, seq=i, table=e.table, action=e.action,
                recipe=e.recipe, arrays=e.arrays, predicates=e.predicates,
            )
            for i, e in enumerate(events)
        )
        self._probes = tuple(sorted(probes, key=lambda p: p.at_s))

    def events(self) -> tuple[IngestEvent, ...]:
        return self._events

    def probes(self) -> tuple[DriftProbe, ...]:
        return self._probes

    # ------------------------------------------------------------------
    def _compile(
        self, catalog: Catalog, recipe: DriftRecipe
    ) -> tuple[list[IngestEvent], DriftProbe]:
        table = catalog.table(recipe.table)
        values = table.column(recipe.column).values
        if values.size == 0:
            raise SchemaError(f"cannot drift empty table {recipe.table!r}")
        t0 = {
            name: table.column(name).values.copy()
            for name in table.column_names()
        }
        lo, hi = float(values.min()), float(values.max())
        width = hi - lo + 1.0

        if recipe.kind == "delete":
            threshold = float(np.quantile(values, recipe.fraction))
            predicate = TablePredicate(
                recipe.table, recipe.column, PredicateOp.LE, threshold
            )
            event = IngestEvent(
                at_s=recipe.at_s, seq=0, table=recipe.table, action="delete",
                recipe=recipe.label, predicates=(predicate,),
            )
            # Post-delete, the stale model still believes the deleted mass
            # exists: probing below the threshold surfaces overestimates.
            return [event], DriftProbe(
                recipe.table, recipe.column, recipe.at_s, predicate
            )

        # The skew drift flips the hot set: values are re-ranked by
        # *ascending* t0 frequency, so the Zipf head lands on what used to
        # be the coldest value -- the flip a frequency-trained model is
        # maximally wrong about.  The ordering is fixed per recipe (not per
        # batch) so every batch piles mass onto the same flipped hot set
        # and the probe predicate can target the new hot value exactly.
        skew_uniques: np.ndarray | None = None
        if recipe.kind == "skew":
            uniques, counts = np.unique(values, return_counts=True)
            skew_uniques = uniques[np.lexsort((uniques, counts))]

        total_rows = max(
            recipe.batches, int(round(recipe.fraction * table.num_rows))
        )
        per_batch = [
            total_rows // recipe.batches
            + (1 if b < total_rows % recipe.batches else 0)
            for b in range(recipe.batches)
        ]
        fresh_base = {
            name: float(t0[name].max()) + 1.0 for name in recipe.fresh_columns
        }
        events = []
        for batch_index, batch_rows in enumerate(per_batch):
            rng = derive_rng(
                self.seed, "stream", "ingest",
                recipe.label, str(batch_index),
            )
            picks = rng.choice(table.num_rows, size=batch_rows, replace=True)
            arrays = {name: t0[name][picks].copy() for name in t0}
            arrays[recipe.column] = self._drift_values(
                rng, recipe, arrays[recipe.column], lo, width, skew_uniques
            )
            for name in recipe.fresh_columns:
                if name == recipe.column:
                    continue
                start = fresh_base[name]
                arrays[name] = (
                    start + np.arange(batch_rows, dtype=np.float64)
                ).astype(t0[name].dtype)
                fresh_base[name] = start + batch_rows
            step = 0.0 if recipe.batches == 1 else (
                recipe.spread_s / (recipe.batches - 1)
            )
            events.append(
                IngestEvent(
                    at_s=recipe.at_s + batch_index * step, seq=0,
                    table=recipe.table, action="append",
                    recipe=recipe.label, arrays=arrays,
                )
            )
        return events, self._probe_for(recipe, lo, hi, width, skew_uniques)

    def _drift_values(
        self,
        rng: np.random.Generator,
        recipe: DriftRecipe,
        sampled: np.ndarray,
        lo: float,
        width: float,
        skew_uniques: np.ndarray | None,
    ) -> np.ndarray:
        dtype = sampled.dtype
        if recipe.kind == "shift":
            return (sampled + recipe.magnitude * width).astype(dtype)
        if recipe.kind == "skew":
            assert skew_uniques is not None
            weights = _zipf_weights(len(skew_uniques), recipe.magnitude)
            return rng.choice(
                skew_uniques, size=len(sampled), p=weights
            ).astype(dtype)
        if recipe.kind == "ndv":
            span = max(1.0, width * recipe.magnitude)
            if np.issubdtype(dtype, np.integer):
                return (lo + rng.integers(0, int(span), size=len(sampled))).astype(dtype)
            return (lo + rng.random(len(sampled)) * span).astype(dtype)
        raise SchemaError(f"unknown drift kind {recipe.kind!r}")

    def _probe_for(
        self,
        recipe: DriftRecipe,
        lo: float,
        hi: float,
        width: float,
        skew_uniques: np.ndarray | None,
    ) -> DriftProbe:
        if recipe.kind == "shift":
            predicate = TablePredicate(
                recipe.table, recipe.column, PredicateOp.GE,
                lo + recipe.magnitude * width,
            )
        elif recipe.kind == "skew":
            assert skew_uniques is not None
            predicate = TablePredicate(
                recipe.table, recipe.column, PredicateOp.EQ,
                float(skew_uniques[0]),
            )
        else:  # ndv: the widened domain extends past the t0 maximum
            predicate = TablePredicate(
                recipe.table, recipe.column, PredicateOp.GT, hi
            )
        return DriftProbe(recipe.table, recipe.column, recipe.at_s, predicate)
