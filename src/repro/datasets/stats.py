"""Synthetic STATS (Stack Exchange) with the STATS-CEB schema.

STATS (Han et al., "Cardinality Estimation in DBMS: A Comprehensive
Benchmark") is the stats.stackexchange.com dump: 8 tables joined around
``users`` and ``posts``.  Its value distributions are notoriously harder
than IMDB's (the paper attributes its biggest P99 win to this), which the
generator reproduces with stronger skew and stronger cross-column
correlations (votes/views/score all correlate with reputation and age).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import (
    DatasetBundle,
    cluster_rows,
    correlated_codes,
    dates_column,
    foreign_key,
    zipf_codes,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.rng import derive_rng

BASE_ROWS = {
    "users": 4000,
    "posts": 9000,
    "comments": 17000,
    "badges": 8000,
    "votes": 30000,
    "postHistory": 30000,
    "postLinks": 1100,
    "tags": 500,
}

_EPOCH_START = 14000  # ~2008 in days-since-1970, when Stack Exchange opened
_EPOCH_SPAN = 2500


def make_stats(seed: int = 43, scale: float = 1.0) -> DatasetBundle:
    """Generate the synthetic STATS bundle."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rows = {name: max(10, int(count * scale)) for name, count in BASE_ROWS.items()}
    catalog = Catalog()

    # -- users -----------------------------------------------------------
    rng = derive_rng(seed, "stats", "users")
    n_users = rows["users"]
    user_id = np.arange(n_users, dtype=np.int64)
    reputation_bucket = zipf_codes(rng, n_users, domain=50, skew=1.6)
    reputation = (reputation_bucket + 1) ** 2 + rng.integers(0, 5, n_users)
    # Up/Down votes strongly correlate with reputation (active users do both).
    upvotes = correlated_codes(rng, reputation_bucket, domain=200, strength=0.85, skew=1.4)
    downvotes = correlated_codes(rng, upvotes // 4, domain=60, strength=0.8, skew=1.6)
    views = correlated_codes(rng, reputation_bucket, domain=500, strength=0.7, skew=1.5)
    creation = dates_column(rng, n_users, _EPOCH_START, _EPOCH_SPAN)
    catalog.register(
        Table.from_arrays(
            "users",
            cluster_rows({
                "Id": user_id,
                "Reputation": reputation.astype(np.int64),
                "UpVotes": upvotes,
                "DownVotes": downvotes,
                "Views": views,
                "CreationDate": creation,
            }, order_by=["CreationDate"]),
        )
    )

    # -- posts -----------------------------------------------------------
    rng = derive_rng(seed, "stats", "posts")
    n_posts = rows["posts"]
    post_id = np.arange(n_posts, dtype=np.int64)
    owner = foreign_key(rng, n_posts, n_users, skew=1.4)
    post_type = zipf_codes(rng, n_posts, domain=2, skew=0.3) + 1  # 1=question, 2=answer
    score = correlated_codes(rng, owner % 50, domain=80, strength=0.65, skew=1.7)
    view_count = correlated_codes(rng, score, domain=4000, strength=0.75, skew=1.5)
    answer_count = correlated_codes(rng, view_count // 200, domain=15, strength=0.7, skew=1.3)
    comment_count = correlated_codes(rng, score, domain=20, strength=0.6, skew=1.2)
    favorite_count = correlated_codes(rng, score, domain=40, strength=0.8, skew=1.9)
    post_creation = dates_column(rng, n_posts, _EPOCH_START, _EPOCH_SPAN)
    catalog.register(
        Table.from_arrays(
            "posts",
            cluster_rows({
                "Id": post_id,
                "OwnerUserId": owner,
                "PostTypeId": post_type.astype(np.int64),
                "Score": score,
                "ViewCount": view_count,
                "AnswerCount": answer_count,
                "CommentCount": comment_count,
                "FavoriteCount": favorite_count,
                "CreationDate": post_creation,
            }, order_by=["PostTypeId", "CreationDate"]),
        )
    )

    # -- comments ----------------------------------------------------------
    rng = derive_rng(seed, "stats", "comments")
    n_comments = rows["comments"]
    c_post = foreign_key(rng, n_comments, n_posts, skew=1.5)
    c_user = foreign_key(rng, n_comments, n_users, skew=1.5)
    c_score = correlated_codes(rng, c_post % 40, domain=15, strength=0.55, skew=1.8)
    catalog.register(
        Table.from_arrays(
            "comments",
            cluster_rows({
                "Id": np.arange(n_comments, dtype=np.int64),
                "PostId": c_post,
                "UserId": c_user,
                "Score": c_score,
                "CreationDate": dates_column(rng, n_comments, _EPOCH_START, _EPOCH_SPAN),
            }, order_by=["CreationDate"]),
        )
    )

    # -- badges ------------------------------------------------------------
    rng = derive_rng(seed, "stats", "badges")
    n_badges = rows["badges"]
    catalog.register(
        Table.from_arrays(
            "badges",
            cluster_rows({
                "Id": np.arange(n_badges, dtype=np.int64),
                "UserId": foreign_key(rng, n_badges, n_users, skew=1.3),
                "Date": dates_column(rng, n_badges, _EPOCH_START, _EPOCH_SPAN),
            }, order_by=["Date"]),
        )
    )

    # -- votes ---------------------------------------------------------------
    rng = derive_rng(seed, "stats", "votes")
    n_votes = rows["votes"]
    v_post = foreign_key(rng, n_votes, n_posts, skew=1.6)
    v_user = foreign_key(rng, n_votes, n_users, skew=1.4)
    vote_type = correlated_codes(rng, v_post % 10, domain=10, strength=0.5, skew=1.4) + 1
    bounty = zipf_codes(rng, n_votes, domain=11, skew=2.5) * 50
    catalog.register(
        Table.from_arrays(
            "votes",
            cluster_rows({
                "Id": np.arange(n_votes, dtype=np.int64),
                "PostId": v_post,
                "UserId": v_user,
                "VoteTypeId": vote_type.astype(np.int64),
                "BountyAmount": bounty.astype(np.int64),
                "CreationDate": dates_column(rng, n_votes, _EPOCH_START, _EPOCH_SPAN),
            }, order_by=["VoteTypeId", "CreationDate"]),
        )
    )

    # -- postHistory ----------------------------------------------------------
    rng = derive_rng(seed, "stats", "postHistory")
    n_hist = rows["postHistory"]
    h_post = foreign_key(rng, n_hist, n_posts, skew=1.4)
    h_user = foreign_key(rng, n_hist, n_users, skew=1.5)
    h_type = correlated_codes(rng, h_post % 8, domain=20, strength=0.5, skew=1.2) + 1
    catalog.register(
        Table.from_arrays(
            "postHistory",
            cluster_rows({
                "Id": np.arange(n_hist, dtype=np.int64),
                "PostId": h_post,
                "UserId": h_user,
                "PostHistoryTypeId": h_type.astype(np.int64),
                "CreationDate": dates_column(rng, n_hist, _EPOCH_START, _EPOCH_SPAN),
            }, order_by=["PostHistoryTypeId", "CreationDate"]),
        )
    )

    # -- postLinks ---------------------------------------------------------------
    rng = derive_rng(seed, "stats", "postLinks")
    n_links = rows["postLinks"]
    catalog.register(
        Table.from_arrays(
            "postLinks",
            cluster_rows({
                "Id": np.arange(n_links, dtype=np.int64),
                "PostId": foreign_key(rng, n_links, n_posts, skew=1.2),
                "RelatedPostId": foreign_key(rng, n_links, n_posts, skew=1.2),
                "LinkTypeId": zipf_codes(rng, n_links, domain=2, skew=0.8) + 1,
                "CreationDate": dates_column(rng, n_links, _EPOCH_START, _EPOCH_SPAN),
            }, order_by=["LinkTypeId", "CreationDate"]),
        )
    )

    # -- tags ------------------------------------------------------------------
    rng = derive_rng(seed, "stats", "tags")
    n_tags = rows["tags"]
    catalog.register(
        Table.from_arrays(
            "tags",
            cluster_rows({
                "Id": np.arange(n_tags, dtype=np.int64),
                "Count": zipf_codes(rng, n_tags, domain=2000, skew=1.3),
                "ExcerptPostId": foreign_key(rng, n_tags, n_posts, skew=1.0),
            }, order_by=["Count"]),
        )
    )

    # -- join schema (STATS-CEB's join graph) -------------------------------
    catalog.add_join_edge("users", "Id", "posts", "OwnerUserId")
    catalog.add_join_edge("posts", "Id", "comments", "PostId")
    catalog.add_join_edge("users", "Id", "comments", "UserId")
    catalog.add_join_edge("users", "Id", "badges", "UserId")
    catalog.add_join_edge("posts", "Id", "votes", "PostId")
    catalog.add_join_edge("users", "Id", "votes", "UserId")
    catalog.add_join_edge("posts", "Id", "postHistory", "PostId")
    catalog.add_join_edge("users", "Id", "postHistory", "UserId")
    catalog.add_join_edge("posts", "Id", "postLinks", "PostId")
    catalog.add_join_edge("posts", "Id", "tags", "ExcerptPostId")

    bundle = DatasetBundle(
        name="stats",
        catalog=catalog,
        primary_keys={"users": "Id", "posts": "Id"},
        foreign_keys={
            ("posts", "OwnerUserId"): "users",
            ("comments", "PostId"): "posts",
            ("comments", "UserId"): "users",
            ("badges", "UserId"): "users",
            ("votes", "PostId"): "posts",
            ("votes", "UserId"): "users",
            ("postHistory", "PostId"): "posts",
            ("postHistory", "UserId"): "users",
            ("postLinks", "PostId"): "posts",
            ("postLinks", "RelatedPostId"): "posts",
            ("tags", "ExcerptPostId"): "posts",
        },
        filter_columns={
            "users": ["Reputation", "UpVotes", "DownVotes", "Views", "CreationDate"],
            "posts": [
                "PostTypeId",
                "Score",
                "ViewCount",
                "AnswerCount",
                "CommentCount",
                "FavoriteCount",
                "CreationDate",
            ],
            "comments": ["Score", "CreationDate"],
            "badges": ["Date"],
            "votes": ["VoteTypeId", "BountyAmount", "CreationDate"],
            "postHistory": ["PostHistoryTypeId", "CreationDate"],
            "postLinks": ["LinkTypeId", "CreationDate"],
            "tags": ["Count"],
        },
        seed=seed,
        scale=scale,
    )
    bundle.validate_references()
    return bundle
