"""Synthetic dataset generators standing in for the paper's datasets.

The paper evaluates on IMDB (JOB-light schema), STATS (Stack Exchange
schema), and AEOLUS (an internal ByteDance ad-analytics workload).  Real IMDB
and STATS dumps are unavailable offline and AEOLUS is proprietary, so each
module generates a synthetic database with the same schema, the same join
graph, heavy Zipfian skew, cross-column correlations (which defeat
independence-assuming histograms), and skewed foreign-key fan-out (which
defeats the join-uniformity assumption).  See DESIGN.md's substitution table.
"""

from repro.datasets.base import DatasetBundle
from repro.datasets.imdb import make_imdb
from repro.datasets.stats import make_stats
from repro.datasets.aeolus import make_aeolus
from repro.datasets.scaling import scale_bundle

__all__ = [
    "DatasetBundle",
    "make_imdb",
    "make_stats",
    "make_aeolus",
    "scale_bundle",
]
