"""Synthetic AEOLUS: a ByteDance-style ad-analytics star schema.

AEOLUS is the paper's internal business dataset; only aggregate properties
are disclosed (five business tables, 200 online queries with 2-5-way joins
and 2-4 group-by keys, and columns with exceptionally high NDV that trip the
RBX estimator before calibration).  This generator reproduces those
properties with an advertising-placement schema modeled on the paper's
Figure 4 example: ``ads`` carries a ``target_platform -> content_type``
dependency, and the ``impressions`` fact table carries very-high-NDV session
and user-hash columns.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import (
    DatasetBundle,
    cluster_rows,
    correlated_codes,
    dates_column,
    foreign_key,
    high_ndv_column,
    zipf_codes,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.rng import derive_rng

BASE_ROWS = {
    "campaigns": 300,
    "ads": 3000,
    "impressions": 50000,
    "clicks": 12000,
    "conversions": 2500,
}

_DAY0 = 19700  # ~2023 in days-since-1970


def make_aeolus(seed: int = 44, scale: float = 1.0) -> DatasetBundle:
    """Generate the synthetic AEOLUS bundle."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rows = {name: max(10, int(count * scale)) for name, count in BASE_ROWS.items()}
    catalog = Catalog()

    # -- campaigns --------------------------------------------------------
    rng = derive_rng(seed, "aeolus", "campaigns")
    n_camp = rows["campaigns"]
    campaign_id = np.arange(n_camp, dtype=np.int64)
    advertiser = zipf_codes(rng, n_camp, domain=60, skew=1.3)
    budget_tier = correlated_codes(rng, advertiser, domain=5, strength=0.7, skew=0.8)
    objective = correlated_codes(rng, budget_tier, domain=4, strength=0.6, skew=0.9)
    catalog.register(
        Table.from_arrays(
            "campaigns",
            cluster_rows({
                "campaign_id": campaign_id,
                "advertiser_id": advertiser,
                "budget_tier": budget_tier,
                "objective": objective,
            }, order_by=["advertiser_id"]),
        )
    )

    # -- ads (the paper's Figure 4 table) -----------------------------------
    rng = derive_rng(seed, "aeolus", "ads")
    n_ads = rows["ads"]
    ad_id = np.arange(n_ads, dtype=np.int64)
    campaign_fk = foreign_key(rng, n_ads, n_camp, skew=1.2)
    target_platform = zipf_codes(rng, n_ads, domain=6, skew=1.0)
    # The Figure 4 tree: content_type depends on target_platform, landing
    # page on content_type, duration on content_type.
    content_type = correlated_codes(rng, target_platform, domain=8, strength=0.8, skew=1.0)
    landing_page = correlated_codes(rng, content_type, domain=30, strength=0.7, skew=1.2)
    duration = correlated_codes(rng, content_type, domain=12, strength=0.75, skew=0.9)
    bid_price = correlated_codes(rng, target_platform, domain=100, strength=0.5, skew=1.4)
    catalog.register(
        Table.from_arrays(
            "ads",
            cluster_rows({
                "ad_id": ad_id,
                "campaign_id": campaign_fk,
                "target_platform": target_platform,
                "content_type": content_type,
                "landing_page": landing_page,
                "duration": duration,
                "bid_price": bid_price,
            }, order_by=["target_platform", "content_type"]),
        )
    )

    # -- impressions (big fact; high-NDV session/user columns) ---------------
    rng = derive_rng(seed, "aeolus", "impressions")
    n_imp = rows["impressions"]
    imp_ad = foreign_key(rng, n_imp, n_ads, skew=1.5)
    region = zipf_codes(rng, n_imp, domain=34, skew=1.2)
    device_type = correlated_codes(rng, region, domain=5, strength=0.4, skew=0.8)
    hour = zipf_codes(rng, n_imp, domain=24, skew=0.6)
    user_segment = correlated_codes(rng, region, domain=50, strength=0.6, skew=1.3)
    session_id = high_ndv_column(rng, n_imp, ndv_fraction=0.92)
    user_hash = high_ndv_column(rng, n_imp, ndv_fraction=0.55)
    cost_millis = correlated_codes(rng, imp_ad % 100, domain=500, strength=0.5, skew=1.6)
    catalog.register(
        Table.from_arrays(
            "impressions",
            cluster_rows({
                "imp_id": np.arange(n_imp, dtype=np.int64),
                "ad_id": imp_ad,
                "region": region,
                "device_type": device_type,
                "hour": hour,
                "user_segment": user_segment,
                "session_id": session_id,
                "user_hash": user_hash,
                "cost_millis": cost_millis,
                "event_date": dates_column(rng, n_imp, _DAY0, 90),
            }, order_by=["event_date", "region"]),
        )
    )

    # -- clicks ---------------------------------------------------------------
    rng = derive_rng(seed, "aeolus", "clicks")
    n_clicks = rows["clicks"]
    click_ad = foreign_key(rng, n_clicks, n_ads, skew=1.6)
    catalog.register(
        Table.from_arrays(
            "clicks",
            cluster_rows({
                "click_id": np.arange(n_clicks, dtype=np.int64),
                "ad_id": click_ad,
                "region": zipf_codes(rng, n_clicks, domain=34, skew=1.3),
                "device_type": zipf_codes(rng, n_clicks, domain=5, skew=0.9),
                "dwell_bucket": correlated_codes(
                    rng, click_ad % 12, domain=10, strength=0.5, skew=1.1
                ),
                "event_date": dates_column(rng, n_clicks, _DAY0, 90),
            }, order_by=["event_date", "region"]),
        )
    )

    # -- conversions -------------------------------------------------------------
    rng = derive_rng(seed, "aeolus", "conversions")
    n_conv = rows["conversions"]
    conv_ad = foreign_key(rng, n_conv, n_ads, skew=1.7)
    conv_type = correlated_codes(rng, conv_ad % 6, domain=6, strength=0.6, skew=1.0)
    catalog.register(
        Table.from_arrays(
            "conversions",
            cluster_rows({
                "conv_id": np.arange(n_conv, dtype=np.int64),
                "ad_id": conv_ad,
                "conv_type": conv_type,
                "value_millis": correlated_codes(
                    rng, conv_type, domain=1000, strength=0.55, skew=1.8
                ),
                "event_date": dates_column(rng, n_conv, _DAY0, 90),
            }, order_by=["event_date", "conv_type"]),
        )
    )

    catalog.add_join_edge("campaigns", "campaign_id", "ads", "campaign_id")
    catalog.add_join_edge("ads", "ad_id", "impressions", "ad_id")
    catalog.add_join_edge("ads", "ad_id", "clicks", "ad_id")
    catalog.add_join_edge("ads", "ad_id", "conversions", "ad_id")

    bundle = DatasetBundle(
        name="aeolus",
        catalog=catalog,
        primary_keys={"campaigns": "campaign_id", "ads": "ad_id"},
        foreign_keys={
            ("ads", "campaign_id"): "campaigns",
            ("impressions", "ad_id"): "ads",
            ("clicks", "ad_id"): "ads",
            ("conversions", "ad_id"): "ads",
        },
        filter_columns={
            "campaigns": ["advertiser_id", "budget_tier", "objective"],
            "ads": [
                "target_platform",
                "content_type",
                "landing_page",
                "duration",
                "bid_price",
            ],
            "impressions": [
                "region",
                "device_type",
                "hour",
                "user_segment",
                "cost_millis",
                "event_date",
            ],
            "clicks": ["region", "device_type", "dwell_bucket", "event_date"],
            "conversions": ["conv_type", "value_millis", "event_date"],
        },
        high_ndv_columns=[
            ("impressions", "session_id"),
            ("impressions", "user_hash"),
        ],
        seed=seed,
        scale=scale,
    )
    bundle.validate_references()
    return bundle
