"""Distribution-preserving dataset scaling.

The paper scales IMDB and STATS to 1 TB with the zero-shot-cost-model
scaling procedure (Hilprecht & Binnig 2022), which replicates rows while
remapping keys so that per-table value distributions, cross-column
correlations, and join fan-out distributions are preserved exactly and true
cardinalities remain computable.  :func:`scale_bundle` implements that
procedure:

* the integer part of the factor replicates every table, offsetting primary
  keys (and the foreign keys referencing them) per replica so each replica
  joins only with itself;
* the fractional part appends one partial replica containing a key-prefix of
  each parent table and exactly the child rows whose references fall inside
  that prefix, keeping referential integrity.

Because primary keys are dense ``arange`` columns in every generator, a key
prefix is simply ``key < cutoff``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.storage.catalog import Catalog, JoinEdge
from repro.storage.column import Column
from repro.storage.table import Table


def _replica_arrays(
    bundle: DatasetBundle,
    table: Table,
    offset_units: int,
    parent_sizes: dict[str, int],
    keep_mask: np.ndarray | None,
) -> dict[str, np.ndarray]:
    """One replica of ``table`` with keys shifted by ``offset_units`` replicas."""
    arrays: dict[str, np.ndarray] = {}
    pk = bundle.primary_keys.get(table.name)
    for name in table.column_names():
        values = table.column(name).values
        if keep_mask is not None:
            values = values[keep_mask]
        else:
            values = values.copy()
        if name == pk:
            values = values + offset_units * len(table)
        else:
            parent = bundle.foreign_keys.get((table.name, name))
            if parent is not None:
                values = values + offset_units * parent_sizes[parent]
        arrays[name] = values
    return arrays


def scale_bundle(bundle: DatasetBundle, factor: float) -> DatasetBundle:
    """Return a new bundle scaled by ``factor`` (>= fractional epsilon).

    ``factor`` may be fractional; values below 1 simply take a key-prefix
    slice of the original.  The result shares no arrays with the input.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    whole = math.floor(factor)
    frac = factor - whole
    if frac < 1e-9:
        frac = 0.0

    parent_sizes = {
        parent: len(bundle.catalog.table(parent))
        for parent in bundle.primary_keys
    }
    fractional_masks = (
        _fractional_masks(bundle, frac) if frac > 0.0 else {}
    )

    catalog = Catalog()
    for table_name in bundle.catalog.table_names():
        table = bundle.catalog.table(table_name)
        pieces: list[dict[str, np.ndarray]] = []
        for replica in range(whole):
            pieces.append(_replica_arrays(bundle, table, replica, parent_sizes, None))
        if frac > 0.0:
            mask = fractional_masks[table_name]
            # An all-false mask is legitimate: under heavy fan-out skew a
            # small key prefix of the parent may match no child rows at
            # all, leaving the child empty at sub-1 factors.
            pieces.append(_replica_arrays(bundle, table, whole, parent_sizes, mask))
        merged = {
            name: np.concatenate([piece[name] for piece in pieces])
            for name in table.column_names()
        }
        columns = [
            Column(name, table.column(name).ctype, merged[name],
                   dictionary=table.column(name).dictionary)
            for name in table.column_names()
        ]
        catalog.register(Table(table_name, columns, block_size=table.block_size))

    for edge in bundle.catalog.join_schema:
        catalog.join_schema.add(
            JoinEdge(edge.left_table, edge.left_column, edge.right_table, edge.right_column)
        )

    scaled = DatasetBundle(
        name=bundle.name,
        catalog=catalog,
        primary_keys=dict(bundle.primary_keys),
        foreign_keys=dict(bundle.foreign_keys),
        filter_columns={t: list(cols) for t, cols in bundle.filter_columns.items()},
        high_ndv_columns=list(bundle.high_ndv_columns),
        seed=bundle.seed,
        scale=bundle.scale * factor,
    )
    scaled.validate_references()
    return scaled


def _fractional_masks(
    bundle: DatasetBundle, frac: float
) -> dict[str, np.ndarray]:
    """Per-table row masks of the fractional partial replica.

    Masks are computed parents-first: a table keeps a key-prefix of its
    primary keys, *intersected* with its own foreign-key constraints; its
    children then keep exactly the rows whose references fall inside the
    parent's actually-kept key set.  (Filtering children against the raw
    key prefix instead would dangle whenever a parent row inside the prefix
    was itself dropped by one of the parent's own foreign keys -- a table
    that is both parent and child, like a fact's dimension.)
    """
    masks: dict[str, np.ndarray] = {}
    kept_keys: dict[str, np.ndarray] = {}
    pending = list(bundle.catalog.table_names())
    while pending:
        progressed = False
        for table_name in list(pending):
            parents = {
                parent
                for (child, _col), parent in bundle.foreign_keys.items()
                if child == table_name
            }
            if any(parent not in kept_keys for parent in parents):
                continue  # a referenced parent is not resolved yet
            table = bundle.catalog.table(table_name)
            mask = np.ones(len(table), dtype=bool)
            pk = bundle.primary_keys.get(table_name)
            if pk is not None:
                cutoff = int(frac * len(table))
                mask &= table.column(pk).values < cutoff
            has_fk = False
            for name in table.column_names():
                parent = bundle.foreign_keys.get((table_name, name))
                if parent is None:
                    continue
                has_fk = True
                mask &= np.isin(table.column(name).values, kept_keys[parent])
            if pk is None and not has_fk:
                prefix = np.zeros(len(table), dtype=bool)
                prefix[: int(frac * len(table))] = True
                mask = prefix
            masks[table_name] = mask
            if pk is not None:
                kept_keys[table_name] = table.column(pk).values[mask]
            pending.remove(table_name)
            progressed = True
        if not progressed:
            raise ValueError("cyclic foreign-key dependencies in the bundle")
    return masks
