"""Synthetic IMDB with the JOB-light schema.

JOB-light (Kipf et al., "Learned Cardinalities") uses six IMDB tables joined
star-style on ``title.id = <fact>.movie_id``:

* ``title``            -- movies (the dimension),
* ``movie_companies``  -- production companies per movie,
* ``cast_info``        -- cast entries per movie,
* ``movie_info``       -- typed info rows per movie,
* ``movie_info_idx``   -- indexed info rows per movie,
* ``movie_keyword``    -- keywords per movie.

The generator reproduces JOB-light's categorical domains (e.g. 7 title
kinds, 11 cast roles) and injects correlation between ``kind_id`` and
``production_year`` plus skewed fan-out on every ``movie_id`` foreign key.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import (
    DatasetBundle,
    cluster_rows,
    correlated_codes,
    foreign_key,
    zipf_codes,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.utils.rng import derive_rng

#: Base row counts at ``scale=1.0`` -- deliberately laptop-sized; the paper's
#: 1 TB scale is reached in experiments via ``scale_bundle``.
BASE_ROWS = {
    "title": 6000,
    "movie_companies": 15000,
    "cast_info": 30000,
    "movie_info": 20000,
    "movie_info_idx": 8000,
    "movie_keyword": 12000,
}


def make_imdb(seed: int = 42, scale: float = 1.0) -> DatasetBundle:
    """Generate the synthetic IMDB bundle."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rows = {name: max(10, int(count * scale)) for name, count in BASE_ROWS.items()}
    catalog = Catalog()

    # -- title ---------------------------------------------------------
    rng = derive_rng(seed, "imdb", "title")
    n_title = rows["title"]
    title_id = np.arange(n_title, dtype=np.int64)
    kind_id = zipf_codes(rng, n_title, domain=7, skew=1.1)
    # Production year correlates with kind: e.g. TV episodes cluster in
    # recent years while classic film kinds skew older.
    year_bucket = correlated_codes(rng, kind_id, domain=14, strength=0.75, skew=0.6)
    production_year = 1880 + year_bucket * 10 + rng.integers(0, 10, n_title)
    episode_nr = zipf_codes(rng, n_title, domain=100, skew=1.5)
    catalog.register(
        Table.from_arrays(
            "title",
            cluster_rows(
                {
                    "id": title_id,
                    "kind_id": kind_id,
                    "production_year": production_year.astype(np.int64),
                    "episode_nr": episode_nr,
                },
                order_by=["kind_id", "production_year"],
            ),
        )
    )

    # -- satellite tables ------------------------------------------------
    def satellite(
        name: str, extra: dict[str, tuple[int, float, float]]
    ) -> None:
        """Register a fact table: movie_id FK + correlated categorical columns.

        ``extra`` maps column name -> (domain, zipf skew, correlation with
        movie popularity).
        """
        sat_rng = derive_rng(seed, "imdb", name)
        n = rows[name]
        movie_id = foreign_key(sat_rng, n, n_title, skew=1.1)
        arrays: dict[str, np.ndarray] = {"movie_id": movie_id}
        for column, (domain, skew, corr) in extra.items():
            if corr > 0:
                arrays[column] = correlated_codes(
                    sat_rng, movie_id % domain, domain, strength=corr, skew=skew
                )
            else:
                arrays[column] = zipf_codes(sat_rng, n, domain, skew)
        # ORDER BY (leading dimension column, join key), the common
        # fact-table clustering in production.
        leading = next(iter(extra))
        arrays = cluster_rows(arrays, order_by=[leading, "movie_id"])
        catalog.register(Table.from_arrays(name, arrays))
        catalog.add_join_edge("title", "id", name, "movie_id")

    satellite(
        "movie_companies",
        {
            "company_id": (400, 1.2, 0.0),
            "company_type_id": (2, 0.4, 0.5),
        },
    )
    satellite(
        "cast_info",
        {
            "person_id": (3000, 1.3, 0.0),
            "role_id": (11, 1.0, 0.6),
        },
    )
    satellite(
        "movie_info",
        {
            "info_type_id": (113, 1.2, 0.7),
        },
    )
    satellite(
        "movie_info_idx",
        {
            "info_type_id": (113, 1.4, 0.5),
        },
    )
    satellite(
        "movie_keyword",
        {
            "keyword_id": (1500, 1.4, 0.0),
        },
    )

    bundle = DatasetBundle(
        name="imdb",
        catalog=catalog,
        primary_keys={"title": "id"},
        foreign_keys={
            ("movie_companies", "movie_id"): "title",
            ("cast_info", "movie_id"): "title",
            ("movie_info", "movie_id"): "title",
            ("movie_info_idx", "movie_id"): "title",
            ("movie_keyword", "movie_id"): "title",
        },
        filter_columns={
            "title": ["kind_id", "production_year", "episode_nr"],
            "movie_companies": ["company_id", "company_type_id"],
            "cast_info": ["person_id", "role_id"],
            "movie_info": ["info_type_id"],
            "movie_info_idx": ["info_type_id"],
            "movie_keyword": ["keyword_id"],
        },
        seed=seed,
        scale=scale,
    )
    bundle.validate_references()
    return bundle
