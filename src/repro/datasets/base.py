"""Generation primitives shared by the dataset modules.

The generators are built from three ingredients that reproduce the failure
modes of traditional estimators:

* **Zipfian skew** (:func:`zipf_codes`) -- real-world categorical columns are
  heavy-tailed, which breaks uniformity assumptions;
* **cross-column correlation** (:func:`correlated_codes`) -- e.g. the paper's
  Figure 4 example where ``Content Type`` depends on ``Target Platform``,
  which breaks the attribute-independence assumption;
* **skewed foreign-key fan-out** (:func:`foreign_key`) -- a few "hot" parent
  rows own most children, which breaks the join-uniformity assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchemaError
from repro.storage.catalog import Catalog


def zipf_weights(domain: int, skew: float) -> np.ndarray:
    """Normalized Zipf(``skew``) probabilities over ``domain`` values."""
    if domain <= 0:
        raise ValueError(f"domain must be positive, got {domain}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


def zipf_codes(
    rng: np.random.Generator, n: int, domain: int, skew: float = 1.0
) -> np.ndarray:
    """``n`` integer codes in ``[0, domain)`` with Zipfian frequency skew.

    Codes are shuffled so the hottest value is not always 0; the shuffle is
    drawn from ``rng`` so the mapping is reproducible.
    """
    weights = zipf_weights(domain, skew)
    permutation = rng.permutation(domain)
    drawn = rng.choice(domain, size=n, p=weights)
    return permutation[drawn].astype(np.int64)


def correlated_codes(
    rng: np.random.Generator,
    parent: np.ndarray,
    domain: int,
    strength: float = 0.8,
    skew: float = 1.0,
) -> np.ndarray:
    """A column correlated with ``parent``.

    With probability ``strength`` a row's value is a deterministic function of
    its parent value (a per-parent-value preferred child code); otherwise it
    is drawn independently with Zipfian skew.  ``strength=0`` yields an
    independent column, ``strength=1`` a functional dependency.
    """
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    n = len(parent)
    parent_domain = int(parent.max()) + 1 if n else 0
    preferred = rng.integers(0, domain, size=max(parent_domain, 1))
    independent = zipf_codes(rng, n, domain, skew)
    follow = rng.random(n) < strength
    values = np.where(follow, preferred[parent], independent)
    return values.astype(np.int64)


def foreign_key(
    rng: np.random.Generator, n: int, parent_count: int, skew: float = 1.2
) -> np.ndarray:
    """``n`` foreign-key values referencing ``[0, parent_count)`` parents.

    Fan-out is Zipf-skewed: a handful of parents receive most references,
    the long tail few or none -- the pattern that makes join-uniformity
    estimates wrong by orders of magnitude.
    """
    return zipf_codes(rng, n, parent_count, skew)


def dates_column(
    rng: np.random.Generator, n: int, start_day: int, span_days: int, skew: float = 0.5
) -> np.ndarray:
    """Days-since-epoch integers, denser toward the end of the span.

    Real ingestion volume grows over time, so later dates are more frequent.
    """
    weights = zipf_weights(span_days, skew)[::-1].copy()
    weights /= weights.sum()
    offsets = rng.choice(span_days, size=n, p=weights)
    return (start_day + offsets).astype(np.int64)


def high_ndv_column(rng: np.random.Generator, n: int, ndv_fraction: float = 0.9) -> np.ndarray:
    """A column whose NDV is close to the row count (e.g. session ids).

    These are the columns the paper reports RBX underestimating before
    calibration fine-tuning (Section 6.3, "Model Details").
    """
    if not 0.0 < ndv_fraction <= 1.0:
        raise ValueError(f"ndv_fraction must be in (0, 1], got {ndv_fraction}")
    domain = max(1, int(n * ndv_fraction))
    return rng.integers(0, domain, size=n).astype(np.int64)


def cluster_rows(
    arrays: dict[str, np.ndarray], order_by: list[str]
) -> dict[str, np.ndarray]:
    """Sort a table's rows by the given ORDER BY key columns.

    ByteHouse-style warehouses physically cluster each table on an ORDER BY
    key (typically a low-cardinality dimension plus an ingestion-time
    column).  Clustering is what lets the multi-stage reader skip whole
    blocks for selective predicates, so the generators apply it to every
    table -- randomly ordered rows would make block skipping (and thus
    Figure 6a's reader-choice effects) impossible.
    """
    if not order_by:
        return arrays
    keys = [arrays[column] for column in reversed(order_by)]
    order = np.lexsort(keys)
    return {name: values[order] for name, values in arrays.items()}


@dataclass
class DatasetBundle:
    """A generated database plus the metadata the framework needs.

    Attributes
    ----------
    name:
        Dataset identifier ("imdb", "stats", "aeolus").
    catalog:
        Tables and collected join schema.
    primary_keys:
        ``table -> key column`` for tables with a synthetic surrogate key.
        The scaler uses these to remap keys when replicating rows.
    foreign_keys:
        ``(child_table, child_column) -> parent_table`` references, also for
        the scaler.
    filter_columns:
        ``table -> columns`` suitable for workload predicates (non-key,
        non-complex).
    high_ndv_columns:
        ``(table, column)`` pairs with near-row-count NDV, used by the RBX
        calibration experiments.
    seed:
        Seed the bundle was generated from.
    scale:
        Multiplicative size factor relative to the module's base size.
    """

    name: str
    catalog: Catalog
    primary_keys: dict[str, str] = field(default_factory=dict)
    foreign_keys: dict[tuple[str, str], str] = field(default_factory=dict)
    filter_columns: dict[str, list[str]] = field(default_factory=dict)
    high_ndv_columns: list[tuple[str, str]] = field(default_factory=list)
    seed: int = 0
    scale: float = 1.0

    def validate_references(self) -> None:
        """Check that all FK values reference existing parent keys."""
        for (child_table, child_column), parent_table in self.foreign_keys.items():
            parent_key = self.primary_keys.get(parent_table)
            if parent_key is None:
                raise SchemaError(f"parent table {parent_table!r} has no primary key")
            parent_values = self.catalog.table(parent_table).column(parent_key).values
            child_values = self.catalog.table(child_table).column(child_column).values
            if len(child_values) == 0:
                continue
            missing = ~np.isin(child_values, parent_values)
            if missing.any():
                raise SchemaError(
                    f"{child_table}.{child_column} has {int(missing.sum())} "
                    f"dangling references into {parent_table}"
                )

    def total_rows(self) -> int:
        return self.catalog.total_rows()
