"""SQL frontend: lexer, parser, AST, binder, and query featurization.

The paper's Inference Engine exposes two featurization entry points --
``featurizeSQLQuery`` (parse a SQL string) and ``featurizeAST`` (consume the
analyzer's AST directly).  This package provides both: :func:`parse_sql`
produces the AST, :class:`Binder` resolves it against a catalog into the
semantic :class:`CardQuery` used by every estimator and by the engine, and
:mod:`repro.sql.featurize` turns either form into feature vectors.
"""

from repro.sql.ast import (
    SelectStatement,
    ColumnRef,
    Literal,
    Comparison,
    And,
    Or,
    Not,
    InList,
    Between,
    FuncCall,
    Star,
    TableRef,
    JoinClause,
)
from repro.sql.lexer import tokenize, Token, TokenType
from repro.sql.parser import parse_sql
from repro.sql.query import (
    CardQuery,
    TablePredicate,
    JoinCondition,
    PredicateOp,
    AggKind,
    AggSpec,
)
from repro.sql.binder import Binder, bind_sql

__all__ = [
    "SelectStatement",
    "ColumnRef",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InList",
    "Between",
    "FuncCall",
    "Star",
    "TableRef",
    "JoinClause",
    "tokenize",
    "Token",
    "TokenType",
    "parse_sql",
    "CardQuery",
    "TablePredicate",
    "JoinCondition",
    "PredicateOp",
    "AggKind",
    "AggSpec",
    "Binder",
    "bind_sql",
]
