"""Hand-written tokenizer for the supported SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "JOIN",
    "INNER",
    "ON",
    "AND",
    "OR",
    "NOT",
    "IN",
    "BETWEEN",
    "GROUP",
    "BY",
    "AS",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "DISTINCT",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"  # = <> < <= > >=
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string, raising :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            chunks: list[str] = []
            while True:
                if j >= n:
                    raise ParseError("unterminated string literal", position=i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and sql[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                # A dot is part of the number only when followed by a digit;
                # otherwise it is a qualifier dot (e.g. "t1.c1").
                if sql[j] == ".":
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        matched_op = next((op for op in _OPERATORS if sql.startswith(op, i)), None)
        if matched_op is not None:
            text = "<>" if matched_op == "!=" else matched_op
            tokens.append(Token(TokenType.OP, text, i))
            i += len(matched_op)
            continue
        simple = {
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "*": TokenType.STAR,
        }.get(ch)
        if simple is not None:
            tokens.append(Token(simple, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
