"""Abstract syntax tree produced by the SQL parser.

These nodes model exactly the query class the paper's workloads use:
``SELECT`` with ``COUNT(*)`` / ``COUNT(DISTINCT col)`` / plain aggregates,
inner joins with equality conditions, conjunctive/disjunctive predicate
trees over single columns, and ``GROUP BY``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    """``[qualifier.]name`` -- qualifier is a table name or alias (or None)."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A numeric or string constant."""

    value: Union[int, float, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` with op in =, <>, <, <=, >, >=."""

    op: str
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And:
    """Conjunction of two or more expressions."""

    operands: tuple["Expression", ...]

    def __str__(self) -> str:
        return " AND ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Or:
    """Disjunction of two or more expressions."""

    operands: tuple["Expression", ...]

    def __str__(self) -> str:
        return " OR ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    operand: "Expression"

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[Literal, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.values)
        return f"{self.column} IN ({inner})"


@dataclass(frozen=True)
class Between:
    """``column BETWEEN low AND high`` (inclusive on both ends)."""

    column: ColumnRef
    low: Literal
    high: Literal

    def __str__(self) -> str:
        return f"{self.column} BETWEEN {self.low} AND {self.high}"


Expression = Union[ColumnRef, Literal, Comparison, And, Or, Not, InList, Between]


# ---------------------------------------------------------------------------
# Select list
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Star:
    """``*`` inside an aggregate, e.g. COUNT(*)."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class FuncCall:
    """``FUNC([DISTINCT] arg)`` -- COUNT, SUM, AVG, MIN, MAX."""

    func: str
    arg: Union[ColumnRef, Star]
    distinct: bool = False

    def __str__(self) -> str:
        inner = f"DISTINCT {self.arg}" if self.distinct else str(self.arg)
        return f"{self.func}({inner})"


SelectItem = Union[FuncCall, ColumnRef, Star]


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    """``table [AS alias]``."""

    table: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.table

    def __str__(self) -> str:
        return f"{self.table} AS {self.alias}" if self.alias else self.table


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table [AS alias] ON condition`` (inner joins only)."""

    table: TableRef
    condition: Expression

    def __str__(self) -> str:
        return f"JOIN {self.table} ON {self.condition}"


@dataclass(frozen=True)
class SelectStatement:
    """The root AST node."""

    select: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    group_by: tuple[ColumnRef, ...] = ()

    def __str__(self) -> str:
        parts = ["SELECT " + ", ".join(str(item) for item in self.select)]
        parts.append("FROM " + ", ".join(str(t) for t in self.from_tables))
        parts.extend(str(j) for j in self.joins)
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        return " ".join(parts)


def walk_expression(expr: Expression):
    """Depth-first iterator over all nodes of an expression tree."""
    yield expr
    if isinstance(expr, (And, Or)):
        for operand in expr.operands:
            yield from walk_expression(operand)
    elif isinstance(expr, Not):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, Comparison):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, InList):
        yield expr.column
        yield from expr.values
    elif isinstance(expr, Between):
        yield expr.column
        yield expr.low
        yield expr.high


def conjuncts_of(expr: Expression) -> list[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(expr, And):
        flattened: list[Expression] = []
        for operand in expr.operands:
            flattened.extend(conjuncts_of(operand))
        return flattened
    return [expr]


def disjuncts_of(expr: Expression) -> list[Expression]:
    """Flatten nested ORs into a list of disjuncts."""
    if isinstance(expr, Or):
        flattened: list[Expression] = []
        for operand in expr.operands:
            flattened.extend(disjuncts_of(operand))
        return flattened
    return [expr]
