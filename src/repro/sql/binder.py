"""Binder: resolve a parsed AST against a catalog into a :class:`CardQuery`.

Binding performs name resolution (aliases, unqualified columns), literal
encoding (string literals become dictionary codes), and normalization of the
WHERE tree into the estimation normal form: join conditions, AND-ed
single-column predicates, and OR-groups of single-column predicates.
"""

from __future__ import annotations

from repro.errors import BindError
from repro.sql import ast
from repro.sql.query import (
    AggKind,
    AggSpec,
    CardQuery,
    JoinCondition,
    PredicateOp,
    TablePredicate,
)
from repro.storage.catalog import Catalog

_COMPARISON_OPS = {
    "=": PredicateOp.EQ,
    "<>": PredicateOp.NE,
    "<": PredicateOp.LT,
    "<=": PredicateOp.LE,
    ">": PredicateOp.GT,
    ">=": PredicateOp.GE,
}

_NEGATED = {
    PredicateOp.EQ: PredicateOp.NE,
    PredicateOp.NE: PredicateOp.EQ,
    PredicateOp.LT: PredicateOp.GE,
    PredicateOp.LE: PredicateOp.GT,
    PredicateOp.GT: PredicateOp.LE,
    PredicateOp.GE: PredicateOp.LT,
}

_FLIPPED = {
    PredicateOp.LT: PredicateOp.GT,
    PredicateOp.LE: PredicateOp.GE,
    PredicateOp.GT: PredicateOp.LT,
    PredicateOp.GE: PredicateOp.LE,
    PredicateOp.EQ: PredicateOp.EQ,
    PredicateOp.NE: PredicateOp.NE,
}

_AGG_KINDS = {
    "COUNT": AggKind.COUNT,
    "SUM": AggKind.SUM,
    "AVG": AggKind.AVG,
    "MIN": AggKind.MIN,
    "MAX": AggKind.MAX,
}


class Binder:
    """Binds ASTs produced by :func:`repro.sql.parse_sql` against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    def bind(self, statement: ast.SelectStatement, name: str = "") -> CardQuery:
        alias_map = self._bind_tables(statement)
        joins: list[JoinCondition] = []
        predicates: list[TablePredicate] = []
        or_groups: list[tuple[TablePredicate, ...]] = []

        for join_clause in statement.joins:
            self._bind_condition(
                join_clause.condition, alias_map, joins, predicates, or_groups
            )
        if statement.where is not None:
            self._bind_condition(
                statement.where, alias_map, joins, predicates, or_groups
            )

        agg = self._bind_select(statement.select, alias_map)
        group_by = tuple(
            self._resolve_column(col, alias_map) for col in statement.group_by
        )
        return CardQuery(
            tables=tuple(dict.fromkeys(alias_map.values())),
            joins=tuple(joins),
            predicates=tuple(predicates),
            or_groups=tuple(or_groups),
            group_by=group_by,
            agg=agg,
            name=name,
        )

    # ------------------------------------------------------------------
    def _bind_tables(self, statement: ast.SelectStatement) -> dict[str, str]:
        """Map binding names (alias or table name) to real table names."""
        alias_map: dict[str, str] = {}
        refs = list(statement.from_tables) + [j.table for j in statement.joins]
        for ref in refs:
            if not self.catalog.has_table(ref.table):
                raise BindError(f"unknown table {ref.table!r}")
            binding = ref.binding_name
            if binding in alias_map:
                raise BindError(f"duplicate table binding {binding!r}")
            alias_map[binding] = ref.table
        return alias_map

    def _resolve_column(
        self, col: ast.ColumnRef, alias_map: dict[str, str]
    ) -> tuple[str, str]:
        """Resolve a column reference to a real ``(table, column)`` pair."""
        if col.qualifier is not None:
            if col.qualifier not in alias_map:
                raise BindError(f"unknown table qualifier {col.qualifier!r}")
            table = alias_map[col.qualifier]
            if not self.catalog.table(table).has_column(col.name):
                raise BindError(f"table {table!r} has no column {col.name!r}")
            return (table, col.name)
        owners = [
            table
            for table in dict.fromkeys(alias_map.values())
            if self.catalog.table(table).has_column(col.name)
        ]
        if not owners:
            raise BindError(f"column {col.name!r} not found in any bound table")
        if len(owners) > 1:
            raise BindError(
                f"column {col.name!r} is ambiguous across tables {owners}"
            )
        return (owners[0], col.name)

    def _bind_select(
        self, items: tuple[ast.SelectItem, ...], alias_map: dict[str, str]
    ) -> AggSpec:
        aggs = [item for item in items if isinstance(item, ast.FuncCall)]
        if not aggs:
            raise BindError("query must contain an aggregate (COUNT/SUM/...)")
        if len(aggs) > 1:
            raise BindError("only one aggregate per query is supported")
        func = aggs[0]
        kind = _AGG_KINDS.get(func.func)
        if kind is None:
            raise BindError(f"unsupported aggregate function {func.func!r}")
        if isinstance(func.arg, ast.Star):
            if kind is not AggKind.COUNT or func.distinct:
                raise BindError("'*' is only valid inside plain COUNT(*)")
            return AggSpec(AggKind.COUNT)
        table, column = self._resolve_column(func.arg, alias_map)
        if kind is AggKind.COUNT and func.distinct:
            return AggSpec(AggKind.COUNT_DISTINCT, table, column)
        if func.distinct:
            raise BindError(f"DISTINCT is only supported inside COUNT, not {func.func}")
        return AggSpec(kind, table, column)

    # ------------------------------------------------------------------
    def _bind_condition(
        self,
        expr: ast.Expression,
        alias_map: dict[str, str],
        joins: list[JoinCondition],
        predicates: list[TablePredicate],
        or_groups: list[tuple[TablePredicate, ...]],
    ) -> None:
        """Normalize one conjunct tree into joins / predicates / OR-groups."""
        for conjunct in ast.conjuncts_of(expr):
            if isinstance(conjunct, ast.Or):
                group = tuple(
                    self._bind_simple_predicate(d, alias_map)
                    for d in ast.disjuncts_of(conjunct)
                )
                or_groups.append(group)
                continue
            join = self._try_bind_join(conjunct, alias_map)
            if join is not None:
                joins.append(join)
                continue
            predicates.append(self._bind_simple_predicate(conjunct, alias_map))

    def _try_bind_join(
        self, expr: ast.Expression, alias_map: dict[str, str]
    ) -> JoinCondition | None:
        if (
            isinstance(expr, ast.Comparison)
            and expr.op == "="
            and isinstance(expr.left, ast.ColumnRef)
            and isinstance(expr.right, ast.ColumnRef)
        ):
            left = self._resolve_column(expr.left, alias_map)
            right = self._resolve_column(expr.right, alias_map)
            if left[0] == right[0]:
                raise BindError(
                    f"column-to-column predicate within table {left[0]!r} is "
                    "not supported"
                )
            return JoinCondition(left[0], left[1], right[0], right[1]).normalized()
        return None

    def _bind_simple_predicate(
        self, expr: ast.Expression, alias_map: dict[str, str], negate: bool = False
    ) -> TablePredicate:
        if isinstance(expr, ast.Not):
            return self._bind_simple_predicate(expr.operand, alias_map, not negate)
        if isinstance(expr, ast.InList):
            if negate:
                raise BindError("NOT IN is not supported")
            table, column = self._resolve_column(expr.column, alias_map)
            values = tuple(
                self._encode(table, column, literal.value) for literal in expr.values
            )
            return TablePredicate(table, column, PredicateOp.IN, values)
        if isinstance(expr, ast.Between):
            if negate:
                raise BindError("NOT BETWEEN is not supported")
            table, column = self._resolve_column(expr.column, alias_map)
            low = self._encode(table, column, expr.low.value)
            high = self._encode(table, column, expr.high.value)
            return TablePredicate(table, column, PredicateOp.BETWEEN, (low, high))
        if isinstance(expr, ast.Comparison):
            return self._bind_comparison(expr, alias_map, negate)
        raise BindError(f"unsupported predicate form: {expr}")

    def _bind_comparison(
        self, expr: ast.Comparison, alias_map: dict[str, str], negate: bool
    ) -> TablePredicate:
        op = _COMPARISON_OPS.get(expr.op)
        if op is None:
            raise BindError(f"unsupported comparison operator {expr.op!r}")
        left, right = expr.left, expr.right
        if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
            left, right = right, left
            op = _FLIPPED[op]
        if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal)):
            raise BindError(f"comparison must be column-vs-literal: {expr}")
        if negate:
            op = _NEGATED[op]
        table, column = self._resolve_column(left, alias_map)
        value = self._encode(table, column, right.value)
        return TablePredicate(table, column, op, value)

    def _encode(self, table: str, column: str, literal: object) -> float:
        return self.catalog.table(table).column(column).encode_literal(literal)


def bind_sql(sql: str, catalog: Catalog, name: str = "") -> CardQuery:
    """Parse and bind a SQL string in one step."""
    from repro.sql.parser import parse_sql

    return Binder(catalog).bind(parse_sql(sql), name=name)
