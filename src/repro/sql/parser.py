"""Recursive-descent parser for the supported SQL dialect.

Grammar (roughly)::

    select    := SELECT select_list FROM table_ref (',' table_ref)*
                 join* [WHERE expr] [GROUP BY column (',' column)*]
    join      := [INNER] JOIN table_ref ON expr
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | primary
    primary   := '(' expr ')' | column IN '(' literal, ... ')'
               | column BETWEEN literal AND literal
               | operand cmp_op operand
    operand   := column | literal
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    FuncCall,
    InList,
    JoinClause,
    Literal,
    Not,
    Or,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, ttype: TokenType, text: str | None = None) -> Token:
        token = self._peek()
        if token.type is not ttype or (text is not None and token.text != text):
            want = text or ttype.value
            raise ParseError(
                f"expected {want!r}, found {token.text!r}", position=token.position
            )
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    # -- grammar --------------------------------------------------------
    def parse(self) -> SelectStatement:
        self._expect(TokenType.KEYWORD, "SELECT")
        select = self._select_list()
        self._expect(TokenType.KEYWORD, "FROM")
        from_tables = [self._table_ref()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            from_tables.append(self._table_ref())
        joins = []
        while self._peek().is_keyword("JOIN") or self._peek().is_keyword("INNER"):
            self._accept_keyword("INNER")
            self._expect(TokenType.KEYWORD, "JOIN")
            table = self._table_ref()
            self._expect(TokenType.KEYWORD, "ON")
            condition = self._expression()
            joins.append(JoinClause(table, condition))
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        group_by: list[ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._column_ref())
            while self._peek().type is TokenType.COMMA:
                self._advance()
                group_by.append(self._column_ref())
        self._expect(TokenType.EOF)
        return SelectStatement(
            select=tuple(select),
            from_tables=tuple(from_tables),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
        )

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            items.append(self._select_item())
        return items

    _AGG_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def _select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.STAR:
            self._advance()
            return Star()
        if token.type is TokenType.KEYWORD and token.text in self._AGG_FUNCS:
            func = self._advance().text
            self._expect(TokenType.LPAREN)
            distinct = self._accept_keyword("DISTINCT")
            if self._peek().type is TokenType.STAR:
                self._advance()
                arg: ColumnRef | Star = Star()
            else:
                arg = self._column_ref()
            self._expect(TokenType.RPAREN)
            return FuncCall(func, arg, distinct=distinct)
        return self._column_ref()

    def _table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENT).text
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT).text
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return TableRef(name, alias)

    def _column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENT).text
        if self._peek().type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENT).text
            return ColumnRef(second, qualifier=first)
        return ColumnRef(first)

    def _literal(self) -> Literal:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            value: int | float = float(text) if "." in text else int(text)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.text)
        raise ParseError(
            f"expected a literal, found {token.text!r}", position=token.position
        )

    # -- expressions ----------------------------------------------------
    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        operands = [self._and_expr()]
        while self._accept_keyword("OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _and_expr(self) -> Expression:
        operands = [self._not_expr()]
        while self._accept_keyword("AND"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _not_expr(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._expression()
            self._expect(TokenType.RPAREN)
            return inner
        left = self._operand()
        nxt = self._peek()
        if nxt.is_keyword("IN"):
            if not isinstance(left, ColumnRef):
                raise ParseError("IN requires a column on the left", nxt.position)
            self._advance()
            self._expect(TokenType.LPAREN)
            values = [self._literal()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                values.append(self._literal())
            self._expect(TokenType.RPAREN)
            return InList(left, tuple(values))
        if nxt.is_keyword("BETWEEN"):
            if not isinstance(left, ColumnRef):
                raise ParseError("BETWEEN requires a column on the left", nxt.position)
            self._advance()
            low = self._literal()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._literal()
            return Between(left, low, high)
        if nxt.type is TokenType.OP:
            op = self._advance().text
            right = self._operand()
            return Comparison(op, left, right)
        raise ParseError(
            f"expected a comparison, found {nxt.text!r}", position=nxt.position
        )

    def _operand(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.IDENT:
            return self._column_ref()
        return self._literal()


def parse_sql(sql: str) -> SelectStatement:
    """Parse a SQL string into a :class:`SelectStatement` AST."""
    return _Parser(tokenize(sql)).parse()
