"""Query featurization (the Inference Engine's ``featurize*`` interfaces).

Produces the fixed vocabulary and feature vectors that query-driven models
(MSCN) consume: a table one-hot, a join-edge one-hot against the catalog's
collected join schema, and a *set* of per-predicate vectors (column one-hot,
operator one-hot, min-max-normalized literal), following the MSCN paper's
featurization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BindError
from repro.sql.ast import SelectStatement
from repro.sql.binder import Binder
from repro.sql.parser import parse_sql
from repro.sql.query import CardQuery, PredicateOp, TablePredicate
from repro.storage.catalog import Catalog

_OP_ORDER = (
    PredicateOp.EQ,
    PredicateOp.NE,
    PredicateOp.LT,
    PredicateOp.LE,
    PredicateOp.GT,
    PredicateOp.GE,
    PredicateOp.IN,
    PredicateOp.BETWEEN,
)


@dataclass(frozen=True)
class FeatureVector:
    """Featurized query: flat components plus the predicate set.

    ``tables`` and ``joins`` are multi-hot vectors; ``predicates`` is a
    ``(num_predicates, pred_dim)`` matrix (possibly empty) whose rows are
    per-predicate feature vectors.
    """

    tables: np.ndarray
    joins: np.ndarray
    predicates: np.ndarray

    def pooled(self) -> np.ndarray:
        """MSCN-style pooling: mean over the predicate set, concatenated."""
        if self.predicates.shape[0] == 0:
            pooled_preds = np.zeros(self.predicates.shape[1], dtype=np.float64)
        else:
            pooled_preds = self.predicates.mean(axis=0)
        return np.concatenate([self.tables, self.joins, pooled_preds])


class QueryFeaturizer:
    """Builds feature vectors for bound queries against one catalog.

    The vocabulary (tables, columns, join edges, value ranges) is frozen at
    construction, making instances immutable and safe to share across query
    threads -- the property the paper's ``initContext`` establishes.
    """

    def __init__(self, catalog: Catalog):
        self._binder = Binder(catalog)
        self._tables = tuple(catalog.table_names())
        self._table_index = {t: i for i, t in enumerate(self._tables)}
        self._join_edges = tuple(
            (e.left_table, e.left_column, e.right_table, e.right_column)
            for e in catalog.join_schema
        )
        self._join_index = {edge: i for i, edge in enumerate(self._join_edges)}
        self._columns: list[tuple[str, str]] = []
        self._ranges: dict[tuple[str, str], tuple[float, float]] = {}
        for table_name in self._tables:
            table = catalog.table(table_name)
            for column_name in table.column_names():
                key = (table_name, column_name)
                self._columns.append(key)
                values = table.column(column_name).values
                if len(values):
                    lo, hi = float(values.min()), float(values.max())
                else:
                    lo, hi = 0.0, 0.0
                self._ranges[key] = (lo, hi if hi > lo else lo + 1.0)
        self._column_index = {key: i for i, key in enumerate(self._columns)}

    # ------------------------------------------------------------------
    @property
    def pred_dim(self) -> int:
        return len(self._columns) + len(_OP_ORDER) + 1

    @property
    def pooled_dim(self) -> int:
        return len(self._tables) + len(self._join_edges) + self.pred_dim

    # ------------------------------------------------------------------
    def featurize(self, query: CardQuery) -> FeatureVector:
        """Featurize a bound :class:`CardQuery`."""
        tables = np.zeros(len(self._tables), dtype=np.float64)
        for table in query.tables:
            index = self._table_index.get(table)
            if index is None:
                raise BindError(f"query table {table!r} unknown to featurizer")
            tables[index] = 1.0

        joins = np.zeros(max(1, len(self._join_edges)), dtype=np.float64)
        for join in query.joins:
            norm = join.normalized()
            key = (
                norm.left_table,
                norm.left_column,
                norm.right_table,
                norm.right_column,
            )
            index = self._join_index.get(key)
            # Joins outside the collected schema are simply not encoded; the
            # model sees them through the table multi-hot instead.
            if index is not None:
                joins[index] = 1.0

        preds = query.all_predicates()
        matrix = np.zeros((len(preds), self.pred_dim), dtype=np.float64)
        for row, pred in enumerate(preds):
            matrix[row] = self._featurize_predicate(pred)
        return FeatureVector(tables=tables, joins=joins, predicates=matrix)

    def featurize_sql(self, sql: str) -> FeatureVector:
        """The paper's ``featurizeSQLQuery``: parse, bind, featurize."""
        return self.featurize(self._binder.bind(parse_sql(sql)))

    def featurize_ast(self, statement: SelectStatement) -> FeatureVector:
        """The paper's ``featurizeAST``: bind an analyzer AST, featurize."""
        return self.featurize(self._binder.bind(statement))

    # ------------------------------------------------------------------
    def _featurize_predicate(self, pred: TablePredicate) -> np.ndarray:
        vec = np.zeros(self.pred_dim, dtype=np.float64)
        key = (pred.table, pred.column)
        col_idx = self._column_index.get(key)
        if col_idx is None:
            raise BindError(f"predicate column {key} unknown to featurizer")
        vec[col_idx] = 1.0
        op_offset = len(self._columns)
        vec[op_offset + _OP_ORDER.index(pred.op)] = 1.0
        lo, hi = self._ranges[key]
        if isinstance(pred.value, tuple):
            raw = float(np.mean(pred.value))
        else:
            raw = float(pred.value)
        vec[-1] = float(np.clip((raw - lo) / (hi - lo), 0.0, 1.0))
        return vec
