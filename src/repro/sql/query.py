"""The semantic query model shared by estimators and the execution engine.

A :class:`CardQuery` is the post-binding normal form of the query class the
paper evaluates: inner equi-joins over base tables, conjunctions of
single-column predicates (plus optional OR-groups, which ByteCard rewrites
through the inclusion-exclusion principle), an aggregate, and group-by keys.
Workload generators produce :class:`CardQuery` objects directly; the binder
produces them from parsed SQL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.errors import SchemaError


class PredicateOp(enum.Enum):
    """Predicate operators supported on a single column."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    BETWEEN = "between"


@dataclass(frozen=True)
class TablePredicate:
    """A predicate on one column of one base table, in encoded numeric form.

    ``value`` is a single float for comparison ops, a tuple of floats for
    ``IN``, and a ``(low, high)`` pair for ``BETWEEN`` (inclusive).
    """

    table: str
    column: str
    op: PredicateOp
    value: float | tuple[float, ...]

    def __post_init__(self) -> None:
        if self.op is PredicateOp.BETWEEN:
            if not (isinstance(self.value, tuple) and len(self.value) == 2):
                raise SchemaError("BETWEEN predicate requires a (low, high) pair")
            low, high = self.value
            if low > high:
                raise SchemaError(f"BETWEEN bounds reversed: {low} > {high}")
        elif self.op is PredicateOp.IN:
            if not isinstance(self.value, tuple) or not self.value:
                raise SchemaError("IN predicate requires a non-empty value tuple")
        elif isinstance(self.value, tuple):
            raise SchemaError(f"{self.op.value} predicate takes a scalar value")

    def __str__(self) -> str:
        if self.op is PredicateOp.BETWEEN:
            low, high = self.value  # type: ignore[misc]
            return f"{self.table}.{self.column} BETWEEN {low} AND {high}"
        if self.op is PredicateOp.IN:
            inner = ", ".join(str(v) for v in self.value)  # type: ignore[union-attr]
            return f"{self.table}.{self.column} IN ({inner})"
        return f"{self.table}.{self.column} {self.op.value} {self.value}"


@dataclass(frozen=True)
class JoinCondition:
    """``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def normalized(self) -> "JoinCondition":
        if (self.left_table, self.left_column) <= (self.right_table, self.right_column):
            return self
        return JoinCondition(
            self.right_table, self.right_column, self.left_table, self.left_column
        )

    def tables(self) -> tuple[str, str]:
        return (self.left_table, self.right_table)

    def side_for(self, table: str) -> str:
        """The join column on ``table``'s side."""
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise SchemaError(f"join {self} does not touch table {table!r}")

    def __str__(self) -> str:
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )


class AggKind(enum.Enum):
    COUNT = "count"
    COUNT_DISTINCT = "count_distinct"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggSpec:
    """The aggregate of the query: kind plus (table, column) target if any."""

    kind: AggKind
    table: str | None = None
    column: str | None = None

    def __post_init__(self) -> None:
        needs_column = self.kind is not AggKind.COUNT
        if needs_column and (self.table is None or self.column is None):
            raise SchemaError(f"{self.kind.value} aggregate requires a target column")

    def __str__(self) -> str:
        if self.kind is AggKind.COUNT:
            return "COUNT(*)"
        target = f"{self.table}.{self.column}"
        if self.kind is AggKind.COUNT_DISTINCT:
            return f"COUNT(DISTINCT {target})"
        return f"{self.kind.value.upper()}({target})"


@dataclass(frozen=True)
class CardQuery:
    """A bound query in estimation normal form.

    Attributes
    ----------
    tables:
        The base tables referenced (each at most once, as in JOB-light and
        STATS-CEB).
    joins:
        Inner equi-join conditions; the induced join graph must be connected.
    predicates:
        AND-ed single-column predicates.
    or_groups:
        Each group is a disjunction of predicates, AND-ed with everything
        else.  ByteCard converts these through inclusion-exclusion before
        estimating.
    group_by:
        ``(table, column)`` pairs of the GROUP BY clause.
    agg:
        The aggregate computed by the query.
    """

    tables: tuple[str, ...]
    joins: tuple[JoinCondition, ...] = ()
    predicates: tuple[TablePredicate, ...] = ()
    or_groups: tuple[tuple[TablePredicate, ...], ...] = ()
    group_by: tuple[tuple[str, str], ...] = ()
    agg: AggSpec = field(default_factory=lambda: AggSpec(AggKind.COUNT))
    name: str = ""

    def __post_init__(self) -> None:
        if not self.tables:
            raise SchemaError("a query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise SchemaError("tables must be distinct (no self-joins supported)")
        known = set(self.tables)
        for join in self.joins:
            for tbl in join.tables():
                if tbl not in known:
                    raise SchemaError(f"join references unknown table {tbl!r}")
        for pred in self.all_predicates():
            if pred.table not in known:
                raise SchemaError(f"predicate references unknown table {pred.table!r}")
        for tbl, _col in self.group_by:
            if tbl not in known:
                raise SchemaError(f"group-by references unknown table {tbl!r}")
        if len(self.tables) > 1 and not self._is_connected():
            raise SchemaError("join graph is not connected (cross joins unsupported)")

    def _is_connected(self) -> bool:
        adjacency: dict[str, set[str]] = {t: set() for t in self.tables}
        for join in self.joins:
            a, b = join.tables()
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen = {self.tables[0]}
        frontier = [self.tables[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.tables)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def all_predicates(self) -> list[TablePredicate]:
        """Every predicate mentioned anywhere (conjuncts and OR-group members)."""
        preds = list(self.predicates)
        for group in self.or_groups:
            preds.extend(group)
        return preds

    def predicates_on(self, table: str) -> list[TablePredicate]:
        """AND-ed predicates restricted to one table."""
        return [p for p in self.predicates if p.table == table]

    def joins_touching(self, table: str) -> list[JoinCondition]:
        return [j for j in self.joins if table in j.tables()]

    def single_table_subquery(self, table: str) -> "CardQuery":
        """The COUNT subquery of one table with its local AND predicates."""
        return CardQuery(
            tables=(table,),
            predicates=tuple(self.predicates_on(table)),
            agg=AggSpec(AggKind.COUNT),
            name=f"{self.name}:{table}" if self.name else table,
        )

    def with_predicates(self, predicates: Iterable[TablePredicate]) -> "CardQuery":
        return replace(self, predicates=tuple(predicates))

    def num_joined_tables(self) -> int:
        return len(self.tables)

    def is_single_table(self) -> bool:
        return len(self.tables) == 1

    def __str__(self) -> str:
        return self.to_sql()

    def to_sql(self) -> str:
        """Render back to SQL (round-trips through the parser and binder)."""
        select = str(self.agg)
        if self.group_by:
            keys = ", ".join(f"{t}.{c}" for t, c in self.group_by)
            select = f"{keys}, {select}"
        parts = [f"SELECT {select} FROM {self.tables[0]}"]
        joined = {self.tables[0]}
        remaining = list(self.joins)
        # Emit joins in an order where each new table connects to the prefix.
        while remaining:
            emitted = False
            for join in list(remaining):
                a, b = join.tables()
                new = b if a in joined else a if b in joined else None
                if new is not None and new not in joined:
                    parts.append(f"JOIN {new} ON {join}")
                    joined.add(new)
                    remaining.remove(join)
                    emitted = True
                elif a in joined and b in joined:
                    # Redundant cycle edge: fold into WHERE via predicates later.
                    remaining.remove(join)
                    emitted = True
            if not emitted:
                raise SchemaError("join graph could not be linearized")
        clauses = [str(p) for p in self.predicates]
        for group in self.or_groups:
            clauses.append("(" + " OR ".join(str(p) for p in group) + ")")
        if clauses:
            parts.append("WHERE " + " AND ".join(clauses))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(f"{t}.{c}" for t, c in self.group_by))
        return " ".join(parts)


def predicate_signature(predicates: Sequence[TablePredicate]) -> tuple:
    """Hashable signature of a predicate set (used for caches and dedup)."""
    return tuple(
        sorted((p.table, p.column, p.op.value, p.value) for p in predicates)
    )
