"""Configuration knobs of the estimation service.

Defaults mirror the paper's deployment envelope: a few-millisecond
inference budget per estimate (Section 5.1 reports sub-5ms inference after
``initContext``), small micro-batches (estimation traffic is bursty but
individual estimates are cheap), and a bounded admission queue so a traffic
spike degrades to the traditional estimator instead of queueing without
bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of :class:`repro.serving.service.EstimationService`."""

    #: per-request wall-clock budget in milliseconds; ``None`` disables the
    #: deadline (every request waits for the learned estimate).
    deadline_ms: float | None = 5.0
    #: serve repeated fingerprints from the estimate cache
    enable_cache: bool = True
    #: maximum number of cached estimates (LRU beyond this)
    cache_entries: int = 4096
    #: group concurrent same-table COUNT requests into one inference pass
    enable_batching: bool = True
    #: extend micro-batching to join COUNT queries sharing a table set
    #: (only used when the estimator advertises ``supports_join_batching``)
    enable_join_batching: bool = True
    #: share (table, predicate-fingerprint) belief artifacts across queries
    #: (only used when the estimator exposes ``install_plan_cache``)
    enable_plan_cache: bool = True
    #: maximum cached plan-artifact scopes (LRU beyond this)
    plan_cache_entries: int = 1024
    #: flush a micro-batch once it holds this many requests
    max_batch_size: int = 16
    #: ... or once the oldest member waited this long (milliseconds)
    batch_wait_ms: float = 1.0
    #: worker threads evaluating learned estimates
    num_workers: int = 4
    #: admission bound: requests queued beyond the workers; a full queue
    #: rejects to the traditional estimator instead of growing
    queue_capacity: int = 64
    #: latency samples kept for the quantile snapshot (ring buffer)
    latency_window: int = 4096

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise SchemaError("deadline_ms must be positive or None")
        if self.cache_entries < 1:
            raise SchemaError("cache_entries must be >= 1")
        if self.max_batch_size < 1:
            raise SchemaError("max_batch_size must be >= 1")
        if self.plan_cache_entries < 1:
            raise SchemaError("plan_cache_entries must be >= 1")
        if self.batch_wait_ms < 0:
            raise SchemaError("batch_wait_ms must be >= 0")
        if self.num_workers < 1:
            raise SchemaError("num_workers must be >= 1")
        if self.queue_capacity < 0:
            raise SchemaError("queue_capacity must be >= 0")
        if self.latency_window < 1:
            raise SchemaError("latency_window must be >= 1")
