"""Cross-query cache of shared-belief plan artifacts.

The query-scoped inference plans of :mod:`repro.estimators.factorjoin.plans`
already collapse every within-query consumer of one (table, predicates)
scope onto a single BN pass.  This cache extends the amortization *across*
queries: scopes are keyed by their canonical predicate fingerprint
(:func:`repro.serving.fingerprint.table_scope_fingerprint`), so two join
queries filtering a shared table the same way -- a very common shape in
dashboard workloads -- reuse one set of belief vectors.

Invalidation mirrors :class:`repro.serving.cache.EstimateCache`: the Model
Loader's refresh listener bumps per-table generations (or the global one),
and lookups lazily drop entries whose stamp no longer matches.  Because a
:class:`PlanArtifacts` container is handed out *before* inference runs, the
stamp is taken at hand-out time; a bump between hand-out and fill only means
one extra pass later, never a stale hit, since the stale entry can no longer
be returned.

Hit/miss/invalidation counts are mirrored into a
:class:`~repro.obs.metrics.MetricsRegistry` as ``plan_cache_hits_total`` /
``plan_cache_misses_total`` / ``plan_cache_invalidations_total``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable, Sequence

from repro.estimators.factorjoin.plans import PlanArtifacts
from repro.obs.metrics import MetricsRegistry
from repro.serving.fingerprint import table_scope_fingerprint
from repro.sql.query import TablePredicate

#: (global_generation, table_generation) at hand-out time
_Stamp = tuple[int, int]


class PlanDistributionCache:
    """Bounded LRU of :class:`PlanArtifacts` with generation invalidation.

    Implements the ``ArtifactSource`` protocol the FactorJoin estimator
    consumes, so installing it via ``install_plan_cache`` is all the wiring
    the estimator needs.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        registry: MetricsRegistry | None = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            Hashable, tuple[PlanArtifacts, _Stamp]
        ] = OrderedDict()
        self._table_generation: dict[str, int] = {}
        self._global_generation = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        # Pre-register so exports show the series at zero from the start.
        self._hits_counter = self.registry.counter("plan_cache_hits_total")
        self._misses_counter = self.registry.counter("plan_cache_misses_total")
        self._invalidations_counter = self.registry.counter(
            "plan_cache_invalidations_total"
        )

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------
    def bump_tables(self, tables: Iterable[str]) -> None:
        """Invalidate (lazily) every scope on any of ``tables``."""
        with self._lock:
            for table in tables:
                self._table_generation[table] = (
                    self._table_generation.get(table, 0) + 1
                )

    def bump_all(self) -> None:
        """Invalidate (lazily) every cached scope."""
        with self._lock:
            self._global_generation += 1

    def _stamp(self, table: str) -> _Stamp:
        return (self._global_generation, self._table_generation.get(table, 0))

    def _is_current(self, table: str, stamp: _Stamp) -> bool:
        return stamp == self._stamp(table)

    # ------------------------------------------------------------------
    def artifacts_for(
        self,
        table: str,
        base: Sequence[TablePredicate],
        or_groups: Sequence[Sequence[TablePredicate]],
    ) -> PlanArtifacts:
        """The shared artifacts for one scope, minting a fresh container on
        miss or stale generation."""
        key = table_scope_fingerprint(table, base, or_groups)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                artifacts, stamp = entry
                if self._is_current(table, stamp):
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._hits_counter.inc()
                    return artifacts
                del self._entries[key]
                self.invalidations += 1
                self._invalidations_counter.inc()
            artifacts = PlanArtifacts()
            self._entries[key] = (artifacts, self._stamp(table))
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self.misses += 1
            self._misses_counter.inc()
            return artifacts

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
