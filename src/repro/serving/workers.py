"""The worker pool: bounded concurrency with admission control.

A small thread pool with a hard cap on the number of *admitted* requests
(running + queued).  When the bound is reached, :meth:`WorkerPool.try_submit`
returns ``None`` instead of queueing -- the service answers such requests
with the traditional estimator immediately, which is the paper's degradation
contract: under a traffic spike the optimizer must keep planning (with
coarser estimates) rather than stall behind an unbounded inference queue.

The pool runs its own **daemon** worker threads instead of a
:class:`~concurrent.futures.ThreadPoolExecutor` so teardown can be bounded:
``ThreadPoolExecutor`` registers an interpreter-exit hook that *joins* its
workers, so a single hung inference call would wedge process exit forever.
Here :meth:`shutdown` can give up on a hung worker after a timeout -- the
thread is abandoned (daemonized, it dies with the process) and queued work
is either finished or cancelled, never silently dropped: a cancelled future
raises ``CancelledError`` to its waiter, which the serving tier answers with
the traditional fallback.

Shutdown ordering for a graceful close is: :meth:`refuse_new` (new requests
degrade instead of queueing), :meth:`drain` (bounded wait for in-flight
work), then :meth:`shutdown` (bounded join, cancelling the queue if the
drain timed out).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, TypeVar

T = TypeVar("T")


class WorkerPool:
    """Bounded thread pool with admission control and bounded teardown."""

    def __init__(
        self,
        num_workers: int = 4,
        queue_capacity: int = 64,
        thread_name_prefix: str = "repro-serving",
    ):
        self.num_workers = num_workers
        self.queue_capacity = queue_capacity
        # One slot per worker plus the queue bound; acquired at admission,
        # released when the task finishes (success, failure, or cancel).
        self._slots = threading.Semaphore(num_workers + queue_capacity)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: deque[tuple[Future, Callable[[], object]]] = deque()
        #: admitted tasks (queued or running) not yet finished
        self._active = 0
        self._refusing = False
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._run,
                name=f"{thread_name_prefix}-{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def try_submit(
        self, fn: Callable[..., T], *args, **kwargs
    ) -> Future | None:
        """Submit ``fn`` if a slot is free; ``None`` means *rejected*."""
        if self._refusing or self._shutdown:
            return None
        if not self._slots.acquire(blocking=False):
            return None
        future: Future = Future()
        task = (future, lambda: fn(*args, **kwargs))
        with self._lock:
            if self._shutdown or self._refusing:
                self._slots.release()
                return None
            self._queue.append(task)
            self._active += 1
            self._work.notify()
        return future

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._shutdown:
                    self._work.wait()
                if self._queue:
                    future, thunk = self._queue.popleft()
                elif self._shutdown:
                    return
                else:  # pragma: no cover - spurious wakeup
                    continue
            try:
                if future.set_running_or_notify_cancel():
                    try:
                        result = thunk()
                    except BaseException as exc:
                        future.set_exception(exc)
                    else:
                        future.set_result(result)
            finally:
                self._finish_one()

    def _finish_one(self) -> None:
        self._slots.release()
        with self._lock:
            self._active -= 1
            if self._active == 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def refuse_new(self) -> None:
        """Stop admitting: every future ``try_submit`` returns ``None``."""
        self._refusing = True

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every admitted task finished; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(
        self,
        wait: bool = True,
        timeout: float | None = None,
        cancel_futures: bool = False,
    ) -> bool:
        """Stop the pool.

        ``cancel_futures`` cancels queued-but-unstarted tasks (their waiters
        see ``CancelledError``); already-running tasks always finish on
        their own.  With ``wait``, worker threads are joined for at most
        ``timeout`` seconds total; a hung worker is abandoned (daemon
        thread) rather than wedging the caller.  Returns ``True`` when
        every worker thread exited.
        """
        self._refusing = True
        cancelled: list[Future] = []
        with self._lock:
            self._shutdown = True
            if cancel_futures:
                while self._queue:
                    future, _thunk = self._queue.pop()
                    cancelled.append(future)
            self._work.notify_all()
        for future in cancelled:
            future.cancel()
            self._finish_one()
        if not wait:
            return False
        deadline = None if timeout is None else time.monotonic() + timeout
        joined = True
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)
            joined = joined and not thread.is_alive()
        return joined

    def close(self, timeout: float | None = None) -> bool:
        """Graceful bounded teardown: refuse, drain, then shut down.

        Returns ``True`` when in-flight work drained within ``timeout``;
        on ``False`` the queue was cancelled and any hung worker abandoned.
        """
        start = time.monotonic()
        self.refuse_new()
        drained = self.drain(timeout)
        remaining = None
        if timeout is not None:
            remaining = max(0.0, timeout - (time.monotonic() - start))
        self.shutdown(wait=True, timeout=remaining, cancel_futures=not drained)
        return drained

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
