"""The worker pool: bounded concurrency with admission control.

A thin wrapper over :class:`concurrent.futures.ThreadPoolExecutor` that
caps the number of *admitted* requests (running + queued).  When the bound
is reached, :meth:`WorkerPool.try_submit` returns ``None`` instead of
queueing -- the service answers such requests with the traditional
estimator immediately, which is the paper's degradation contract: under a
traffic spike the optimizer must keep planning (with coarser estimates)
rather than stall behind an unbounded inference queue.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, TypeVar

T = TypeVar("T")


class WorkerPool:
    """ThreadPoolExecutor with a hard admission bound."""

    def __init__(self, num_workers: int = 4, queue_capacity: int = 64):
        self.num_workers = num_workers
        self.queue_capacity = queue_capacity
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="repro-serving"
        )
        # One slot per worker plus the queue bound; acquired at admission,
        # released when the task finishes (success or failure).
        self._slots = threading.Semaphore(num_workers + queue_capacity)
        self._shutdown = False

    def try_submit(
        self, fn: Callable[..., T], *args, **kwargs
    ) -> Future | None:
        """Submit ``fn`` if a slot is free; ``None`` means *rejected*."""
        if self._shutdown:
            return None
        if not self._slots.acquire(blocking=False):
            return None

        def run() -> T:
            try:
                return fn(*args, **kwargs)
            finally:
                self._slots.release()

        try:
            return self._executor.submit(run)
        except RuntimeError:  # executor shut down concurrently
            self._slots.release()
            return None

    def shutdown(self, wait: bool = True) -> None:
        self._shutdown = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
