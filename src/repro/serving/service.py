"""The estimation service: ByteCard behind a concurrent serving tier.

:class:`EstimationService` is the reproduction of the paper's query-path
contract: the optimizer asks for an estimate and is **always** answered
within its budget -- by the learned model when it is fast and healthy, and
by the traditional (Selinger/sketch) estimator when the model misses its
deadline, errors out, or the service is saturated.  Every degradation is
recorded, mirroring how the production Inference Engine "falls back to
traditional estimators" rather than stalling the planner.

The pipeline itself (cache -> admission -> micro-batch -> model, with the
traditional fallback on every degradation edge) lives in the
transport-agnostic :class:`repro.serving.core.EstimationCore`; this class
is the **in-process transport**: it binds a core to the
:class:`CountEstimator`/:class:`NdvEstimator` interface the optimizer and
the engine session call directly.  The :mod:`repro.fleet` workers bind the
same core to a frame-based IPC loop instead -- one pipeline, two
transports.
"""

from __future__ import annotations

from repro.core.loader import ModelLoader, RefreshReport
from repro.errors import EstimationError
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.obs.metrics import MetricsRegistry
from repro.serving.config import ServingConfig
from repro.serving.core import _UNSET, EstimationCore, ServedEstimate
from repro.serving.stats import ServiceStats
from repro.sql.query import CardQuery

__all__ = ["EstimationService", "ServedEstimate"]


class EstimationService(CountEstimator, NdvEstimator):
    """Concurrent, deadline-aware serving facade over a learned estimator."""

    name = "serving"

    def __init__(
        self,
        estimator: CountEstimator,
        fallback_count: CountEstimator,
        fallback_ndv: NdvEstimator | None = None,
        config: ServingConfig | None = None,
        loader: ModelLoader | None = None,
        registry: MetricsRegistry | None = None,
        feedback=None,
        clock=None,
    ):
        self.core = EstimationCore(
            estimator=estimator,
            fallback_count=fallback_count,
            fallback_ndv=fallback_ndv,
            config=config,
            loader=loader,
            registry=registry,
            feedback=feedback,
            clock=clock,
        )

    # ------------------------------------------------------------------
    # Core state, exposed for introspection and tests
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> CountEstimator:
        return self.core.estimator

    @property
    def fallback_count(self) -> CountEstimator:
        return self.core.fallback_count

    @property
    def fallback_ndv(self) -> NdvEstimator | None:
        return self.core.fallback_ndv

    @property
    def config(self) -> ServingConfig:
        return self.core.config

    @property
    def registry(self) -> MetricsRegistry:
        return self.core.registry

    @property
    def feedback(self):
        return self.core.feedback

    @property
    def cache(self):
        return self.core.cache

    @property
    def plan_cache(self):
        return self.core.plan_cache

    @property
    def batcher(self):
        return self.core.batcher

    @property
    def pool(self):
        return self.core.pool

    @property
    def stats_collector(self):
        return self.core.stats_collector

    @property
    def tracer(self):
        return self.core.tracer

    def _on_loader_refresh(self, report: RefreshReport) -> None:
        self.core.on_loader_refresh(report)

    # ------------------------------------------------------------------
    # COUNT serving
    # ------------------------------------------------------------------
    def estimate_count_detail(
        self, query: CardQuery, deadline_ms=_UNSET
    ) -> ServedEstimate:
        return self.core.serve_count(query, deadline_ms)

    def estimate_count(self, query: CardQuery) -> float:
        return self.estimate_count_detail(query).value

    # ------------------------------------------------------------------
    # NDV serving
    # ------------------------------------------------------------------
    def estimate_ndv_detail(
        self, query: CardQuery, deadline_ms=_UNSET
    ) -> ServedEstimate:
        return self.core.serve_ndv(query, deadline_ms)

    def estimate_ndv(self, query: CardQuery) -> float:
        return self.estimate_ndv_detail(query).value

    def group_ndv(self, query: CardQuery) -> float:
        estimator = self.core.estimator
        if not isinstance(estimator, NdvEstimator):
            raise EstimationError("estimator does not support group NDV")
        return float(estimator.group_ndv(query))

    # ------------------------------------------------------------------
    # Planner-facing fast path
    # ------------------------------------------------------------------
    def selectivity(self, query: CardQuery) -> float:
        """Cached selectivity for the optimizer's planning loops."""
        return self.core.selectivity_detail(query)[0]

    def selectivity_detail(self, query: CardQuery) -> tuple[float, str]:
        return self.core.selectivity_detail(query)

    def estimation_overhead(self, query: CardQuery) -> float:
        return self.core.estimator.estimation_overhead(query)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Counter snapshot, with cache counters folded in."""
        return self.core.stats()

    def close(self, timeout: float | None = None) -> bool:
        """Graceful bounded shutdown; see :meth:`EstimationCore.close`."""
        return self.core.close(timeout)

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
