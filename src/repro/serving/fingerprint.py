"""Canonical query fingerprints for the estimate cache.

Two queries that are *semantically* the same estimate must map to the same
cache key: predicate order must not matter, duplicated predicates must
collapse, and equivalent range spellings (``x >= 2 AND x <= 5`` versus
``x BETWEEN 2 AND 5``, repeated bounds, redundant looser bounds) must
normalize to one form.  The fingerprint therefore reduces each column's
conjunctive predicates to a canonical constraint record:

* an ``EQ`` value set and an ``NE`` value set (sorted, deduplicated);
* one ``IN`` set -- the intersection of all ``IN`` lists (AND semantics);
* one lower and one upper bound, each ``(value, strict)``, keeping only the
  tightest bound (``BETWEEN`` contributes both inclusive bounds).

Join conditions are normalized and sorted, OR-groups are deduplicated and
order-canonicalized, and the aggregate/group-by shape is included so COUNT,
COUNT DISTINCT and grouped variants never collide.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.sql.query import CardQuery, PredicateOp, TablePredicate

#: fingerprint type alias -- an opaque hashable tuple
Fingerprint = Hashable


def _value_key(value: float | tuple[float, ...]) -> Hashable:
    if isinstance(value, tuple):
        return tuple(sorted(float(v) for v in value))
    return float(value)


def _predicate_signature(pred: TablePredicate) -> Hashable:
    """Order-insensitive signature of one predicate (used inside OR-groups,
    where interval merging does not apply -- members are alternatives)."""
    value: Hashable
    if pred.op is PredicateOp.BETWEEN:
        low, high = pred.value  # type: ignore[misc]
        value = (float(low), float(high))
    else:
        value = _value_key(pred.value)
    return (pred.table, pred.column, pred.op.value, value)


def _tighter_low(
    current: tuple[float, bool] | None, candidate: tuple[float, bool]
) -> tuple[float, bool]:
    """Keep the larger lower bound; at equal values, strict (>) wins."""
    if current is None:
        return candidate
    if candidate[0] != current[0]:
        return candidate if candidate[0] > current[0] else current
    return (current[0], current[1] or candidate[1])


def _tighter_high(
    current: tuple[float, bool] | None, candidate: tuple[float, bool]
) -> tuple[float, bool]:
    """Keep the smaller upper bound; at equal values, strict (<) wins."""
    if current is None:
        return candidate
    if candidate[0] != current[0]:
        return candidate if candidate[0] < current[0] else current
    return (current[0], current[1] or candidate[1])


def column_constraint(predicates: Sequence[TablePredicate]) -> Hashable:
    """Canonical constraint record of one column's AND-ed predicates."""
    eq: set[float] = set()
    ne: set[float] = set()
    in_sets: list[frozenset[float]] = []
    low: tuple[float, bool] | None = None
    high: tuple[float, bool] | None = None
    for pred in predicates:
        if pred.op is PredicateOp.EQ:
            eq.add(float(pred.value))  # type: ignore[arg-type]
        elif pred.op is PredicateOp.NE:
            ne.add(float(pred.value))  # type: ignore[arg-type]
        elif pred.op is PredicateOp.IN:
            in_sets.append(frozenset(float(v) for v in pred.value))  # type: ignore[union-attr]
        elif pred.op in (PredicateOp.GE, PredicateOp.GT):
            low = _tighter_low(
                low, (float(pred.value), pred.op is PredicateOp.GT)  # type: ignore[arg-type]
            )
        elif pred.op in (PredicateOp.LE, PredicateOp.LT):
            high = _tighter_high(
                high, (float(pred.value), pred.op is PredicateOp.LT)  # type: ignore[arg-type]
            )
        elif pred.op is PredicateOp.BETWEEN:
            lo, hi = pred.value  # type: ignore[misc]
            low = _tighter_low(low, (float(lo), False))
            high = _tighter_high(high, (float(hi), False))
        else:  # pragma: no cover - exhaustive over PredicateOp
            raise AssertionError(f"unhandled predicate op {pred.op!r}")
    members = frozenset.intersection(*in_sets) if in_sets else None
    return (
        tuple(sorted(eq)),
        tuple(sorted(ne)),
        tuple(sorted(members)) if members is not None else None,
        low,
        high,
    )


def table_scope_fingerprint(
    table: str,
    predicates: Sequence[TablePredicate],
    or_groups: Sequence[Sequence[TablePredicate]],
) -> Fingerprint:
    """Canonical identity of one table's local predicate scope.

    This keys the shared-belief plan cache: one (table, AND-predicates,
    OR-groups) scope maps to one set of inference artifacts regardless of
    which join query produced it.  Same canonicalization rules as
    :func:`query_fingerprint`, restricted to a single table's predicates.
    """
    per_column: dict[str, list[TablePredicate]] = {}
    for pred in predicates:
        per_column.setdefault(pred.column, []).append(pred)
    predicate_part = tuple(
        (column, column_constraint(preds))
        for column, preds in sorted(per_column.items())
    )
    or_part = tuple(
        sorted(
            tuple(sorted(set(_predicate_signature(p) for p in group)))
            for group in or_groups
        )
    )
    return (table, predicate_part, or_part)


def request_fingerprint(
    task: str, strategy: str, fingerprint: Fingerprint
) -> Fingerprint:
    """The cache key of one serving request.

    ``task`` ("count" / "ndv" / "selectivity") and the answering
    strategy's cache scope are part of the key, so estimates produced
    under different strategies -- an A/B run, a router whose derating
    changed the route -- never cross-pollinate through the cache.
    ``fingerprint`` is the canonical :func:`query_fingerprint` (computed
    once by the caller; it is also the pairing key of the runtime
    feedback log, which deliberately stays strategy-free).
    """
    return (task, strategy, fingerprint)


def query_fingerprint(query: CardQuery) -> Fingerprint:
    """The canonical, hashable identity of one estimation request.

    Stable under predicate reordering, duplication, and equivalent range
    spellings; distinct across different tables, joins, aggregates, OR-group
    structure, and group-by keys.
    """
    per_column: dict[tuple[str, str], list[TablePredicate]] = {}
    for pred in query.predicates:
        per_column.setdefault((pred.table, pred.column), []).append(pred)
    predicate_part = tuple(
        (table, column, column_constraint(preds))
        for (table, column), preds in sorted(per_column.items())
    )
    join_part = tuple(
        sorted(
            (
                j.normalized().left_table,
                j.normalized().left_column,
                j.normalized().right_table,
                j.normalized().right_column,
            )
            for j in query.joins
        )
    )
    or_part = tuple(
        sorted(
            tuple(sorted(set(_predicate_signature(p) for p in group)))
            for group in query.or_groups
        )
    )
    return (
        tuple(sorted(query.tables)),
        join_part,
        predicate_part,
        or_part,
        tuple(sorted(query.group_by)),
        (query.agg.kind.value, query.agg.table, query.agg.column),
    )
