"""The transport-agnostic estimation core shared by every serving surface.

:class:`EstimationCore` is the cache / micro-batch / deadline-fallback
pipeline that used to live inside :class:`EstimationService` -- extracted so
the *same* object (same caches, same batching protocol, same degradation
contract, same stats) serves requests regardless of how they arrive:

* in-process -- :class:`repro.serving.service.EstimationService` wraps a
  core behind the :class:`CountEstimator`/:class:`NdvEstimator` interface
  for the optimizer's direct calls;
* over IPC -- each :mod:`repro.fleet` worker process wraps a core behind a
  length-prefixed frame protocol; the fleet is a *composition* of this core
  with process supervision, not a fork of the serving logic.

Request path::

    request -> fingerprint -> cache? -> admission -> [micro-batch] -> model
                   |            hit ^        | full          | deadline/error
                   |                |        v               v
                   +----------------+---- traditional fallback (recorded)

The cache stamp is taken *before* inference starts, so an estimate computed
against a model generation that got swapped mid-flight is never inserted as
current (see :mod:`repro.serving.cache`).

Shutdown is drain-ordered and bounded (:meth:`EstimationCore.close`): stop
admitting (new requests degrade to the fallback, they are still answered),
wait out in-flight work up to the timeout, close the micro-batcher (failing
anything a hung leader stranded), then tear down the pool -- abandoning a
hung worker thread rather than wedging interpreter exit.
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.loader import ModelLoader, RefreshReport
from repro.errors import EstimationError
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.estimators.strategy import as_strategy
from repro.feedback import FeedbackLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord, Tracer
from repro.serving.batching import MicroBatcher, default_batch_key
from repro.serving.cache import EstimateCache
from repro.serving.config import ServingConfig
from repro.serving.fingerprint import query_fingerprint, request_fingerprint
from repro.serving.plan_cache import PlanDistributionCache
from repro.serving.stats import ServiceStats, StatsCollector
from repro.serving.workers import WorkerPool
from repro.sql.query import AggKind, CardQuery

_UNSET = object()


@dataclass(frozen=True)
class ServedEstimate:
    """One answered request: the value plus how it was produced."""

    value: float
    #: "cache" | "model" | "fallback-timeout" | "fallback-error" |
    #: "fallback-rejected"
    source: str
    latency_s: float
    #: the answer came through the same-table micro-batcher
    batched: bool = False
    #: per-stage timings of this request (request-scoped trace)
    stages: tuple[SpanRecord, ...] = ()

    @property
    def degraded(self) -> bool:
        return self.source.startswith("fallback")

    @property
    def path(self) -> str:
        """The latency-accounting path: cache | batch | model | fallback."""
        if self.source == "cache":
            return "cache"
        if self.degraded:
            return "fallback"
        return "batch" if self.batched else "model"


class EstimationCore:
    """Cache + micro-batch + deadline-fallback pipeline, transport-free."""

    def __init__(
        self,
        estimator: CountEstimator,
        fallback_count: CountEstimator,
        fallback_ndv: NdvEstimator | None = None,
        config: ServingConfig | None = None,
        loader: ModelLoader | None = None,
        registry: MetricsRegistry | None = None,
        feedback: FeedbackLog | None = None,
        clock=None,
    ):
        """``clock`` (a :class:`repro.utils.clock.Clock`) supplies the
        request timestamps and deadline arithmetic; the default system
        clock preserves ``time.perf_counter`` semantics.  Under a simulated
        clock the configured deadline still bounds the *real* wait on the
        worker future -- virtual time does not advance while blocking.
        """
        self.estimator = estimator
        #: the protocol view of the estimator -- capability flags and the
        #: per-query cache scope come from here, never from getattr probes
        self.strategy = as_strategy(estimator)
        self.fallback_count = fallback_count
        self.fallback_ndv = fallback_ndv
        from repro.utils.clock import SYSTEM_CLOCK

        self.clock = clock if clock is not None else SYSTEM_CLOCK
        #: runtime feedback log; every served COUNT estimate (cache hits
        #: included -- they never reach the optimizer's provenance) is noted
        #: as pending so the executor can pair it with the observed actual
        self.feedback = feedback
        self.config = config or ServingConfig()
        self.registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self.tracer = Tracer(self.registry)
        self.stats_collector = StatsCollector(self.config.latency_window)
        # Surface the always-on per-path latency rings through the export.
        for hist in self.stats_collector.path_histograms.values():
            self.registry.adopt(hist)
        self.cache = (
            EstimateCache(self.config.cache_entries)
            if self.config.enable_cache
            else None
        )
        # Cross-query shared-belief plan cache: installed into the estimator
        # when it supports inference plans (ByteCard / FactorJoin), bumped by
        # the same loader refreshes that bump the estimate cache.
        self.plan_cache: PlanDistributionCache | None = None
        if self.config.enable_plan_cache and self.strategy.supports_plan_cache:
            self.plan_cache = PlanDistributionCache(
                self.config.plan_cache_entries, registry=self.registry
            )
            self.strategy.install_plan_cache(self.plan_cache)
        self.pool = WorkerPool(
            num_workers=self.config.num_workers,
            queue_capacity=self.config.queue_capacity,
        )
        self._join_batching = (
            self.config.enable_join_batching
            and self.strategy.supports_join_batching
        )
        self.batcher: MicroBatcher | None = None
        if self.config.enable_batching and self.strategy.supports_batching:
            self.batcher = MicroBatcher(
                batch_fn=self.strategy.estimate_count_batch,
                max_batch_size=self.config.max_batch_size,
                max_wait_ms=self.config.batch_wait_ms,
                on_batch=self.stats_collector.record_batch,
                key_fn=self._batch_key,
            )
        if loader is not None:
            loader.add_refresh_listener(self.on_loader_refresh)

    # ------------------------------------------------------------------
    # Model lifecycle integration
    # ------------------------------------------------------------------
    def on_loader_refresh(self, report: RefreshReport) -> None:
        """Invalidate cached estimates (and plan artifacts) for tables whose
        models changed."""
        caches = [c for c in (self.cache, self.plan_cache) if c is not None]
        if not caches:
            return
        tables: set[str] = set()
        bump_everything = False
        for kind, name in report.changed_keys():
            if kind == "bn":
                # Shard models ("table@shardN") serve their base table.
                tables.add(name.split("@", 1)[0])
            else:
                # RBX (universal or per-column) influences NDV answers for
                # any table; the coarse global bump keeps correctness.
                bump_everything = True
        if bump_everything:
            for cache in caches:
                cache.bump_all()
            self.registry.counter(
                "serving_cache_generation_bumps_total", scope="all"
            ).inc()
        elif tables:
            for cache in caches:
                cache.bump_tables(tables)
            self.registry.counter(
                "serving_cache_generation_bumps_total", scope="tables"
            ).inc(len(tables))

    # ------------------------------------------------------------------
    # Serving pipeline
    # ------------------------------------------------------------------
    def _deadline_s(self, deadline_ms) -> float | None:
        if deadline_ms is _UNSET:
            deadline_ms = self.config.deadline_ms
        return None if deadline_ms is None else deadline_ms / 1000.0

    def _serve(
        self,
        query: CardQuery,
        task: str,
        compute: Callable[[], float],
        fallback: Callable[[CardQuery], float],
        deadline_ms=_UNSET,
        batched: bool = False,
    ) -> ServedEstimate:
        start = self.clock.now()
        self.stats_collector.increment("requests")
        self.registry.counter("serving_requests_total", task=task).inc()
        stages: list[SpanRecord] = []
        scope = self.strategy.cache_scope(query)
        fingerprint = query_fingerprint(query)
        key = request_fingerprint(task, scope, fingerprint)
        if self.cache is not None:
            with self.tracer.span("serve.cache_lookup", sink=stages):
                cached = self.cache.get(key)
            if cached is not None:
                return self._finish(
                    cached, "cache", start, stages=stages, task=task, query=query,
                    fingerprint=fingerprint, strategy=scope,
                )
        stamp = self.cache.stamp(query.tables) if self.cache is not None else None
        future = self.pool.try_submit(compute)
        if future is None:
            self.stats_collector.record_fallback("rejected")
            self.registry.counter(
                "serving_fallbacks_total", reason="rejected"
            ).inc()
            with self.tracer.span("serve.fallback", sink=stages):
                value = fallback(query)
            return self._finish(
                value, "fallback-rejected", start, stages=stages, task=task,
                query=query, fingerprint=fingerprint, strategy=scope,
            )
        deadline = self._deadline_s(deadline_ms)
        remaining = None
        if deadline is not None:
            remaining = max(0.0, deadline - (self.clock.now() - start))
        compute_span = "serve.batch" if batched else "serve.model"
        try:
            with self.tracer.span(compute_span, sink=stages):
                value = float(future.result(timeout=remaining))
        except FutureTimeoutError:
            self.stats_collector.record_fallback("timeouts")
            self.registry.counter(
                "serving_fallbacks_total", reason="timeout"
            ).inc()
            self._cache_late_result(key, stamp, future)
            with self.tracer.span("serve.fallback", sink=stages):
                fell_back = fallback(query)
            return self._finish(
                fell_back, "fallback-timeout", start, stages=stages, task=task,
                query=query, fingerprint=fingerprint, strategy=scope,
            )
        except (Exception, FutureCancelledError):
            # CancelledError (a BaseException since 3.8) reaches here when a
            # bounded close cancels the queue under this request: it is
            # answered by the fallback like any other learned-path error.
            self.stats_collector.record_fallback("errors")
            self.registry.counter(
                "serving_fallbacks_total", reason="error"
            ).inc()
            with self.tracer.span("serve.fallback", sink=stages):
                fell_back = fallback(query)
            return self._finish(
                fell_back, "fallback-error", start, stages=stages, task=task,
                query=query, fingerprint=fingerprint, strategy=scope,
            )
        if self.cache is not None and stamp is not None:
            self.cache.put(key, value, stamp)
        return self._finish(
            value, "model", start, batched=batched, stages=stages, task=task,
            query=query, fingerprint=fingerprint, strategy=scope,
        )

    def _cache_late_result(self, key, stamp, future: Future) -> None:
        """A timed-out estimate still warms the cache once it completes --
        unless a loader refresh made its stamp stale in the meantime."""
        if self.cache is None or stamp is None:
            return
        cache = self.cache

        def on_done(completed: Future) -> None:
            if not completed.cancelled() and completed.exception() is None:
                cache.put(key, float(completed.result()), stamp)

        future.add_done_callback(on_done)

    def _finish(
        self,
        value: float,
        source: str,
        start: float,
        batched: bool = False,
        stages: list[SpanRecord] | None = None,
        task: str | None = None,
        query: CardQuery | None = None,
        fingerprint=None,
        strategy: str = "",
    ) -> ServedEstimate:
        latency = self.clock.now() - start
        estimate = ServedEstimate(
            value=float(value),
            source=source,
            latency_s=latency,
            batched=batched,
            stages=tuple(stages) if stages else (),
        )
        self.stats_collector.record_latency(latency, path=estimate.path)
        if (
            self.feedback is not None
            and task == "count"
            and fingerprint is not None
            and query is not None
        ):
            self.feedback.note_estimate(
                fingerprint,
                tuple(query.tables),
                estimate.value,
                source=source,
                strategy=strategy,
            )
        return estimate

    def _batch_key(self, query: CardQuery) -> str:
        """Micro-batch grouping: single-table queries by table, join queries
        by their (sorted) table set, so one leader primes shared plans."""
        if query.is_single_table():
            return default_batch_key(query)
        return "join::" + "|".join(sorted(query.tables))

    def _batchable(self, query: CardQuery) -> bool:
        if (
            self.batcher is None
            or query.agg.kind is not AggKind.COUNT
            or query.group_by
        ):
            return False
        return query.is_single_table() or self._join_batching

    # ------------------------------------------------------------------
    # COUNT serving
    # ------------------------------------------------------------------
    def serve_count(self, query: CardQuery, deadline_ms=_UNSET) -> ServedEstimate:
        batched = self._batchable(query)
        if batched:
            batcher = self.batcher
            assert batcher is not None
            compute: Callable[[], float] = lambda: batcher.estimate(query)
        else:
            compute = lambda: self.strategy.estimate_count(query)
        return self._serve(
            query,
            "count",
            compute,
            self.fallback_count.estimate_count,
            deadline_ms,
            batched=batched,
        )

    # ------------------------------------------------------------------
    # NDV serving
    # ------------------------------------------------------------------
    def serve_ndv(self, query: CardQuery, deadline_ms=_UNSET) -> ServedEstimate:
        primary = self.estimator
        if not isinstance(primary, NdvEstimator):
            if self.fallback_ndv is None:
                raise EstimationError("service has no NDV estimator")
            primary = self.fallback_ndv
        fallback = (
            self.fallback_ndv.estimate_ndv
            if self.fallback_ndv is not None
            else primary.estimate_ndv
        )
        return self._serve(
            query, "ndv", lambda: primary.estimate_ndv(query), fallback, deadline_ms
        )

    # ------------------------------------------------------------------
    # Planner-facing fast path
    # ------------------------------------------------------------------
    def selectivity_detail(self, query: CardQuery) -> tuple[float, str]:
        """Selectivity plus its provenance: cache | model | fallback-error.

        Served in the calling thread (no pool round-trip: the optimizer
        issues dozens of these per plan and the futures overhead would
        dominate); errors degrade to the traditional estimator.
        """
        self.stats_collector.increment("requests")
        self.registry.counter("serving_requests_total", task="selectivity").inc()
        scope = self.strategy.cache_scope(query)
        fingerprint = query_fingerprint(query)
        key = request_fingerprint("selectivity", scope, fingerprint)

        def noted(value: float, source: str) -> tuple[float, str]:
            if self.feedback is not None:
                self.feedback.note_estimate(
                    fingerprint,
                    tuple(query.tables),
                    value,
                    source=source,
                    unit="fraction",
                    strategy=scope,
                )
            return value, source

        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return noted(cached, "cache")
            stamp = self.cache.stamp(query.tables)
        try:
            value = float(self.strategy.selectivity(query))
        except Exception:
            self.stats_collector.record_fallback("errors")
            self.registry.counter(
                "serving_fallbacks_total", reason="error"
            ).inc()
            return noted(float(self.fallback_count.selectivity(query)), "fallback-error")
        if self.cache is not None:
            self.cache.put(key, value, stamp)
        return noted(value, "model")

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Counter snapshot, with cache counters folded in."""
        snapshot = self.stats_collector.snapshot()
        if self.cache is None:
            return snapshot
        return replace(
            snapshot,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_invalidations=self.cache.invalidations,
        )

    def close(self, timeout: float | None = None) -> bool:
        """Drain-ordered, bounded teardown.

        1. Stop admitting learned-path work -- requests arriving from now
           on are still *answered*, via the fallback-rejected path.
        2. Wait (up to ``timeout``) for in-flight requests to finish.
        3. Close the micro-batcher: if the drain timed out, queued batch
           followers are failed so their callers unblock into the fallback.
        4. Tear down the pool, cancelling the queue when the drain failed;
           a hung worker thread is abandoned (daemon), never joined forever.

        Returns ``True`` when everything drained within the budget.
        """
        start = time.monotonic()
        self.pool.refuse_new()
        drained = self.pool.drain(timeout)
        if self.batcher is not None:
            self.batcher.close()
        remaining = None
        if timeout is not None:
            remaining = max(0.0, timeout - (time.monotonic() - start))
        self.pool.shutdown(
            wait=True, timeout=remaining, cancel_futures=not drained
        )
        return drained

    def __enter__(self) -> "EstimationCore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
