"""The estimate cache: LRU over canonical fingerprints, generation-checked.

Entries are keyed by the canonical query fingerprint (see
:mod:`repro.serving.fingerprint`) and stamped with the **table generations**
that were current when the estimate was computed.  The Model Loader bumps a
table's generation whenever a refresh pass loads or evicts a model serving
that table; lookups lazily drop entries whose stamp no longer matches, so a
mid-flight model swap can never serve a stale-generation hit -- even for an
estimate that was still being computed when the swap happened (its stamp was
taken *before* inference started).

A global generation covers models that affect every table (e.g. the
universal RBX NDV network).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable

_MISS = object()


@dataclass
class _Entry:
    value: float
    #: (global_generation, ((table, generation), ...)) at compute time
    stamp: tuple[int, tuple[tuple[str, int], ...]]


class EstimateCache:
    """Bounded LRU cache with generation-based lazy invalidation."""

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._table_generation: dict[str, int] = {}
        self._global_generation = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------
    def bump_tables(self, tables: Iterable[str]) -> None:
        """Invalidate (lazily) every entry touching any of ``tables``."""
        with self._lock:
            for table in tables:
                self._table_generation[table] = (
                    self._table_generation.get(table, 0) + 1
                )

    def bump_all(self) -> None:
        """Invalidate (lazily) every entry in the cache."""
        with self._lock:
            self._global_generation += 1

    def stamp(self, tables: Iterable[str]) -> tuple[int, tuple[tuple[str, int], ...]]:
        """Current generations for ``tables`` -- take this *before* computing
        the estimate, and hand it to :meth:`put` afterwards."""
        with self._lock:
            return (
                self._global_generation,
                tuple(
                    (table, self._table_generation.get(table, 0))
                    for table in sorted(set(tables))
                ),
            )

    def _is_current(self, stamp: tuple[int, tuple[tuple[str, int], ...]]) -> bool:
        global_gen, table_gens = stamp
        if global_gen != self._global_generation:
            return False
        return all(
            self._table_generation.get(table, 0) == gen
            for table, gen in table_gens
        )

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> float | None:
        """The cached estimate, or ``None`` on miss / stale generation."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if not self._is_current(entry.stamp):
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def put(
        self,
        key: Hashable,
        value: float,
        stamp: tuple[int, tuple[tuple[str, int], ...]],
    ) -> bool:
        """Insert an estimate computed under ``stamp``.

        Returns ``False`` (and stores nothing) when the stamp is already
        stale -- the models changed while the estimate was in flight.
        """
        with self._lock:
            if not self._is_current(stamp):
                self.invalidations += 1
                return False
            self._entries[key] = _Entry(value=value, stamp=stamp)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
