"""The micro-batcher: one inference pass for concurrent same-table requests.

Single-table COUNT estimates against the same BN repeat the identical
variable-elimination setup (evidence construction, topological message
scheduling); :class:`MicroBatcher` groups requests that arrive within a
small window and answers them with **one** batched sum-product pass
(:meth:`TreeBayesNet.selectivity_batch`), amortizing that setup the way the
paper's Inference Engine amortizes ``initContext``.

Leader/follower protocol: the first request for a batch key becomes the
batch leader; it waits until the batch fills (``max_batch_size``) or the
window expires (``max_wait_ms``), then drains the whole queue and executes
it in ``max_batch_size`` chunks.  Followers block on their own item until
the leader delivers a value (or the batch's exception).

Batches are grouped by ``key_fn(query)``: the default keys on the query's
single table (the original same-table protocol), and the serving tier
passes a key function that also groups *join* queries sharing a table set,
so their shared-belief plans are primed by batched BN passes (see
:meth:`FactorJoinEstimator.estimate_join_batch`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import EstimationError
from repro.sql.query import CardQuery

#: ``batch_fn(key, queries) -> list[float]`` aligned with the input order
BatchFn = Callable[[str, list[CardQuery]], list[float]]


def default_batch_key(query: CardQuery) -> str:
    """The original same-table grouping: the query's (single) first table."""
    return query.tables[0]


class _Item:
    __slots__ = ("query", "value", "error", "done")

    def __init__(self, query: CardQuery):
        self.query = query
        self.value: float | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()

    def deliver(self, value: float) -> None:
        self.value = value
        self.done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()

    def result(self) -> float:
        self.done.wait()
        if self.error is not None:
            raise self.error
        assert self.value is not None
        return self.value


class MicroBatcher:
    """Groups concurrent COUNT requests sharing a batch key into passes."""

    def __init__(
        self,
        batch_fn: BatchFn,
        max_batch_size: int = 16,
        max_wait_ms: float = 1.0,
        on_batch: Callable[[int], None] | None = None,
        key_fn: Callable[[CardQuery], str] | None = None,
    ):
        """``on_batch(occupancy)`` is invoked once per executed chunk."""
        self.batch_fn = batch_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.on_batch = on_batch
        self.key_fn = key_fn if key_fn is not None else default_batch_key
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: dict[str, list[_Item]] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def estimate(self, query: CardQuery) -> float:
        """Blocking estimate through the batcher (call from worker threads)."""
        key = self.key_fn(query)
        item = _Item(query)
        with self._cond:
            if self._closed:
                raise EstimationError("micro-batcher is closed")
            queue = self._pending.setdefault(key, [])
            queue.append(item)
            is_leader = len(queue) == 1
            if not is_leader and len(queue) >= self.max_batch_size:
                # The batch is full -- wake the leader early.
                self._cond.notify_all()
        if is_leader:
            self._lead(key)
        return item.result()

    def _lead(self, key: str) -> None:
        """Wait out the batching window, then drain and execute the queue."""
        deadline = time.monotonic() + self.max_wait_s
        with self._cond:
            while (
                not self._closed
                and len(self._pending.get(key, ())) < self.max_batch_size
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = self._pending.pop(key, [])
        # Execute in chunks; late arrivals drained with the batch still ride
        # along (bounded by the worker pool, so this cannot grow unbounded).
        for start in range(0, len(batch), self.max_batch_size):
            chunk = batch[start : start + self.max_batch_size]
            try:
                values = self.batch_fn(key, [i.query for i in chunk])
                if len(values) != len(chunk):
                    raise RuntimeError(
                        f"batch_fn returned {len(values)} values for a "
                        f"chunk of {len(chunk)}"
                    )
            except BaseException as exc:
                for i in chunk:
                    i.fail(exc)
                continue
            if self.on_batch is not None:
                self.on_batch(len(chunk))
            for i, value in zip(chunk, values):
                i.deliver(float(value))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Fail every queued request and refuse new ones.

        Called *after* the worker pool drained (so normally nothing is
        queued); when a drain timed out, this is what unblocks followers
        still waiting on a batch a hung leader will never execute.
        """
        with self._cond:
            self._closed = True
            stranded = [
                item for queue in self._pending.values() for item in queue
            ]
            self._pending.clear()
            self._cond.notify_all()
        error = EstimationError("micro-batcher closed with requests queued")
        for item in stranded:
            item.fail(error)

    def pending_count(self, key: str | None = None) -> int:
        with self._lock:
            if key is not None:
                return len(self._pending.get(key, ()))
            return sum(len(q) for q in self._pending.values())
