"""Service counters and the :class:`ServiceStats` snapshot.

Every counter is maintained under one lock by :class:`StatsCollector`;
:meth:`StatsCollector.snapshot` produces an immutable :class:`ServiceStats`
that benchmarks and the Model Monitor can introspect without racing the
serving threads.

Latency is recorded **per serving path** (cache / batch / model /
fallback) in bounded :class:`repro.obs.Histogram` rings: a single shared
ring would let sub-microsecond cache hits dominate p99 and hide the model
path's tail, which is the quantity FactorJoin-style deployments actually
watch.  The aggregate p50/p90/p99 fields are kept for compatibility and
still cover every request.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.metrics.quantiles import quantile
from repro.obs.metrics import Histogram, HistogramSnapshot

#: the serving paths that get their own latency histogram
LATENCY_PATHS = ("cache", "batch", "model", "fallback")


@dataclass(frozen=True)
class ServiceStats:
    """Immutable snapshot of the service's counters."""

    #: total requests answered (every path: cache, model, fallback)
    requests: int = 0
    #: answered straight from the estimate cache
    cache_hits: int = 0
    #: looked up but absent (or stale) in the cache
    cache_misses: int = 0
    #: cache entries dropped lazily due to a generation bump
    cache_invalidations: int = 0
    #: micro-batches executed
    batches: int = 0
    #: requests answered through a micro-batch
    batched_requests: int = 0
    #: deadline-exceeded requests (answered by the fallback estimator)
    timeouts: int = 0
    #: learned-path errors (answered by the fallback estimator)
    errors: int = 0
    #: admission-control rejections (answered by the fallback estimator)
    rejected: int = 0
    #: total fallback answers (timeouts + errors + rejections)
    fallbacks: int = 0
    #: request latencies (seconds) -- p50/p90/p99 over the recent window,
    #: all paths conflated (kept for compatibility; prefer ``path_latencies``)
    p50_latency: float = 0.0
    p90_latency: float = 0.0
    p99_latency: float = 0.0
    #: per-path latency snapshots: cache / batch / model / fallback
    path_latencies: Mapping[str, HistogramSnapshot] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def mean_batch_occupancy(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0


class StatsCollector:
    """Thread-safe counter accumulation for one service."""

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._counts = {
            "requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_invalidations": 0,
            "batches": 0,
            "batched_requests": 0,
            "timeouts": 0,
            "errors": 0,
            "rejected": 0,
            "fallbacks": 0,
        }
        self._latencies: deque[float] = deque(maxlen=latency_window)
        # Always-on per-path rings (they ARE the bugfix); an observability
        # registry may additionally adopt them for export.
        self.path_histograms: dict[str, Histogram] = {
            path: Histogram(
                "serving_request_seconds",
                (("path", path),),
                window=latency_window,
            )
            for path in LATENCY_PATHS
        }

    def increment(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[counter] += amount

    def record_fallback(self, reason: str) -> None:
        """Count one degraded answer: ``reason`` is timeouts/errors/rejected."""
        with self._lock:
            self._counts[reason] += 1
            self._counts["fallbacks"] += 1

    def record_batch(self, occupancy: int) -> None:
        with self._lock:
            self._counts["batches"] += 1
            self._counts["batched_requests"] += occupancy

    def record_latency(self, seconds: float, path: str | None = None) -> None:
        with self._lock:
            self._latencies.append(seconds)
        if path is not None:
            self.path_histograms[path].observe(seconds)

    def snapshot(self) -> ServiceStats:
        with self._lock:
            latencies = list(self._latencies)
            counts = dict(self._counts)
        if latencies:
            p50, p90, p99 = (
                quantile(latencies, 0.50),
                quantile(latencies, 0.90),
                quantile(latencies, 0.99),
            )
        else:
            p50 = p90 = p99 = 0.0
        paths = {
            path: hist.snapshot()
            for path, hist in self.path_histograms.items()
            if hist.count
        }
        return ServiceStats(
            **counts,
            p50_latency=p50,
            p90_latency=p90,
            p99_latency=p99,
            path_latencies=paths,
        )
