"""The serving tier: concurrent estimation with batching, caching, and
deadline-aware fallback.

Wraps a :class:`~repro.core.bytecard.ByteCard` (or any estimator pair)
behind an in-process :class:`EstimationService` -- the reproduction of the
paper's production query path, where learned estimates are served inside a
warehouse under heavy traffic with strict latency budgets:

* :mod:`repro.serving.service`     -- the request pipeline: deadline
  enforcement, degradation to traditional estimators, per-request detail;
* :mod:`repro.serving.cache`       -- fingerprint-keyed LRU estimate cache
  with generation-based invalidation driven by Model Loader refreshes;
* :mod:`repro.serving.plan_cache`  -- cross-query cache of shared-belief
  plan artifacts (one BN pass per (table, predicate-fingerprint) scope),
  invalidated by the same loader generations;
* :mod:`repro.serving.batching`    -- the micro-batcher amortizing one BN
  sum-product pass over concurrent same-table COUNT requests;
* :mod:`repro.serving.workers`     -- the bounded worker pool with
  admission control (reject-to-fallback, never unbounded queueing);
* :mod:`repro.serving.fingerprint` -- canonical query fingerprints (order-
  and spelling-insensitive predicate normalization);
* :mod:`repro.serving.stats`       -- per-service counters and latency
  quantiles as an immutable snapshot;
* :mod:`repro.serving.config`      -- the service's tunables.
"""

from repro.serving.batching import MicroBatcher
from repro.serving.cache import EstimateCache
from repro.serving.config import ServingConfig
from repro.serving.core import EstimationCore
from repro.serving.fingerprint import query_fingerprint, table_scope_fingerprint
from repro.serving.plan_cache import PlanDistributionCache
from repro.serving.service import EstimationService, ServedEstimate
from repro.serving.stats import ServiceStats, StatsCollector
from repro.serving.workers import WorkerPool

__all__ = [
    "EstimationCore",
    "EstimationService",
    "ServedEstimate",
    "ServingConfig",
    "ServiceStats",
    "StatsCollector",
    "EstimateCache",
    "PlanDistributionCache",
    "MicroBatcher",
    "WorkerPool",
    "query_fingerprint",
    "table_scope_fingerprint",
]
