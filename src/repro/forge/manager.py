"""The forge manager: drift-triggered retraining, persisted and hot-swapped.

The closed loop the paper's Figure 2 implies but the in-process components
only approximated:

.. code-block:: text

    IngestionSignal / failing MonitorReport
        -> TrainingScheduler job       (dedup, priority, retry/backoff)
        -> ModelForgeService training  (isolated worker thread)
        -> ModelRegistry publish       (fresh timestamp)
        -> ArtifactStore.put           (atomic, checksummed, versioned)
        -> ModelLoader.refresh         (validate + hot-swap, generation bump)
        -> serving-cache invalidation  (loader listener in EstimationService)
        -> ModelMonitor re-assessment  (fallback lifted only when it passes)

A query thread never blocks on any of this: training runs in the forge
workers, and the swap is the loader's existing generation-stamped install.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.modelforge import IngestionSignal
from repro.core.monitor import MonitorReport
from repro.errors import ModelError, TrainingError
from repro.forge.config import ForgeConfig
from repro.forge.scheduler import ForgeJob, JobPriority, TrainingScheduler
from repro.forge.store import ArtifactRecord, ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bytecard import ByteCard


@dataclass(frozen=True)
class ForgeJobResult:
    """What one completed forge job produced."""

    artifact: ArtifactRecord
    #: the post-swap re-assessment (None when revalidation is off or the
    #: model kind is not monitorable per-table)
    report: MonitorReport | None = None

    @property
    def healthy(self) -> bool:
        return self.report is None or self.report.passed is not False


class ForgeManager:
    """Asynchronous model lifecycle around one :class:`ByteCard`."""

    def __init__(
        self,
        bytecard: "ByteCard",
        store: ArtifactStore,
        config: ForgeConfig | None = None,
        clock=None,
    ):
        """``clock`` (a :class:`repro.utils.clock.Clock`) is handed to the
        training scheduler so job timestamps and backoff deadlines can run
        on simulated time during streaming soaks; ``None`` keeps the system
        monotonic clock.
        """
        self.bytecard = bytecard
        self.store = store
        self.config = config or ForgeConfig()
        self.metrics = bytecard.obs
        self.scheduler = TrainingScheduler(
            runner=self._run_job,
            num_workers=self.config.num_workers,
            max_attempts=self.config.max_attempts,
            backoff_base_s=self.config.backoff_base_s,
            backoff_max_s=self.config.backoff_max_s,
            metrics=self.metrics,
            clock=clock,
        )
        # Publishing/refreshing mutates shared ByteCard state
        # (forge_service caches, loader contents, estimator assembly):
        # one publish at a time keeps that transition atomic while other
        # workers keep training.
        self._publish_lock = threading.Lock()
        #: tables whose post-retrain re-assessment is in flight -- their
        #: reports must not re-trigger submission (no retrain storms)
        self._muted: set[str] = set()
        self._muted_lock = threading.Lock()
        self._closed = False
        bytecard.monitor.add_assessment_listener(self._on_assessment)
        if self.config.persist_current:
            self.persist_all()

    # ------------------------------------------------------------------
    # Signal intake
    # ------------------------------------------------------------------
    def submit_signal(
        self, signal: IngestionSignal, priority: int = JobPriority.NORMAL
    ) -> ForgeJob:
        """An upstream data-change notification -> one (coalesced) job."""
        # The forge service keeps its dirty-table set and join-bucket
        # invalidation logic authoritative.
        self.bytecard.forge_service.ingest_signal(signal)
        return self.scheduler.submit(
            "bn",
            signal.table,
            priority=priority,
            details={"source": signal.source, **signal.details},
        )

    def submit_retrain(
        self, kind: str, name: str, priority: int = JobPriority.HIGH
    ) -> ForgeJob:
        """Directly schedule a retrain (the monitor path uses HIGH)."""
        if kind == "bn":
            self.bytecard.forge_service.ingest_signal(
                IngestionSignal(table=name, source="forge-retrain")
            )
        return self.scheduler.submit(kind, name, priority=priority)

    # ------------------------------------------------------------------
    # Monitor listener: failing/drifting assessments become jobs
    # ------------------------------------------------------------------
    def _on_assessment(self, report: MonitorReport, kind: str) -> None:
        if self._closed:
            return
        with self._muted_lock:
            if report.name in self._muted:
                return
        failing = report.passed is False
        if not failing and not self._drifting(report.name):
            return
        reason = "failing" if failing else "drifting"
        if self.metrics.enabled:
            self.metrics.counter(
                "forge_drift_triggers_total", kind=kind, reason=reason
            ).inc()
        try:
            if kind == "count":
                self.submit_retrain(
                    "bn", report.name, priority=self._retrain_priority(report)
                )
            elif kind == "ndv":
                # per-column RBX drift retrains the shared universal
                # network; per-column jobs coalesce into one.
                self.submit_retrain("rbx", "universal")
        except RuntimeError:  # scheduler already shut down
            pass

    def _retrain_priority(self, report: MonitorReport) -> int:
        """Rank a COUNT retrain by *observed* error mass.

        Assessments backed by runtime feedback carry the evidence's summed
        log-Q-Error (:attr:`MonitorReport.error_mass`); any leftover
        feedback still in the attached log adds to it.  Purely synthetic
        assessments (no runtime evidence) keep the legacy fixed HIGH.
        """
        mass = report.error_mass
        feedback = getattr(self.bytecard.monitor, "feedback", None)
        if feedback is not None:
            mass += feedback.error_mass(report.name)
        if not report.feedback_qerrors and mass == 0.0:
            return JobPriority.HIGH
        if mass >= self.config.error_mass_urgent:
            return JobPriority.URGENT
        if mass >= self.config.error_mass_high:
            return JobPriority.HIGH
        return JobPriority.NORMAL

    def _drifting(self, name: str) -> bool:
        history = self.bytecard.monitor.drift.get(name, [])
        if len(history) < 2:
            return False
        previous, latest = history[-2], history[-1]
        return previous > 0 and latest > previous * self.config.drift_ratio

    def run_monitor_cycle(self) -> list[MonitorReport]:
        """One monitor pass; failing/drifting models self-schedule jobs."""
        return self.bytecard.run_monitor(fine_tune=False)

    # ------------------------------------------------------------------
    # Job execution (forge worker threads)
    # ------------------------------------------------------------------
    def _run_job(self, job: ForgeJob) -> ForgeJobResult:
        bytecard = self.bytecard
        with self._publish_lock:
            if job.kind == "bn":
                infos = bytecard.forge_service.train_count_models(
                    bytecard.bundle, tables=[job.name]
                )
                if not infos:
                    raise TrainingError(
                        f"no trainable columns for table {job.name!r}"
                    )
            elif job.kind == "rbx":
                bytecard.forge_service.train_rbx_universal()
            else:
                raise TrainingError(f"no trainer for model kind {job.kind!r}")
            record = bytecard.registry.latest(job.kind, job.name)
            assert record is not None  # the trainer just published it
            artifact = self.store.put(
                job.kind, job.name, record.blob, timestamp=record.timestamp
            )
            # Hot swap: loader pass (generation bump -> serving-cache
            # invalidation via its listeners) + estimator reassembly.
            bytecard.refresh()
            report = None
            if job.kind == "bn" and self.config.revalidate:
                report = self._revalidate(job.name)
        return ForgeJobResult(artifact=artifact, report=report)

    def _revalidate(self, table: str) -> MonitorReport | None:
        """Re-assess a freshly swapped model; its report must not loop
        back into the scheduler."""
        with self._muted_lock:
            self._muted.add(table)
        try:
            return self.bytecard.reassess_table(table)
        finally:
            with self._muted_lock:
                self._muted.discard(table)

    # ------------------------------------------------------------------
    # Store bridge
    # ------------------------------------------------------------------
    def persist_all(self) -> list[tuple[str, str]]:
        """Persist the current registry contents into the artifact store.

        Unchanged blobs (same checksum as the stored current version) are
        skipped, so repeated calls do not mint redundant versions.
        """
        return self.store.persist_registry(self.bytecard.registry)

    def rollback(self, kind: str, name: str) -> ArtifactRecord:
        """Roll the stored model back one version and hot-swap it in.

        The rolled-back blob is republished under a fresh registry
        timestamp so the loader (which only considers newer timestamps)
        installs it like any other update.
        """
        with self._publish_lock:
            artifact = self.store.rollback(kind, name)
            blob = self.store.read_blob(artifact)
            self.bytecard.registry.publish(kind, name, blob)
            self.bytecard.refresh()
        if self.metrics.enabled:
            self.metrics.counter("forge_rollbacks_total", kind=kind).inc()
        return artifact

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Wait for every queued/running job to finish."""
        return self.scheduler.drain(timeout)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Graceful shutdown: stop admissions, finish queued work."""
        self._closed = True
        self.scheduler.shutdown(drain=drain, timeout=timeout)

    def __enter__(self) -> "ForgeManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def raise_if_incomplete(store: ArtifactStore) -> None:
    """Guard for warm starts: an empty store cannot serve anything."""
    if not store.keys():
        raise ModelError(
            f"artifact store at {store.directory} holds no complete "
            "artifacts to warm-start from"
        )
