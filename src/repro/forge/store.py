"""The persistent artifact store: versioned model blobs that survive restarts.

The in-memory :class:`~repro.core.registry.ModelRegistry` is the paper's
cloud store *as seen by one process*; a restart loses every trained model
and forces a full retrain.  The :class:`ArtifactStore` closes that gap with
an on-disk layout built for crash safety:

* every blob is written **atomically** -- to a ``.tmp`` file first, fsynced,
  then renamed into place -- so a crash never leaves a half-written artifact
  under a final name;
* a single JSON **manifest** (also replaced atomically) records, per
  version, the file name, byte size, and SHA-256 checksum;
* **startup recovery** walks the manifest, discards entries whose file is
  missing, truncated, or checksum-mismatched (torn writes), deletes stale
  ``.tmp`` files and orphan blobs, and repoints ``current`` at the newest
  surviving version;
* the last *K* versions are retained per model, and :meth:`rollback`
  repoints ``current`` at the previous version without touching bytes.

``sync_registry`` republishes every current artifact into a fresh
:class:`ModelRegistry`, which is how a restarted ByteCard warm-starts and
serves estimates with **zero** training calls.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ModelError
from repro.obs.metrics import MetricsRegistry

_MANIFEST = "MANIFEST.json"
_FORMAT = 1


@dataclass(frozen=True)
class ArtifactRecord:
    """One persisted model version."""

    kind: str
    name: str
    version: int
    file: str
    sha256: str
    nbytes: int
    #: the registry timestamp the blob was published under (0 if unknown)
    timestamp: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.name)


@dataclass
class RecoveryReport:
    """What startup recovery found and repaired."""

    #: (kind, name, version, reason) of manifest entries discarded
    discarded: list[tuple[str, str, int, str]] = field(default_factory=list)
    #: stale ``.tmp`` files removed (interrupted writes)
    removed_tmp: list[str] = field(default_factory=list)
    #: blob files on disk that no manifest entry references
    orphans: list[str] = field(default_factory=list)
    #: the manifest itself was unreadable and the store restarted empty
    manifest_corrupt: bool = False

    @property
    def clean(self) -> bool:
        return not (
            self.discarded or self.removed_tmp or self.orphans
            or self.manifest_corrupt
        )


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class ArtifactStore:
    """Crash-safe versioned blob store under one directory."""

    def __init__(
        self,
        directory: str | Path,
        retention: int = 4,
        metrics: MetricsRegistry | None = None,
    ):
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.directory = Path(directory)
        self.retention = retention
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=False)
        )
        self.blob_dir = self.directory / "blobs"
        self.blob_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        #: "kind::name" -> {"kind", "name", "current", "versions": [...]}
        self._entries: dict[str, dict] = {}
        self.recovery = self._recover()
        self._record_gauges()

    # ------------------------------------------------------------------
    # Paths and manifest I/O
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    @staticmethod
    def _entry_key(kind: str, name: str) -> str:
        return f"{kind}::{name}"

    def _write_manifest_locked(self) -> None:
        payload = json.dumps(
            {"format": _FORMAT, "entries": self._entries},
            indent=2,
            sort_keys=True,
        ).encode("utf-8")
        tmp = self.manifest_path.with_name(_MANIFEST + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)
        _fsync_dir(self.directory)

    def _record(self, entry: dict, version_info: dict) -> ArtifactRecord:
        return ArtifactRecord(
            kind=entry["kind"],
            name=entry["name"],
            version=int(version_info["version"]),
            file=version_info["file"],
            sha256=version_info["sha256"],
            nbytes=int(version_info["nbytes"]),
            timestamp=int(version_info.get("timestamp", 0)),
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveryReport:
        report = RecoveryReport()
        # 1. stale tmp files are torn writes by definition: remove them.
        for tmp in list(self.directory.glob("*.tmp")) + list(
            self.blob_dir.glob("*.tmp")
        ):
            tmp.unlink(missing_ok=True)
            report.removed_tmp.append(tmp.name)
        # 2. load the manifest (atomically replaced, so either absent,
        #    old, or new -- but a hand-edited/corrupt one must not crash).
        entries: dict[str, dict] = {}
        if self.manifest_path.exists():
            try:
                doc = json.loads(self.manifest_path.read_text("utf-8"))
                entries = dict(doc.get("entries", {}))
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                report.manifest_corrupt = True
                entries = {}
        # 3. validate every version: file present, size and checksum match.
        dirty = report.manifest_corrupt
        for key, entry in list(entries.items()):
            survivors = []
            for info in entry.get("versions", []):
                path = self.blob_dir / info["file"]
                reason = None
                if not path.exists():
                    reason = "missing blob file"
                else:
                    blob = path.read_bytes()
                    if len(blob) != int(info["nbytes"]):
                        reason = (
                            f"truncated blob ({len(blob)} of "
                            f"{info['nbytes']} bytes)"
                        )
                    elif _sha256(blob) != info["sha256"]:
                        reason = "checksum mismatch"
                if reason is None:
                    survivors.append(info)
                else:
                    path.unlink(missing_ok=True)
                    report.discarded.append(
                        (entry["kind"], entry["name"], int(info["version"]), reason)
                    )
                    dirty = True
            if not survivors:
                del entries[key]
                continue
            entry["versions"] = survivors
            versions = {int(v["version"]) for v in survivors}
            if int(entry.get("current", -1)) not in versions:
                # the current pointer referenced a torn write: fall back to
                # the newest complete version.
                entry["current"] = max(versions)
                dirty = True
        # 4. blobs no manifest entry references are orphans of interrupted
        #    put() calls (blob renamed, manifest not yet updated): remove.
        referenced = {
            info["file"]
            for entry in entries.values()
            for info in entry["versions"]
        }
        for path in self.blob_dir.iterdir():
            if path.is_file() and path.name not in referenced:
                path.unlink(missing_ok=True)
                report.orphans.append(path.name)
        self._entries = entries
        if dirty or report.orphans:
            self._write_manifest_locked()
        if self.metrics.enabled and not report.clean:
            self.metrics.counter("artifact_store_recovered_versions_total").inc(
                len(report.discarded)
            )
        return report

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(
        self, kind: str, name: str, blob: bytes, timestamp: int = 0
    ) -> ArtifactRecord:
        """Persist a new version of ``(kind, name)`` atomically."""
        if not blob:
            raise ModelError("refusing to persist an empty model blob")
        with self._lock:
            key = self._entry_key(kind, name)
            entry = self._entries.setdefault(
                key, {"kind": kind, "name": name, "current": 0, "versions": []}
            )
            version = 1 + max(
                (int(v["version"]) for v in entry["versions"]), default=0
            )
            file_name = f"{kind}__{name}__v{version}.bcm"
            final = self.blob_dir / file_name
            tmp = self.blob_dir / (file_name + ".tmp")
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            _fsync_dir(self.blob_dir)
            info = {
                "version": version,
                "file": file_name,
                "sha256": _sha256(blob),
                "nbytes": len(blob),
                "timestamp": int(timestamp),
            }
            entry["versions"].append(info)
            entry["current"] = version
            self._prune_locked(entry)
            self._write_manifest_locked()
            record = self._record(entry, info)
        if self.metrics.enabled:
            self.metrics.counter(
                "artifact_store_writes_total", kind=kind
            ).inc()
            self._record_gauges()
        return record

    def _prune_locked(self, entry: dict) -> None:
        """Retain the last K versions (plus ``current``, always)."""
        versions = entry["versions"]
        if len(versions) <= self.retention:
            return
        keep = versions[-self.retention:]
        kept_numbers = {int(v["version"]) for v in keep}
        current = int(entry["current"])
        for info in versions[: -self.retention]:
            if int(info["version"]) == current:
                keep.insert(0, info)
                kept_numbers.add(current)
                continue
            (self.blob_dir / info["file"]).unlink(missing_ok=True)
        entry["versions"] = sorted(keep, key=lambda v: int(v["version"]))

    def rollback(self, kind: str, name: str) -> ArtifactRecord:
        """Repoint ``current`` at the version preceding it.

        The artifact bytes stay on disk; only the pointer moves.  Raises
        :class:`ModelError` when there is no older retained version.
        """
        with self._lock:
            entry = self._entries.get(self._entry_key(kind, name))
            if entry is None:
                raise ModelError(f"no artifacts stored for {kind}/{name}")
            current = int(entry["current"])
            older = [
                v for v in entry["versions"] if int(v["version"]) < current
            ]
            if not older:
                raise ModelError(
                    f"{kind}/{name} has no version older than v{current} "
                    "to roll back to"
                )
            target = max(older, key=lambda v: int(v["version"]))
            entry["current"] = int(target["version"])
            self._write_manifest_locked()
            record = self._record(entry, target)
        if self.metrics.enabled:
            self.metrics.counter(
                "artifact_store_rollbacks_total", kind=kind
            ).inc()
        return record

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def keys(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(
                (entry["kind"], entry["name"])
                for entry in self._entries.values()
            )

    def current(self, kind: str, name: str) -> ArtifactRecord | None:
        """The serving version -- the latest, unless rolled back."""
        with self._lock:
            entry = self._entries.get(self._entry_key(kind, name))
            if entry is None:
                return None
            current = int(entry["current"])
            for info in entry["versions"]:
                if int(info["version"]) == current:
                    return self._record(entry, info)
            return None

    def versions(self, kind: str, name: str) -> list[ArtifactRecord]:
        with self._lock:
            entry = self._entries.get(self._entry_key(kind, name))
            if entry is None:
                return []
            return [self._record(entry, info) for info in entry["versions"]]

    def read_blob(self, record: ArtifactRecord) -> bytes:
        """Load and checksum-verify one artifact's bytes."""
        blob = (self.blob_dir / record.file).read_bytes()
        if len(blob) != record.nbytes or _sha256(blob) != record.sha256:
            raise ModelError(
                f"artifact {record.kind}/{record.name} v{record.version} "
                "failed its checksum on read"
            )
        return blob

    def total_bytes(self) -> int:
        with self._lock:
            return sum(
                int(info["nbytes"])
                for entry in self._entries.values()
                for info in entry["versions"]
            )

    # ------------------------------------------------------------------
    # Registry bridge
    # ------------------------------------------------------------------
    def sync_registry(self, registry) -> list[tuple[str, str]]:
        """Publish every key's *current* artifact into ``registry``.

        The warm-start path: a fresh :class:`ModelRegistry` seeded from
        disk, which the Model Loader then loads exactly as if ModelForge
        had just trained everything.
        """
        published: list[tuple[str, str]] = []
        for kind, name in self.keys():
            record = self.current(kind, name)
            if record is None:  # pragma: no cover - keys() implies current
                continue
            registry.publish(kind, name, self.read_blob(record))
            published.append((kind, name))
        return published

    def persist_registry(self, registry) -> list[tuple[str, str]]:
        """Persist every key's latest registry blob into the store.

        The inverse of :meth:`sync_registry`: memory -> disk.  Unchanged
        blobs (same checksum as the stored current version) are skipped,
        so repeated calls do not mint redundant versions.  This is how
        ``ByteCard.fleet`` snapshots a live instance's models so worker
        processes can warm-start from them with zero training.
        """
        persisted: list[tuple[str, str]] = []
        for kind, name in registry.keys():
            record = registry.latest(kind, name)
            if record is None:  # pragma: no cover - keys() implies latest
                continue
            current = self.current(kind, name)
            if current is not None and current.sha256 == _sha256(record.blob):
                continue
            self.put(kind, name, record.blob, timestamp=record.timestamp)
            persisted.append((kind, name))
        return persisted

    # ------------------------------------------------------------------
    def _record_gauges(self) -> None:
        if not self.metrics.enabled:
            return
        with self._lock:
            versions = sum(
                len(entry["versions"]) for entry in self._entries.values()
            )
            models = len(self._entries)
        self.metrics.gauge("artifact_store_models").set(models)
        self.metrics.gauge("artifact_store_versions").set(versions)
        self.metrics.gauge("artifact_store_bytes").set(self.total_bytes())
