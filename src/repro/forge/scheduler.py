"""The background training scheduler: async jobs the query path never sees.

The paper isolates ModelForge so training "does not interfere with query
processing"; here that isolation is a priority job queue drained by a small
bounded worker pool:

* **dedup/coalescing** -- a second signal for a ``(kind, name)`` that is
  already pending merges into the existing job (details folded in, the more
  urgent priority kept) instead of queueing duplicate training work.  A key
  whose job is already *running* gets a fresh pending job: the data changed
  again mid-training, so one more cycle is genuinely needed;
* **retry with exponential backoff** -- a failing job is requeued with a
  doubling delay until ``max_attempts`` is exhausted, then marked FAILED;
* **cancellation** -- pending jobs can be cancelled; running ones finish
  (training is not preemptible);
* **graceful drain** -- shutdown stops admissions, finishes queued work,
  then joins the workers.

Instrumented throughout: queue-depth/running gauges, submit/coalesce/
retry/outcome counters, queue-to-done and per-attempt latency histograms,
and a ``forge.job`` span per attempt.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.utils.clock import SYSTEM_CLOCK, Clock


class JobPriority:
    """Smaller sorts earlier; gaps leave room for custom levels."""

    URGENT = 0
    HIGH = 10
    NORMAL = 20
    LOW = 30


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: a retry found a newer pending job for the same key and yielded to it
    SUPERSEDED = "superseded"

    @property
    def terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING)


@dataclass
class ForgeJob:
    """One unit of background training work."""

    kind: str
    name: str
    priority: int = JobPriority.NORMAL
    details: dict = field(default_factory=dict)
    state: JobState = JobState.PENDING
    attempts: int = 0
    error: str | None = None
    result: object = None
    created_s: float = 0.0
    finished_s: float = 0.0
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.name)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)


class TrainingScheduler:
    """Priority queue + bounded worker pool around one job runner."""

    def __init__(
        self,
        runner: Callable[[ForgeJob], object],
        num_workers: int = 2,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 5.0,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
    ):
        """``clock`` is the scheduler's only time source (job timestamps,
        backoff deadlines, drain budgets); the default is the system
        monotonic clock, and the stream soak driver passes a
        :class:`repro.stream.SimClock` to run the forge on virtual time.
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.runner = runner
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.clock: Clock = clock if clock is not None else SYSTEM_CLOCK
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=False)
        )
        self.tracer = Tracer(self.metrics)
        self._cond = threading.Condition()
        #: (priority, ready_at, seq, job) -- stale entries skipped lazily
        self._heap: list[tuple[int, float, int, ForgeJob]] = []
        #: pending jobs by key, the dedup/coalesce index
        self._pending: dict[tuple[str, str], ForgeJob] = {}
        self._running = 0
        self._seq = itertools.count()
        self._accepting = True
        self._stop = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-forge-{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        name: str,
        priority: int = JobPriority.NORMAL,
        details: dict | None = None,
    ) -> ForgeJob:
        """Enqueue training for ``(kind, name)``; coalesces with a pending
        job for the same key."""
        with self._cond:
            if not self._accepting:
                raise RuntimeError("scheduler is shut down")
            existing = self._pending.get((kind, name))
            if existing is not None:
                if details:
                    existing.details.update(details)
                if priority < existing.priority:
                    # escalate: requeue at the more urgent priority
                    existing.priority = priority
                    self._push_locked(existing, ready_at=self.clock.now())
                self._counter("forge_jobs_coalesced_total", kind=kind)
                return existing
            job = ForgeJob(
                kind=kind,
                name=name,
                priority=priority,
                details=dict(details or {}),
                created_s=self.clock.now(),
            )
            self._pending[job.key] = job
            self._push_locked(job, ready_at=job.created_s)
            self._counter("forge_jobs_submitted_total", kind=kind)
            self._gauges_locked()
            return job

    def _push_locked(self, job: ForgeJob, ready_at: float) -> None:
        heapq.heappush(
            self._heap, (job.priority, ready_at, next(self._seq), job)
        )
        self._cond.notify()

    # ------------------------------------------------------------------
    # Cancellation / drain / shutdown
    # ------------------------------------------------------------------
    def cancel(self, kind: str, name: str) -> bool:
        """Cancel a *pending* job; running jobs are not preempted."""
        with self._cond:
            job = self._pending.pop((kind, name), None)
            if job is None:
                return False
            self._finish_locked(job, JobState.CANCELLED)
            self._counter("forge_jobs_cancelled_total", kind=kind)
            self._gauges_locked()
            return True

    def cancel_all(self) -> int:
        with self._cond:
            keys = list(self._pending)
        return sum(self.cancel(kind, name) for kind, name in keys)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted job reaches a terminal state."""
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._cond:
            while self._pending or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - self.clock.now()
                    if remaining <= 0:
                        return False
                self._cond.wait(self.clock.wait_timeout(remaining))
        return True

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> bool:
        """Stop admissions; optionally finish queued work; join workers."""
        with self._cond:
            self._accepting = False
        drained = True
        if drain:
            drained = self.drain(timeout)
        else:
            self.cancel_all()
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        return drained

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        with self._cond:
            return len(self._pending)

    def running_count(self) -> int:
        with self._cond:
            return self._running

    def pending_keys(self) -> list[tuple[str, str]]:
        with self._cond:
            return sorted(self._pending)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _next_job_locked(self) -> tuple[ForgeJob | None, float | None]:
        """The next ready job, or how long to wait for one."""
        now = self.clock.now()
        while self._heap:
            priority, ready_at, seq, job = self._heap[0]
            stale = (
                job.state is not JobState.PENDING
                or self._pending.get(job.key) is not job
                or priority != job.priority
            )
            if stale:
                heapq.heappop(self._heap)
                continue
            if ready_at > now:
                # earliest entry not ready: sleep until it (a more urgent
                # *ready* entry would have sorted... not necessarily, so
                # scan for any ready entry first)
                ready = [
                    (p, r, s, j)
                    for (p, r, s, j) in self._heap
                    if r <= now
                    and j.state is JobState.PENDING
                    and self._pending.get(j.key) is j
                    and p == j.priority
                ]
                if ready:
                    best = min(ready)
                    self._heap.remove(best)
                    heapq.heapify(self._heap)
                    return self._claim_locked(best[3]), None
                return None, ready_at - now
            heapq.heappop(self._heap)
            return self._claim_locked(job), None
        return None, None

    def _claim_locked(self, job: ForgeJob) -> ForgeJob:
        del self._pending[job.key]
        job.state = JobState.RUNNING
        self._running += 1
        self._gauges_locked()
        return job

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                job = None
                while not self._stop:
                    job, wait_s = self._next_job_locked()
                    if job is not None:
                        break
                    self._cond.wait(self.clock.wait_timeout(wait_s))
                if job is None:  # stopping
                    return
            self._execute(job)

    def _execute(self, job: ForgeJob) -> None:
        job.attempts += 1
        started = self.clock.now()
        try:
            with self.tracer.span("forge.job", kind=job.kind):
                result = self.runner(job)
        except Exception as exc:  # noqa: BLE001 - any training failure retries
            self._observe("forge_job_run_seconds", self.clock.now() - started)
            self._on_failure(job, exc)
        else:
            self._observe("forge_job_run_seconds", self.clock.now() - started)
            with self._cond:
                job.result = result
                self._running -= 1
                self._finish_locked(job, JobState.SUCCEEDED)
                self._counter("forge_jobs_succeeded_total", kind=job.kind)
                self._gauges_locked()
                self._cond.notify_all()

    def _on_failure(self, job: ForgeJob, exc: Exception) -> None:
        with self._cond:
            self._running -= 1
            job.error = f"{type(exc).__name__}: {exc}"
            if job.attempts >= self.max_attempts:
                self._finish_locked(job, JobState.FAILED)
                self._counter("forge_jobs_failed_total", kind=job.kind)
            elif self._pending.get(job.key) is not None:
                # a newer job for this key arrived while we were training;
                # it will retrain anyway -- this retry would be redundant.
                self._finish_locked(job, JobState.SUPERSEDED)
            else:
                backoff = min(
                    self.backoff_max_s,
                    self.backoff_base_s * (2 ** (job.attempts - 1)),
                )
                job.state = JobState.PENDING
                self._pending[job.key] = job
                self._push_locked(job, ready_at=self.clock.now() + backoff)
                self._counter("forge_job_retries_total", kind=job.kind)
            self._gauges_locked()
            self._cond.notify_all()

    def _finish_locked(self, job: ForgeJob, state: JobState) -> None:
        job.state = state
        job.finished_s = self.clock.now()
        self._observe(
            "forge_job_latency_seconds", job.finished_s - job.created_s
        )
        job._done.set()

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def _counter(self, name: str, **labels) -> None:
        if self.metrics.enabled:
            self.metrics.counter(name, **labels).inc()

    def _observe(self, name: str, value: float) -> None:
        if self.metrics.enabled:
            self.metrics.histogram(name).observe(value)

    def _gauges_locked(self) -> None:
        if self.metrics.enabled:
            self.metrics.gauge("forge_queue_depth").set(len(self._pending))
            self.metrics.gauge("forge_jobs_running").set(self._running)

    # ------------------------------------------------------------------
    def __enter__(self) -> "TrainingScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)
