"""repro.forge -- the asynchronous model-lifecycle subsystem.

Three pieces close the paper's training loop end to end:

* :mod:`repro.forge.scheduler` -- a background training scheduler: priority
  job queue with per-``(kind, name)`` dedup/coalescing, a bounded worker
  pool, retry with exponential backoff, cancellation, and graceful drain;
* :mod:`repro.forge.store` -- a persistent artifact store: versioned
  on-disk model blobs written atomically with checksums, a JSON manifest,
  retention, rollback, and crash recovery that discards torn writes;
* :mod:`repro.forge.manager` -- the drift-triggered retrain loop: monitor
  assessments and ingestion signals become jobs, and every trained model
  flows store -> registry -> loader hot-swap -> serving-cache invalidation
  -> re-assessment without stalling a single query.

Entry points: ``ByteCard.forge(store_dir)`` builds a manager bound to a
running instance; ``ByteCard.from_store(bundle, store_dir)`` warm-starts a
fresh instance from disk with zero training calls.
"""

from repro.forge.config import ForgeConfig
from repro.forge.manager import ForgeJobResult, ForgeManager
from repro.forge.scheduler import (
    ForgeJob,
    JobPriority,
    JobState,
    TrainingScheduler,
)
from repro.forge.store import ArtifactRecord, ArtifactStore, RecoveryReport

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "ForgeConfig",
    "ForgeJob",
    "ForgeJobResult",
    "ForgeManager",
    "JobPriority",
    "JobState",
    "RecoveryReport",
    "TrainingScheduler",
]
