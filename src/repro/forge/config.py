"""Configuration of the asynchronous model-lifecycle subsystem."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ForgeConfig:
    """Knobs of the forge scheduler, store, and retrain loop."""

    # -- scheduler ------------------------------------------------------
    #: background training workers (training is CPU-bound; keep this small
    #: so it cannot starve the serving tier)
    num_workers: int = 2
    #: attempts per job before it is marked FAILED (first run + retries)
    max_attempts: int = 3
    #: first retry delay; doubles per attempt (exponential backoff)
    backoff_base_s: float = 0.05
    #: backoff ceiling
    backoff_max_s: float = 5.0

    # -- artifact store -------------------------------------------------
    #: versions retained per (kind, name); older artifacts are pruned
    retention: int = 4

    # -- drift-triggered retraining -------------------------------------
    #: observed-error-mass thresholds (sum of log-Q-Error over the runtime
    #: feedback behind a failing assessment): at or above ``urgent`` the
    #: retrain preempts everything (URGENT), at or above ``high`` it takes
    #: the monitor path's usual HIGH; below, it queues as NORMAL -- a model
    #: failed by thin or mild evidence must not starve a badly broken one
    error_mass_high: float = 10.0
    error_mass_urgent: float = 40.0
    #: a monitor assessment whose p90 Q-Error grew by more than this factor
    #: over the previous assessment counts as *drifting* even if it still
    #: passes the gate, and schedules a proactive retrain
    drift_ratio: float = 4.0
    #: re-assess a retrained COUNT model before lifting its fallback
    revalidate: bool = True
    #: persist every currently published model into the store when the
    #: manager is created, so a warm restart can serve without retraining
    persist_current: bool = True
