"""Prometheus-style text and JSON export of a metrics registry.

``export_text`` renders the exposition-format view a scrape endpoint would
serve; ``export_json`` returns a structured document (histograms with full
snapshots, series with their drift points) for programmatic checks -- the
CI smoke job asserts required series against it.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    render_series_name,
)


def export_text(registry: MetricsRegistry) -> str:
    """Render every registered metric in Prometheus exposition style."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry.metrics():
        if metric.name not in seen_types:
            seen_types.add(metric.name)
            kind = "gauge" if isinstance(metric, (Series, Gauge)) else metric.kind
            lines.append(f"# TYPE {metric.name} {kind}")
        ident = render_series_name(metric.name, metric.labels)
        if isinstance(metric, Counter) or isinstance(metric, Gauge):
            lines.append(f"{ident} {_num(metric.value)}")
        elif isinstance(metric, Histogram):
            snap = metric.snapshot()
            base, labels = metric.name, metric.labels
            lines.append(
                f"{render_series_name(base + '_count', labels)} {snap.count}"
            )
            lines.append(
                f"{render_series_name(base + '_sum', labels)} {_num(snap.total)}"
            )
            for q, value in (("0.5", snap.p50), ("0.9", snap.p90), ("0.99", snap.p99)):
                q_labels = labels + (("quantile", q),)
                lines.append(
                    f"{render_series_name(base, q_labels)} {_num(value)}"
                )
        elif isinstance(metric, Series):
            last = metric.last
            lines.append(f"{ident} {_num(last if last is not None else 0.0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_json(registry: MetricsRegistry) -> dict:
    """Structured export: one entry per series, grouped by metric kind."""
    doc: dict[str, dict[str, object]] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "series": {},
    }
    for metric in registry.metrics():
        ident = render_series_name(metric.name, metric.labels)
        if isinstance(metric, Counter):
            doc["counters"][ident] = metric.value
        elif isinstance(metric, Gauge):
            doc["gauges"][ident] = metric.value
        elif isinstance(metric, Histogram):
            snap = metric.snapshot()
            doc["histograms"][ident] = {
                "count": snap.count,
                "sum": snap.total,
                "min": snap.min if snap.count else 0.0,
                "max": snap.max if snap.count else 0.0,
                "mean": snap.mean,
                "p50": snap.p50,
                "p90": snap.p90,
                "p99": snap.p99,
            }
        elif isinstance(metric, Series):
            doc["series"][ident] = metric.values()
    return doc


def export_json_text(registry: MetricsRegistry, indent: int = 2) -> str:
    """The JSON export serialized to text (for files / artifacts)."""
    return json.dumps(export_json(registry), indent=indent, sort_keys=True)


def missing_series(
    registry: MetricsRegistry, required: Iterable[str]
) -> list[str]:
    """Names (bare, label-free) from ``required`` absent in the registry.

    Matches on the metric *name*, ignoring labels, so a requirement like
    ``serving_request_seconds`` is satisfied by any labeled instance of it.
    """
    present = {metric.name for metric in registry.metrics()}
    return sorted(set(required) - present)


def _num(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))
