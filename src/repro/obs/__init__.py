"""repro.obs -- end-to-end observability for the reproduction.

A lightweight metrics registry (counters, gauges, bounded histograms,
drift series) plus request-scoped tracing spans, threaded through the
serving tier, the optimizer/executor, the Model Loader, and the Model
Monitor.  One registry per deployment; Prometheus-style text and JSON
exports; near-zero overhead when disabled.
"""

from repro.obs.export import (
    export_json,
    export_json_text,
    export_text,
    missing_series,
)
from repro.obs.merge import WORKER_LABEL, merged_registry
from repro.obs.metrics import (
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    NullMetric,
    Series,
    render_series_name,
)
from repro.obs.spans import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NullMetric",
    "NULL_METRIC",
    "Series",
    "SpanRecord",
    "Tracer",
    "WORKER_LABEL",
    "export_json",
    "export_json_text",
    "export_text",
    "merged_registry",
    "missing_series",
    "render_series_name",
]
