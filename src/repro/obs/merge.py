"""Cross-process metric merging: one export for a fleet of registries.

A multi-process deployment (``repro.fleet``) records metrics in *every*
process: each estimator worker has its own :class:`MetricsRegistry`, and so
does the router.  Exporting only the router's registry would make the
workers' serving counters, cache hit rates, and latency histograms go dark
the moment the serving tier leaves the single-interpreter world.

The merge protocol keeps observability alive across that boundary:

1. each worker serializes its registry with :meth:`MetricsRegistry.state`
   (plain dicts/lists/floats -- safe over pickle frames or JSON);
2. the router collects the snapshots over IPC and calls
   :func:`merged_registry`, which rebuilds every series into a fresh
   registry with a ``worker`` label appended;
3. the ordinary exporters (:func:`repro.obs.export_text` /
   :func:`repro.obs.export_json`) then render a fleet-wide view in which
   ``serving_requests_total{task="count",worker="2"}`` and its siblings
   coexist without collisions.

Counters and histogram lifetime totals *add* when two snapshots share a
label set, histogram windows concatenate (quantiles stay approximate, as
within one process), gauges are last-write-wins, series concatenate.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.metrics import MetricsRegistry

#: label under which each contributing process appears in the merged export
WORKER_LABEL = "worker"


def merged_registry(
    states: Mapping[str, Iterable[Mapping]],
    label: str = WORKER_LABEL,
) -> MetricsRegistry:
    """Build one registry from per-process state snapshots.

    ``states`` maps a process identity (e.g. ``"router"``, ``"0"``, ``"1"``)
    to that process's :meth:`MetricsRegistry.state` snapshot; every series
    gets ``{label: identity}`` appended so nothing collides.
    """
    registry = MetricsRegistry(enabled=True)
    for identity, state in states.items():
        registry.load_state(state, extra_labels={label: identity})
    return registry
