"""Request-scoped tracing spans.

A :class:`Tracer` times named stages of a request.  Each span feeds two
sinks:

* the registry histogram ``span_seconds{span=...}`` (plus any extra
  labels), giving fleet-wide per-stage latency distributions, and
* an optional per-request ``sink`` list of :class:`SpanRecord`, which the
  caller attaches to its response -- the raw material of the enriched
  ``explain()`` output (per-stage timings and estimate provenance).

When the registry is disabled *and* no sink is given, ``span()`` returns a
shared no-op context manager: the hot path pays two function calls and no
allocation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

_NULL_CONTEXT = nullcontext()


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: what ran, for how long."""

    name: str
    duration_s: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}={self.duration_s * 1e3:.3f}ms"


class Tracer:
    """Times stages into a registry (and optionally a per-request sink)."""

    def __init__(self, registry: MetricsRegistry | None = None):
        # NOTE: an empty registry is falsy (``__len__``), so test identity.
        if registry is None:
            registry = MetricsRegistry(enabled=False)
        self.registry = registry

    def span(
        self, name: str, sink: list[SpanRecord] | None = None, **labels
    ):
        """Context manager timing one stage.

        ``sink`` collects the record for request-scoped introspection even
        when the registry is disabled.
        """
        if not self.registry.enabled and sink is None:
            return _NULL_CONTEXT
        return self._timed(name, sink, labels)

    @contextmanager
    def _timed(
        self, name: str, sink: list[SpanRecord] | None, labels: dict
    ) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            if self.registry.enabled:
                self.registry.histogram(
                    "span_seconds", span=name, **labels
                ).observe(duration)
            if sink is not None:
                sink.append(SpanRecord(name=name, duration_s=duration))
