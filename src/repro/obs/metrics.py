"""Metric primitives: counters, gauges, bounded histograms, drift series.

The registry is the backbone of ``repro.obs``: every subsystem (serving
tier, optimizer, executor, model loader, model monitor) records into one
:class:`MetricsRegistry` so a single export shows the whole deployment --
the visibility the paper's Model Monitor / Inference Engine split depends
on.  Two properties drive the design:

* **near-zero overhead when disabled** -- a disabled registry hands out
  shared no-op metric singletons, so instrumented code pays one attribute
  call and nothing else;
* **torn-state-free snapshots** -- every metric guards its mutable state
  with its own lock, and snapshots copy under that lock, so concurrent
  writers never produce a half-updated view (count advanced but the ring
  not yet appended, etc.).

Histogram quantiles use the shared :func:`repro.metrics.quantiles.quantile`
definition, so a "p99" here means the same thing as in every benchmark
table of the reproduction.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.metrics.quantiles import quantile

#: canonical label encoding: sorted (key, value) pairs
LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_series_name(name: str, labels: LabelItems) -> str:
    """Prometheus-style series identifier: ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def state_dict(self) -> dict:
        return {"value": self.value}

    def merge_state(self, state: Mapping) -> None:
        self.inc(float(state["value"]))


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def state_dict(self) -> dict:
        return {"value": self.value}

    def merge_state(self, state: Mapping) -> None:
        # Last-write-wins semantics: an imported snapshot replaces.
        self.set(float(state["value"]))


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram at snapshot time.

    ``count``/``total`` cover every observation ever made; the quantiles
    cover the bounded window of recent observations.
    """

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram:
    """Bounded-window histogram: lifetime count/sum + recent quantiles."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems = (), window: int = 2048):
        if window < 1:
            raise ValueError("histogram window must be >= 1")
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._ring: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._ring.append(value)
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            if not self._count:
                return HistogramSnapshot()
            window = list(self._ring)
            count, total = self._count, self._total
            lo, hi = self._min, self._max
        p50, p90, p99 = (
            quantile(window, 0.50),
            quantile(window, 0.90),
            quantile(window, 0.99),
        )
        return HistogramSnapshot(
            count=count, total=total, min=lo, max=hi, p50=p50, p90=p90, p99=p99
        )

    def state_dict(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "total": self._total,
                "min": self._min,
                "max": self._max,
                "window": list(self._ring),
                "window_size": self._ring.maxlen,
            }

    def merge_state(self, state: Mapping) -> None:
        """Fold another histogram's state in: lifetime counters add, the
        bounded window concatenates (most recent observations win)."""
        with self._lock:
            self._count += int(state["count"])
            self._total += float(state["total"])
            if state["count"]:
                self._min = min(self._min, float(state["min"]))
                self._max = max(self._max, float(state["max"]))
            self._ring.extend(float(v) for v in state["window"])


class Series:
    """Bounded append-only series: one value per event, oldest dropped.

    The Model Monitor records one point per assessment, making per-table
    Q-Error *drift* observable over time (not just the latest gate result).
    """

    kind = "series"

    def __init__(self, name: str, labels: LabelItems = (), maxlen: int = 512):
        if maxlen < 1:
            raise ValueError("series maxlen must be >= 1")
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._points: deque[float] = deque(maxlen=maxlen)

    def append(self, value: float) -> None:
        with self._lock:
            self._points.append(float(value))

    def values(self) -> list[float]:
        with self._lock:
            return list(self._points)

    @property
    def last(self) -> float | None:
        with self._lock:
            return self._points[-1] if self._points else None

    def state_dict(self) -> dict:
        with self._lock:
            return {"points": list(self._points), "maxlen": self._points.maxlen}

    def merge_state(self, state: Mapping) -> None:
        with self._lock:
            self._points.extend(float(v) for v in state["points"])


class NullMetric:
    """Shared no-op stand-in handed out by a disabled registry."""

    kind = "null"
    name = ""
    labels: LabelItems = ()
    value = 0.0
    count = 0
    last = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, value: float) -> None:
        pass

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot()

    def values(self) -> list[float]:
        return []


#: the singleton every disabled-registry call returns
NULL_METRIC = NullMetric()


class MetricsRegistry:
    """Get-or-create registry of named, labeled metrics.

    ``enabled=False`` turns every accessor into a return of the shared
    :data:`NULL_METRIC`; instrumented hot paths stay allocation-free and
    the export is empty.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelItems], object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Mapping[str, object], **kwargs):
        if not self.enabled:
            return NULL_METRIC
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {render_series_name(*key)} already registered "
                    f"as {metric.kind}, requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def preregister(self, name: str, label: str, values: Iterable[str]) -> None:
        """Create one zero-valued counter per label value up front.

        Error-path counters (dropped frames, refused loads) must exist in
        the export *before* the first failure: an absent series is
        indistinguishable from "never happened", which is exactly the
        blindness pre-registration removes.
        """
        for value in values:
            self.counter(name, **{label: value})

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, window: int = 2048, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels, window=window)

    def series(self, name: str, maxlen: int = 512, **labels) -> Series:
        return self._get_or_create(Series, name, labels, maxlen=maxlen)

    # ------------------------------------------------------------------
    def adopt(self, metric) -> None:
        """Register an externally constructed metric for export.

        Lets a component own always-on metrics (e.g. the serving tier's
        per-path latency rings, which must work even without observability)
        while still surfacing them through this registry's export.
        """
        if not self.enabled or isinstance(metric, NullMetric):
            return
        key = (metric.name, metric.labels)
        with self._lock:
            self._metrics.setdefault(key, metric)

    def metrics(self) -> Iterator[object]:
        """All registered metrics, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return iter(metric for _key, metric in items)

    def get(self, name: str, **labels):
        """Look up a metric without creating it (``None`` when absent)."""
        with self._lock:
            return self._metrics.get((name, _label_items(labels)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # ------------------------------------------------------------------
    # Cross-process state transfer
    # ------------------------------------------------------------------
    def state(self) -> list[dict]:
        """A serializable snapshot of every registered metric.

        The returned list is built from plain dicts / lists / floats, so it
        survives any transport (pickle frames over a fleet worker's pipe,
        JSON for files).  Feed it to :meth:`load_state` on the other side.
        """
        states: list[dict] = []
        for metric in self.metrics():
            state_dict = getattr(metric, "state_dict", None)
            if state_dict is None:  # pragma: no cover - foreign metric type
                continue
            states.append(
                {
                    "kind": metric.kind,
                    "name": metric.name,
                    "labels": [list(pair) for pair in metric.labels],
                    "state": state_dict(),
                }
            )
        return states

    def load_state(
        self, states: Iterable[Mapping], extra_labels: Mapping[str, object] = {}
    ) -> None:
        """Reconstruct (merging) metrics from a :meth:`state` snapshot.

        ``extra_labels`` is appended to every series -- the fleet router
        passes ``{"worker": <id>}`` so per-worker registries merge into one
        fleet-wide export without colliding.  Loading the same snapshot
        into an existing series *adds* (counters sum, histogram windows
        concatenate), so repeated pulls must target a fresh registry.
        """
        kinds = {
            "counter": (Counter, {}),
            "gauge": (Gauge, {}),
            "histogram": (Histogram, {}),
            "series": (Series, {}),
        }
        for entry in states:
            try:
                cls, _ = kinds[entry["kind"]]
            except KeyError:  # pragma: no cover - forward compatibility
                continue
            labels = dict(tuple(pair) for pair in entry["labels"])
            labels.update(extra_labels)
            state = entry["state"]
            kwargs = {}
            if cls is Histogram and state.get("window_size"):
                kwargs["window"] = int(state["window_size"])
            if cls is Series and state.get("maxlen"):
                kwargs["maxlen"] = int(state["maxlen"])
            metric = self._get_or_create(cls, entry["name"], labels, **kwargs)
            if not isinstance(metric, NullMetric):
                metric.merge_state(state)
