"""Column types and the database-type -> ML-type mapping.

The paper's *Model Preprocessor* performs a "preliminary type-mapping" that
converts each database column type into a machine-learning-friendly type
(Binary / Categorical / Continuous) and excludes complex types (Array, Map)
that the CardEst models cannot handle.  Both halves live here.
"""

from __future__ import annotations

import enum

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Database column types supported by the storage layer."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"  # stored as days-since-epoch integers
    BOOL = "bool"
    ARRAY = "array"  # complex type: excluded from model training
    MAP = "map"  # complex type: excluded from model training

    @property
    def is_complex(self) -> bool:
        """Complex types are beyond current CardEst models (paper Sec. 4.4.1)."""
        return self in (ColumnType.ARRAY, ColumnType.MAP)


class MLType(enum.Enum):
    """Machine-learning feature types produced by the type mapping."""

    BINARY = "binary"
    CATEGORICAL = "categorical"
    CONTINUOUS = "continuous"


#: Distinct-value count at or below which an integer column is treated as
#: categorical rather than continuous during type mapping.
CATEGORICAL_NDV_THRESHOLD = 1000


def ml_type_for(
    ctype: ColumnType, distinct_count: int | None = None
) -> MLType:
    """Map a database type to its ML feature type.

    ``distinct_count`` disambiguates integers: low-cardinality integers are
    categorical (e.g. status codes), high-cardinality integers continuous
    (e.g. timestamps).  Complex types raise :class:`SchemaError` because the
    Model Preprocessor must have excluded them before mapping.
    """
    if ctype.is_complex:
        raise SchemaError(f"complex type {ctype.value} has no ML mapping")
    if ctype is ColumnType.BOOL:
        return MLType.BINARY
    if ctype is ColumnType.STRING:
        return MLType.CATEGORICAL
    if ctype is ColumnType.FLOAT:
        return MLType.CONTINUOUS
    # INT and DATE depend on cardinality.
    if distinct_count is not None and distinct_count <= CATEGORICAL_NDV_THRESHOLD:
        return MLType.CATEGORICAL
    return MLType.CONTINUOUS
