"""Partitions and zone maps: the pruning metadata of partition-native tables.

ByteHouse shards tables across compute workers; the in-process equivalent is
an ordered list of :class:`Partition` row ranges, each with its own block
index.  Every partition carries a per-column :class:`ZoneMap` -- min/max plus
a null-free KMV NDV sketch -- built once when the table is loaded into the
catalog (lazily for tables that never reach the engine).  The engine's
:func:`repro.engine.partitioned.partitioned_scan` consults the zone maps to
refute partitions *before* any block I/O, and the optimizer uses the same
refutation rule to pin shard-specialized models to surviving partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.query import PredicateOp, TablePredicate

#: KMV sketch size: estimates are exact below this many distinct values.
DEFAULT_SKETCH_SIZE = 256

_MIX_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def _kmv_hashes(values: np.ndarray, k: int) -> np.ndarray:
    """The ``k`` smallest distinct 64-bit hashes of ``values`` (splitmix-style)."""
    if values.size == 0:
        return np.empty(0, dtype=np.uint64)
    # View the raw bits so FLOAT columns hash deterministically too.
    as_int = np.ascontiguousarray(values).view(np.uint64) \
        if values.dtype.itemsize == 8 else values.astype(np.int64).view(np.uint64)
    mixed = as_int * _MIX_MULTIPLIER
    mixed = (mixed ^ (mixed >> np.uint64(31))) * _MIX_MULTIPLIER
    mixed ^= mixed >> np.uint64(29)
    distinct = np.unique(mixed)
    return distinct[:k]


@dataclass(frozen=True)
class NdvSketch:
    """K-minimum-values NDV sketch over one partition of one column.

    Null-free: the storage layer has no NULLs, so every row contributes.
    Exact below ``k`` distinct values; the classic ``(k - 1) / kth_min``
    estimator above.  Sketches merge by re-minimizing, so table-level NDV
    can be approximated from partition sketches without a rescan.
    """

    k: int
    hashes: tuple[int, ...]

    @classmethod
    def from_values(cls, values: np.ndarray, k: int = DEFAULT_SKETCH_SIZE) -> "NdvSketch":
        return cls(k=k, hashes=tuple(int(h) for h in _kmv_hashes(values, k)))

    def estimate(self) -> int:
        if len(self.hashes) < self.k:
            return len(self.hashes)
        kth = self.hashes[-1]
        if kth == 0:
            return len(self.hashes)
        return max(self.k, int(round((self.k - 1) * (2.0**64) / float(kth))))

    def merge(self, other: "NdvSketch") -> "NdvSketch":
        k = max(self.k, other.k)
        merged = sorted(set(self.hashes) | set(other.hashes))[:k]
        return NdvSketch(k=k, hashes=tuple(merged))


@dataclass(frozen=True)
class ZoneMap:
    """Per-partition, per-column pruning statistics."""

    min_value: float
    max_value: float
    num_rows: int
    sketch: NdvSketch

    @classmethod
    def from_values(
        cls, values: np.ndarray, sketch_size: int = DEFAULT_SKETCH_SIZE
    ) -> "ZoneMap":
        if values.size == 0:
            return cls(
                min_value=float("inf"),
                max_value=float("-inf"),
                num_rows=0,
                sketch=NdvSketch(k=sketch_size, hashes=()),
            )
        return cls(
            min_value=float(values.min()),
            max_value=float(values.max()),
            num_rows=int(values.size),
            sketch=NdvSketch.from_values(values, sketch_size),
        )

    @property
    def ndv(self) -> int:
        return self.sketch.estimate()

    # ------------------------------------------------------------------
    def refutes(self, pred: TablePredicate) -> bool:
        """True when no row in this partition can satisfy ``pred``.

        Conservative: ``False`` means "cannot prove empty", never "matches".
        """
        if self.num_rows == 0:
            return True
        lo, hi = self.min_value, self.max_value
        op = pred.op
        if op is PredicateOp.EQ:
            return pred.value < lo or pred.value > hi
        if op is PredicateOp.NE:
            # Only refutable when the partition is a single constant value.
            return lo == hi == pred.value
        if op is PredicateOp.LT:
            return lo >= pred.value
        if op is PredicateOp.LE:
            return lo > pred.value
        if op is PredicateOp.GT:
            return hi <= pred.value
        if op is PredicateOp.GE:
            return hi < pred.value
        if op is PredicateOp.IN:
            return all(v < lo or v > hi for v in pred.value)  # type: ignore[union-attr]
        if op is PredicateOp.BETWEEN:
            low, high = pred.value  # type: ignore[misc]
            return high < lo or low > hi
        return False


@dataclass(frozen=True)
class Partition:
    """One contiguous row range of a table, with its own block index.

    Blocks are addressed *partition-locally*: block ``b`` of this partition
    covers global rows ``[row_start + b * block_size,
    min(row_start + (b + 1) * block_size, row_stop))``.
    """

    table_name: str
    index: int
    row_start: int
    row_stop: int
    block_size: int

    @property
    def num_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def num_blocks(self) -> int:
        # Same math as :func:`repro.storage.blocks.block_count`, inlined to
        # keep this module import-free of the reader stack.
        return (self.num_rows + self.block_size - 1) // self.block_size

    def block_bounds(self, block_index: int) -> tuple[int, int]:
        """Global ``(start, stop)`` row bounds of one partition-local block."""
        if block_index < 0 or block_index >= self.num_blocks:
            raise IndexError(
                f"block {block_index} out of range for partition "
                f"{self.index} of table {self.table_name!r}"
            )
        start = self.row_start + block_index * self.block_size
        return start, min(start + self.block_size, self.row_stop)

    def __repr__(self) -> str:
        return (
            f"Partition({self.table_name!r}, index={self.index}, "
            f"rows=[{self.row_start}, {self.row_stop}))"
        )
