"""Columnar storage substrate (the ByteHouse storage layer, in miniature).

Tables are collections of typed, numpy-backed columns split into fixed-size
blocks.  Reads are accounted at block granularity through :class:`IOCounter`,
which is what Figure 6(a) of the paper measures ("read I/Os").
"""

from repro.storage.types import ColumnType, MLType, ml_type_for
from repro.storage.column import Column
from repro.storage.partitions import NdvSketch, Partition, ZoneMap
from repro.storage.table import Table, TableSchema, ColumnSpec
from repro.storage.io_stats import IOCounter
from repro.storage.blocks import BlockReader, block_count, block_slices
from repro.storage.catalog import Catalog, JoinSchema, JoinEdge

__all__ = [
    "ColumnType",
    "MLType",
    "ml_type_for",
    "Column",
    "NdvSketch",
    "Partition",
    "ZoneMap",
    "Table",
    "TableSchema",
    "ColumnSpec",
    "IOCounter",
    "BlockReader",
    "block_count",
    "block_slices",
    "Catalog",
    "JoinSchema",
    "JoinEdge",
]
