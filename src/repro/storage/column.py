"""A typed, numpy-backed column with optional dictionary encoding.

Numeric columns store values directly; string columns are dictionary-encoded
(int32 codes plus a value dictionary), mirroring how columnar warehouses store
low-cardinality strings.  All estimators operate on the *encoded* numeric view
(:attr:`Column.values`), so predicates over strings are evaluated on codes
after translating literals through the dictionary.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.storage.types import ColumnType


class Column:
    """One column of a table.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        Database type of the column.
    values:
        Numeric payload. For ``STRING`` columns these are dictionary codes.
    dictionary:
        For ``STRING`` columns, the list mapping code -> string.
    """

    def __init__(
        self,
        name: str,
        ctype: ColumnType,
        values: np.ndarray,
        dictionary: Sequence[str] | None = None,
    ):
        if ctype is ColumnType.STRING and dictionary is None:
            raise SchemaError(f"string column {name!r} requires a dictionary")
        if ctype is not ColumnType.STRING and dictionary is not None:
            raise SchemaError(f"non-string column {name!r} must not have a dictionary")
        self.name = name
        self.ctype = ctype
        self.values = np.asarray(values)
        if self.values.ndim != 1:
            raise SchemaError(f"column {name!r} payload must be 1-D")
        self.dictionary: tuple[str, ...] | None = (
            tuple(dictionary) if dictionary is not None else None
        )
        if self.dictionary is not None and len(self.values):
            top = int(self.values.max())
            if top >= len(self.dictionary):
                raise SchemaError(
                    f"column {name!r} has code {top} outside dictionary of "
                    f"size {len(self.dictionary)}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, name: str, strings: Iterable[str]) -> "Column":
        """Dictionary-encode an iterable of strings."""
        materialized = list(strings)
        uniques = sorted(set(materialized))
        code_of = {s: i for i, s in enumerate(uniques)}
        codes = np.fromiter(
            (code_of[s] for s in materialized), dtype=np.int32, count=len(materialized)
        )
        return cls(name, ColumnType.STRING, codes, dictionary=uniques)

    @classmethod
    def from_ints(cls, name: str, values: Iterable[int]) -> "Column":
        return cls(name, ColumnType.INT, np.asarray(list(values), dtype=np.int64))

    @classmethod
    def from_floats(cls, name: str, values: Iterable[float]) -> "Column":
        return cls(name, ColumnType.FLOAT, np.asarray(list(values), dtype=np.float64))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.value}, n={len(self)})"

    @property
    def nbytes(self) -> int:
        """Approximate storage footprint, used by the I/O cost model."""
        base = int(self.values.nbytes)
        if self.dictionary is not None:
            base += sum(len(s) for s in self.dictionary)
        return base

    def distinct_count(self) -> int:
        """Exact NDV of the column (ground truth for NDV experiments)."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.values).size)

    def encode_literal(self, literal: object) -> float:
        """Translate a query literal into the column's numeric domain.

        For string columns, unknown literals map to ``-1`` (a code that never
        occurs) so equality predicates on unseen values select nothing, which
        matches warehouse behaviour.
        """
        if self.ctype is ColumnType.STRING:
            assert self.dictionary is not None
            if not isinstance(literal, str):
                raise SchemaError(
                    f"column {self.name!r} is a string column; literal "
                    f"{literal!r} is not a string"
                )
            # Dictionary is sorted, so binary search preserves ordering
            # semantics for range predicates on strings too.
            idx = np.searchsorted(np.asarray(self.dictionary), literal)
            if idx < len(self.dictionary) and self.dictionary[int(idx)] == literal:
                return float(idx)
            return float(idx) - 0.5  # between codes: correct for ranges, miss for =
        return float(literal)  # type: ignore[arg-type]

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with rows gathered at ``indices``."""
        return Column(
            self.name, self.ctype, self.values[indices], dictionary=self.dictionary
        )

    # ------------------------------------------------------------------
    # Mutation (functional: returns a new column)
    # ------------------------------------------------------------------
    def append(self, values: "np.ndarray | Sequence[object]") -> "Column":
        """Return a new column with ``values`` appended.

        Numeric columns accept any numeric array (cast to the column's
        dtype).  String columns accept raw strings; values outside the
        current dictionary force a dictionary rebuild, in which case the
        *existing* codes are remapped so the dictionary stays sorted (the
        invariant :meth:`encode_literal`'s binary search relies on).
        """
        if self.ctype is ColumnType.STRING:
            assert self.dictionary is not None
            incoming = list(values)
            for item in incoming:
                if not isinstance(item, str):
                    raise SchemaError(
                        f"string column {self.name!r} append takes strings; "
                        f"got {item!r}"
                    )
            known = set(self.dictionary)
            if all(item in known for item in incoming):
                code_of = {s: i for i, s in enumerate(self.dictionary)}
                codes = np.fromiter(
                    (code_of[s] for s in incoming),
                    dtype=self.values.dtype,
                    count=len(incoming),
                )
                return Column(
                    self.name,
                    ColumnType.STRING,
                    np.concatenate([self.values, codes]),
                    dictionary=self.dictionary,
                )
            uniques = sorted(known | set(incoming))
            code_of = {s: i for i, s in enumerate(uniques)}
            remap = np.asarray(
                [code_of[s] for s in self.dictionary], dtype=self.values.dtype
            )
            codes = np.fromiter(
                (code_of[s] for s in incoming),
                dtype=self.values.dtype,
                count=len(incoming),
            )
            return Column(
                self.name,
                ColumnType.STRING,
                np.concatenate([remap[self.values], codes]),
                dictionary=uniques,
            )
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise SchemaError(f"column {self.name!r} append payload must be 1-D")
        if not np.issubdtype(arr.dtype, np.number):
            raise SchemaError(
                f"numeric column {self.name!r} append takes a numeric array; "
                f"got dtype {arr.dtype}"
            )
        return Column(
            self.name,
            self.ctype,
            np.concatenate([self.values, arr.astype(self.values.dtype)]),
        )
