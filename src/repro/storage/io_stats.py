"""Read-I/O accounting.

ByteHouse charges I/O per column block read from the distributed file system.
:class:`IOCounter` is the in-process equivalent: readers report every block
they touch, and Figure 6(a)'s "Reading I/Os" is the resulting
:attr:`blocks_read` total.

Two details matter for byte accounting:

* a string column's dictionary is loaded **once per column**, not once per
  block -- :meth:`IOCounter.record_dictionary` charges it exactly once per
  (table, column) pair per counter;
* parallel partition scans accumulate into private counters that are folded
  back with :meth:`IOCounter.merge`, which de-duplicates dictionary charges
  so the merged totals are identical to a sequential scan's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOCounter:
    """Mutable tally of read I/O performed by scans."""

    blocks_read: int = 0
    rows_read: int = 0
    bytes_read: int = 0
    #: per-(table, column) block counts, for drill-down in benchmarks
    per_column: dict[tuple[str, str], int] = field(default_factory=dict)
    #: dictionary bytes charged so far, per (table, column) -- each string
    #: column's dictionary is charged exactly once per counter
    dict_charges: dict[tuple[str, str], int] = field(default_factory=dict)

    def record_block(
        self, table: str, column: str, rows: int, nbytes: int
    ) -> None:
        """Record one column block read."""
        self.blocks_read += 1
        self.rows_read += rows
        self.bytes_read += nbytes
        key = (table, column)
        self.per_column[key] = self.per_column.get(key, 0) + 1

    def record_dictionary(self, table: str, column: str, nbytes: int) -> bool:
        """Charge a string column's dictionary once; later calls are no-ops.

        Returns True when the charge was applied (first sighting).
        """
        key = (table, column)
        if key in self.dict_charges:
            return False
        self.dict_charges[key] = nbytes
        self.bytes_read += nbytes
        return True

    def merge(self, other: "IOCounter") -> None:
        """Fold another counter into this one, de-duplicating dictionaries.

        Used by the parallel partition-scan driver: each worker charges a
        private counter, and merging in partition order yields byte/block
        totals identical to a single-threaded scan over the same partitions.
        """
        self.blocks_read += other.blocks_read
        self.rows_read += other.rows_read
        self.bytes_read += other.bytes_read
        for key, count in other.per_column.items():
            self.per_column[key] = self.per_column.get(key, 0) + count
        for key, nbytes in other.dict_charges.items():
            if key in self.dict_charges:
                # Both counters charged this dictionary; keep a single charge.
                self.bytes_read -= nbytes
            else:
                self.dict_charges[key] = nbytes

    def reset(self) -> None:
        self.blocks_read = 0
        self.rows_read = 0
        self.bytes_read = 0
        self.per_column.clear()
        self.dict_charges.clear()

    def snapshot(self) -> "IOCounter":
        """Immutable-ish copy for before/after comparisons."""
        copy = IOCounter(
            blocks_read=self.blocks_read,
            rows_read=self.rows_read,
            bytes_read=self.bytes_read,
        )
        copy.per_column = dict(self.per_column)
        copy.dict_charges = dict(self.dict_charges)
        return copy
