"""Read-I/O accounting.

ByteHouse charges I/O per column block read from the distributed file system.
:class:`IOCounter` is the in-process equivalent: readers report every block
they touch, and Figure 6(a)'s "Reading I/Os" is the resulting
:attr:`blocks_read` total.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOCounter:
    """Mutable tally of read I/O performed by scans."""

    blocks_read: int = 0
    rows_read: int = 0
    bytes_read: int = 0
    #: per-(table, column) block counts, for drill-down in benchmarks
    per_column: dict[tuple[str, str], int] = field(default_factory=dict)

    def record_block(
        self, table: str, column: str, rows: int, nbytes: int
    ) -> None:
        """Record one column block read."""
        self.blocks_read += 1
        self.rows_read += rows
        self.bytes_read += nbytes
        key = (table, column)
        self.per_column[key] = self.per_column.get(key, 0) + 1

    def reset(self) -> None:
        self.blocks_read = 0
        self.rows_read = 0
        self.bytes_read = 0
        self.per_column.clear()

    def snapshot(self) -> "IOCounter":
        """Immutable-ish copy for before/after comparisons."""
        copy = IOCounter(
            blocks_read=self.blocks_read,
            rows_read=self.rows_read,
            bytes_read=self.bytes_read,
        )
        copy.per_column = dict(self.per_column)
        return copy
