"""Tables: ordered collections of equal-length columns plus schema metadata.

A table's rows are organized two ways: into fixed-size *blocks* (the I/O
granule the readers charge) and into an ordered list of *partitions*
(contiguous row ranges, each with its own partition-local block index and
per-column zone maps).  The default is a single partition covering the whole
table, which preserves the pre-partitioning behaviour of every reader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.storage.column import Column
from repro.storage.partitions import Partition, ZoneMap
from repro.storage.types import ColumnType

#: Default rows per storage block; ByteHouse-like engines use granules of
#: this order.  Small enough that multi-stage reading can actually skip
#: blocks on the synthetic datasets.
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class ColumnSpec:
    """Schema entry for one column."""

    name: str
    ctype: ColumnType


@dataclass(frozen=True)
class TableSchema:
    """Immutable table schema: a name and an ordered list of column specs."""

    name: str
    columns: tuple[ColumnSpec, ...]

    def column_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.columns)

    def spec(self, column: str) -> ColumnSpec:
        for item in self.columns:
            if item.name == column:
                return item
        raise SchemaError(f"table {self.name!r} has no column {column!r}")

    def has_column(self, column: str) -> bool:
        return any(item.name == column for item in self.columns)


class Table:
    """A named table of columns, all of the same length.

    Rows are conceptually split into blocks of ``block_size`` rows; the block
    structure is what the readers in :mod:`repro.engine.readers` iterate and
    what I/O accounting counts.
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        block_size: int = DEFAULT_BLOCK_SIZE,
        partitions: int | Sequence[int] | None = None,
        partition_key: str | None = None,
    ):
        """``partitions`` is either a partition count (rows split into that
        many near-equal contiguous ranges) or an explicit sequence of
        per-partition row counts summing to the table size.  ``partition_key``
        records the column the rows are clustered/sharded by (set by
        :meth:`partition_by_key`); partition index ``i`` then corresponds to
        shard ``i`` of ModelForge's hash-mod shard function.
        """
        column_list = list(columns)
        if not column_list:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {len(col) for col in column_list}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} columns have inconsistent lengths: {sorted(lengths)}"
            )
        names = [col.name for col in column_list]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        if block_size <= 0:
            raise SchemaError(f"block_size must be positive, got {block_size}")
        self.name = name
        self.block_size = block_size
        self._columns: dict[str, Column] = {col.name: col for col in column_list}
        self._order: tuple[str, ...] = tuple(names)
        self.num_rows = lengths.pop()
        if partition_key is not None and partition_key not in self._columns:
            raise SchemaError(
                f"table {name!r} has no partition key column {partition_key!r}"
            )
        self.partition_key = partition_key
        self._partition_bounds = self._resolve_partition_bounds(partitions)
        #: per-partition generation counters; a mutation that touches a
        #: partition's rows bumps its generation, invalidating any cached
        #: zone maps built against the previous contents
        self._partition_gens: list[int] = [0] * len(self._partition_bounds)
        #: table-level mutation counter (appends + deletes), exposed so the
        #: engine and tests can detect that a table changed under them
        self.mutation_generation = 0
        #: zone maps, cached per (partition index, column) together with the
        #: partition generation they were built at; built eagerly by
        #: :meth:`build_zone_maps` when the catalog loads a partitioned
        #: table, lazily on first pruning attempt otherwise.  A stale entry
        #: (generation mismatch) is rebuilt lazily, never served.
        self._zone_maps: dict[tuple[int, str], tuple[int, ZoneMap]] = {}

    def _resolve_partition_bounds(
        self, partitions: int | Sequence[int] | None
    ) -> tuple[tuple[int, int], ...]:
        if partitions is None:
            return ((0, self.num_rows),)
        if isinstance(partitions, int):
            if partitions <= 0:
                raise SchemaError(
                    f"partition count must be positive, got {partitions}"
                )
            count = min(partitions, max(1, self.num_rows))
            edges = np.linspace(0, self.num_rows, count + 1).astype(np.int64)
            return tuple(
                (int(edges[i]), int(edges[i + 1])) for i in range(count)
            )
        sizes = [int(size) for size in partitions]
        if not sizes:
            raise SchemaError("partition size list must not be empty")
        if any(size < 0 for size in sizes):
            raise SchemaError(f"partition sizes must be non-negative: {sizes}")
        if sum(sizes) != self.num_rows:
            raise SchemaError(
                f"partition sizes {sizes} do not sum to table rows {self.num_rows}"
            )
        bounds = []
        start = 0
        for size in sizes:
            bounds.append((start, start + size))
            start += size
        return tuple(bounds)

    # ------------------------------------------------------------------
    # Schema / access
    # ------------------------------------------------------------------
    @property
    def schema(self) -> TableSchema:
        return TableSchema(
            self.name,
            tuple(
                ColumnSpec(name, self._columns[name].ctype) for name in self._order
            ),
        )

    def column_names(self) -> tuple[str, ...]:
        return self._order

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"cols={len(self._order)}, partitions={self.num_partitions})"
        )

    @property
    def nbytes(self) -> int:
        return sum(col.nbytes for col in self._columns.values())

    # ------------------------------------------------------------------
    # Partitions and zone maps
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self._partition_bounds)

    def partition(self, index: int) -> Partition:
        if index < 0 or index >= len(self._partition_bounds):
            raise IndexError(
                f"partition {index} out of range for table {self.name!r} "
                f"({self.num_partitions} partitions)"
            )
        start, stop = self._partition_bounds[index]
        return Partition(
            table_name=self.name,
            index=index,
            row_start=start,
            row_stop=stop,
            block_size=self.block_size,
        )

    def partitions(self) -> tuple[Partition, ...]:
        """All partitions, in row order."""
        return tuple(self.partition(i) for i in range(self.num_partitions))

    def partition_generation(self, index: int) -> int:
        """Mutation generation of one partition (bumped by append/delete)."""
        if index < 0 or index >= len(self._partition_gens):
            raise IndexError(
                f"partition {index} out of range for table {self.name!r}"
            )
        return self._partition_gens[index]

    def zone_map(self, partition_index: int, column: str) -> ZoneMap:
        """The (cached) zone map of one column of one partition.

        The cache is generation-checked: a partition mutated since the map
        was built never serves its stale min/max refutation -- the map is
        rebuilt from the current rows instead.
        """
        part = self.partition(partition_index)
        key = (partition_index, column)
        generation = self._partition_gens[partition_index]
        cached = self._zone_maps.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        values = self.column(column).values[part.row_start : part.row_stop]
        zone_map = ZoneMap.from_values(values)
        self._zone_maps[key] = (generation, zone_map)
        return zone_map

    def build_zone_maps(self) -> None:
        """Eagerly build every partition's zone maps (catalog load time)."""
        for index in range(self.num_partitions):
            for column in self._order:
                self.zone_map(index, column)

    def repartition(
        self,
        partitions: int | Sequence[int],
        partition_key: str | None = None,
    ) -> "Table":
        """A view of the same columns under a new partition layout."""
        return Table(
            self.name,
            [self._columns[name] for name in self._order],
            block_size=self.block_size,
            partitions=partitions,
            partition_key=partition_key,
        )

    def partition_by_key(self, column: str, num_partitions: int) -> "Table":
        """Cluster rows into hash-mod partitions of ``column``.

        Partition ``p`` holds exactly the rows with
        ``int(column) % num_partitions == p`` -- the same shard function
        ModelForge's ``train_sharded`` uses, so partition index ``p``
        corresponds to the shard model ``{table}@shard{p}``.  Row order
        within a partition preserves the original row order (stable sort).
        """
        if num_partitions <= 1:
            raise SchemaError(
                f"partition_by_key needs at least two partitions, got {num_partitions}"
            )
        shard_of = self.column(column).values.astype(np.int64) % num_partitions
        order = np.argsort(shard_of, kind="stable")
        sizes = np.bincount(shard_of, minlength=num_partitions)
        return Table(
            self.name,
            [self._columns[name].take(order) for name in self._order],
            block_size=self.block_size,
            partitions=[int(s) for s in sizes],
            partition_key=column,
        )

    # ------------------------------------------------------------------
    # Construction and sampling
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        name: str,
        arrays: Mapping[str, np.ndarray],
        block_size: int = DEFAULT_BLOCK_SIZE,
        partitions: int | Sequence[int] | None = None,
        partition_key: str | None = None,
    ) -> "Table":
        """Build a table of INT/FLOAT columns straight from numpy arrays."""
        columns = []
        for col_name, arr in arrays.items():
            arr = np.asarray(arr)
            if np.issubdtype(arr.dtype, np.floating):
                columns.append(Column(col_name, ColumnType.FLOAT, arr.astype(np.float64)))
            elif np.issubdtype(arr.dtype, np.integer):
                columns.append(Column(col_name, ColumnType.INT, arr.astype(np.int64)))
            else:
                raise SchemaError(
                    f"from_arrays only accepts numeric arrays; column "
                    f"{col_name!r} has dtype {arr.dtype}"
                )
        return cls(
            name,
            columns,
            block_size=block_size,
            partitions=partitions,
            partition_key=partition_key,
        )

    def take(self, indices: np.ndarray) -> "Table":
        """Row-gather into a new single-partition table.

        Gathered tables lose the partition layout: arbitrary row subsets no
        longer respect the contiguous partition ranges, so the result
        collapses to one partition (zone maps rebuild lazily).
        """
        return Table(
            self.name,
            [self._columns[name].take(indices) for name in self._order],
            block_size=self.block_size,
        )

    def sample(self, rows: int, rng: np.random.Generator) -> "Table":
        """Uniform row sample without replacement (capped at the table size).

        Used by the ModelForge service, the sampling estimator, and RBX's
        sample-profile featurization.
        """
        if rows <= 0:
            raise ValueError(f"sample size must be positive, got {rows}")
        take = min(rows, self.num_rows)
        indices = rng.choice(self.num_rows, size=take, replace=False)
        indices.sort()
        return self.take(indices)

    def select_rows(self, mask: np.ndarray) -> "Table":
        """Return the sub-table of rows where ``mask`` is true."""
        if mask.shape != (self.num_rows,):
            raise ValueError(
                f"mask shape {mask.shape} does not match table rows {self.num_rows}"
            )
        return self.take(np.flatnonzero(mask))

    # ------------------------------------------------------------------
    # In-place mutation (streaming ingestion)
    # ------------------------------------------------------------------
    #: default tail-coalescing bound for :meth:`append_rows`, in units of
    #: ``block_size`` rows: batches are merged into the tail partition until
    #: it reaches this many blocks, after which a new tail partition opens
    DEFAULT_COALESCE_BLOCKS = 4

    def append_rows(
        self,
        arrays: Mapping[str, "np.ndarray | Sequence[object]"],
        coalesce_tail_rows: int | None = None,
    ) -> int:
        """Append a batch of rows at the end of the table, in place.

        ``arrays`` must provide every column of the table, all of equal
        length.  Small batches are coalesced into the existing tail
        partition while it stays under ``coalesce_tail_rows`` rows
        (default ``DEFAULT_COALESCE_BLOCKS * block_size``); larger growth
        opens a new tail partition, mirroring how warehouses seal full
        parts.  Either way the mutated partitions' generations are bumped,
        so stale zone maps are invalidated rather than served.

        Tables clustered by :meth:`partition_by_key` never coalesce:
        appended rows do not respect the hash-mod shard layout, so they
        always land in a fresh tail partition (which has no aligned shard
        model and degrades gracefully to whole-table estimates).

        Returns the number of rows appended.
        """
        missing = [name for name in self._order if name not in arrays]
        extra = [name for name in arrays if name not in self._columns]
        if missing or extra:
            raise SchemaError(
                f"append_rows to table {self.name!r} must supply exactly its "
                f"columns; missing={missing}, unknown={extra}"
            )
        lengths = {name: len(arrays[name]) for name in self._order}
        if len(set(lengths.values())) != 1:
            raise SchemaError(
                f"append_rows batches have inconsistent lengths: {lengths}"
            )
        batch = next(iter(lengths.values()))
        if batch == 0:
            return 0
        appended = {
            name: self._columns[name].append(arrays[name]) for name in self._order
        }
        # A string-dictionary rebuild remaps the codes of *every* row of that
        # column, so all partitions' cached maps for the table go stale.
        remapped = any(
            appended[name].dictionary != self._columns[name].dictionary
            for name in self._order
        )

        if coalesce_tail_rows is None:
            coalesce_tail_rows = self.DEFAULT_COALESCE_BLOCKS * self.block_size
        bounds = list(self._partition_bounds)
        tail_start, tail_stop = bounds[-1]
        tail_rows = tail_stop - tail_start
        if self.partition_key is None and tail_rows + batch <= coalesce_tail_rows:
            bounds[-1] = (tail_start, tail_stop + batch)
            self._partition_gens[-1] += 1
        else:
            bounds.append((self.num_rows, self.num_rows + batch))
            self._partition_gens.append(0)
        if remapped:
            self._partition_gens = [gen + 1 for gen in self._partition_gens]
        self._partition_bounds = tuple(bounds)
        self._columns = appended
        self.num_rows += batch
        self.mutation_generation += 1
        return batch

    def delete_where(self, *predicates) -> int:
        """Delete the rows matching the conjunction of ``predicates``.

        Deletion is tombstone-compacting: each affected partition keeps its
        surviving rows in order and shrinks, subsequent partitions' row
        ranges shift down, and every partition that lost rows has its
        generation bumped (stale zone maps rebuild lazily).  Partitions
        deleted down to zero rows stay in place as empty ranges -- keeping
        partition indices stable preserves the partition-index <-> shard
        model alignment, and an empty partition refutes every predicate.

        Returns the number of rows deleted.
        """
        from repro.workloads.predicates import predicate_mask

        if not predicates:
            raise SchemaError("delete_where requires at least one predicate")
        doomed = np.ones(self.num_rows, dtype=bool)
        for pred in predicates:
            if pred.table != self.name:
                raise SchemaError(
                    f"delete_where on table {self.name!r} got a predicate on "
                    f"{pred.table!r}"
                )
            doomed &= predicate_mask(self.column(pred.column).values, pred)
        deleted = int(doomed.sum())
        if deleted == 0:
            return 0
        keep = ~doomed
        bounds = []
        start = 0
        for index, (old_start, old_stop) in enumerate(self._partition_bounds):
            kept = int(keep[old_start:old_stop].sum())
            bounds.append((start, start + kept))
            start += kept
            if kept != old_stop - old_start:
                self._partition_gens[index] += 1
        survivors = np.flatnonzero(keep)
        self._columns = {
            name: self._columns[name].take(survivors) for name in self._order
        }
        self._partition_bounds = tuple(bounds)
        self.num_rows -= deleted
        self.mutation_generation += 1
        return deleted
