"""Tables: ordered collections of equal-length columns plus schema metadata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SchemaError
from repro.storage.column import Column
from repro.storage.types import ColumnType

#: Default rows per storage block; ByteHouse-like engines use granules of
#: this order.  Small enough that multi-stage reading can actually skip
#: blocks on the synthetic datasets.
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class ColumnSpec:
    """Schema entry for one column."""

    name: str
    ctype: ColumnType


@dataclass(frozen=True)
class TableSchema:
    """Immutable table schema: a name and an ordered list of column specs."""

    name: str
    columns: tuple[ColumnSpec, ...]

    def column_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.columns)

    def spec(self, column: str) -> ColumnSpec:
        for item in self.columns:
            if item.name == column:
                return item
        raise SchemaError(f"table {self.name!r} has no column {column!r}")

    def has_column(self, column: str) -> bool:
        return any(item.name == column for item in self.columns)


class Table:
    """A named table of columns, all of the same length.

    Rows are conceptually split into blocks of ``block_size`` rows; the block
    structure is what the readers in :mod:`repro.engine.readers` iterate and
    what I/O accounting counts.
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        column_list = list(columns)
        if not column_list:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {len(col) for col in column_list}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} columns have inconsistent lengths: {sorted(lengths)}"
            )
        names = [col.name for col in column_list]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        if block_size <= 0:
            raise SchemaError(f"block_size must be positive, got {block_size}")
        self.name = name
        self.block_size = block_size
        self._columns: dict[str, Column] = {col.name: col for col in column_list}
        self._order: tuple[str, ...] = tuple(names)
        self.num_rows = lengths.pop()

    # ------------------------------------------------------------------
    # Schema / access
    # ------------------------------------------------------------------
    @property
    def schema(self) -> TableSchema:
        return TableSchema(
            self.name,
            tuple(
                ColumnSpec(name, self._columns[name].ctype) for name in self._order
            ),
        )

    def column_names(self) -> tuple[str, ...]:
        return self._order

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={len(self._order)})"

    @property
    def nbytes(self) -> int:
        return sum(col.nbytes for col in self._columns.values())

    # ------------------------------------------------------------------
    # Construction and sampling
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        name: str,
        arrays: Mapping[str, np.ndarray],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "Table":
        """Build a table of INT/FLOAT columns straight from numpy arrays."""
        columns = []
        for col_name, arr in arrays.items():
            arr = np.asarray(arr)
            if np.issubdtype(arr.dtype, np.floating):
                columns.append(Column(col_name, ColumnType.FLOAT, arr.astype(np.float64)))
            elif np.issubdtype(arr.dtype, np.integer):
                columns.append(Column(col_name, ColumnType.INT, arr.astype(np.int64)))
            else:
                raise SchemaError(
                    f"from_arrays only accepts numeric arrays; column "
                    f"{col_name!r} has dtype {arr.dtype}"
                )
        return cls(name, columns, block_size=block_size)

    def sample(self, rows: int, rng: np.random.Generator) -> "Table":
        """Uniform row sample without replacement (capped at the table size).

        Used by the ModelForge service, the sampling estimator, and RBX's
        sample-profile featurization.
        """
        if rows <= 0:
            raise ValueError(f"sample size must be positive, got {rows}")
        take = min(rows, self.num_rows)
        indices = rng.choice(self.num_rows, size=take, replace=False)
        indices.sort()
        return Table(
            self.name,
            [self._columns[name].take(indices) for name in self._order],
            block_size=self.block_size,
        )

    def select_rows(self, mask: np.ndarray) -> "Table":
        """Return the sub-table of rows where ``mask`` is true."""
        if mask.shape != (self.num_rows,):
            raise ValueError(
                f"mask shape {mask.shape} does not match table rows {self.num_rows}"
            )
        indices = np.flatnonzero(mask)
        return Table(
            self.name,
            [self._columns[name].take(indices) for name in self._order],
            block_size=self.block_size,
        )
