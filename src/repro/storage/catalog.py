"""The catalog: registered tables plus the collected join schema.

ByteHouse customers do not declare PK-FK relationships, so the paper's Model
Preprocessor *collects* join patterns from the analyzer instead.  The catalog
stores the result as a :class:`JoinSchema` -- an undirected multigraph of
joinable column pairs -- which both FactorJoin training and the optimizer's
join-order enumeration consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.storage.table import Table


@dataclass(frozen=True)
class JoinEdge:
    """One joinable column pair: ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def normalized(self) -> "JoinEdge":
        """Canonical orientation (tables in lexicographic order)."""
        if (self.left_table, self.left_column) <= (self.right_table, self.right_column):
            return self
        return JoinEdge(
            self.right_table, self.right_column, self.left_table, self.left_column
        )

    def touches(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other(self, table: str) -> tuple[str, str]:
        """The (table, column) on the opposite side of ``table``."""
        if table == self.left_table:
            return (self.right_table, self.right_column)
        if table == self.right_table:
            return (self.left_table, self.left_column)
        raise SchemaError(f"join edge {self} does not touch table {table!r}")


class JoinSchema:
    """The set of join edges known for a database."""

    def __init__(self, edges: Iterable[JoinEdge] = ()):
        self._edges: set[JoinEdge] = {edge.normalized() for edge in edges}

    def add(self, edge: JoinEdge) -> None:
        self._edges.add(edge.normalized())

    def __iter__(self) -> Iterator[JoinEdge]:
        return iter(sorted(self._edges, key=lambda e: (e.left_table, e.left_column,
                                                       e.right_table, e.right_column)))

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: JoinEdge) -> bool:
        return edge.normalized() in self._edges

    def edges_for(self, table: str) -> list[JoinEdge]:
        return [edge for edge in self if edge.touches(table)]

    def join_keys_of(self, table: str) -> list[str]:
        """Columns of ``table`` that participate in any join edge."""
        keys: list[str] = []
        for edge in self:
            if edge.left_table == table and edge.left_column not in keys:
                keys.append(edge.left_column)
            if edge.right_table == table and edge.right_column not in keys:
                keys.append(edge.right_column)
        return keys


class Catalog:
    """Registered tables and their join schema."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.join_schema = JoinSchema()

    def register(self, table: Table) -> None:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} is already registered")
        self._tables[table.name] = table
        self._load_partition_stats(table)

    def replace(self, table: Table) -> None:
        """Replace a table's contents (used by scaling experiments)."""
        self._tables[table.name] = table
        self._load_partition_stats(table)

    @staticmethod
    def _load_partition_stats(table: Table) -> None:
        """Build zone maps at load time for partitioned tables.

        Single-partition tables defer to lazy per-column construction: their
        only pruning opportunity is a predicate refuting the whole table, so
        paying an eager full-column pass for every registered table (sample
        tables, scaling copies, ...) would be wasted work.
        """
        if table.num_partitions > 1:
            table.build_zone_maps()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def add_join_edge(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> None:
        """Register a joinable column pair, validating both sides exist."""
        for tbl, col in ((left_table, left_column), (right_table, right_column)):
            if not self.table(tbl).has_column(col):
                raise SchemaError(f"table {tbl!r} has no column {col!r}")
        self.join_schema.add(JoinEdge(left_table, left_column, right_table, right_column))

    def total_rows(self) -> int:
        return sum(len(tbl) for tbl in self._tables.values())
