"""Block iteration over columns, with I/O accounting.

The engine never reads a column wholesale: it reads *blocks* (runs of
``table.block_size`` rows) and charges each block to an :class:`IOCounter`.
Multi-stage readers exploit this by skipping blocks whose rows were already
filtered out by earlier, more selective columns.

A reader can be bound to one :class:`~repro.storage.partitions.Partition`,
in which case block indices are partition-local and reads never cross the
partition's row range.  An unbound reader addresses the whole table (the
single-partition default), preserving the original global block addressing.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.storage.io_stats import IOCounter
from repro.storage.partitions import Partition
from repro.storage.table import Table


def block_count(num_rows: int, block_size: int) -> int:
    """Number of blocks needed to store ``num_rows`` rows."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return (num_rows + block_size - 1) // block_size


def block_slices(num_rows: int, block_size: int) -> Iterator[slice]:
    """Yield the row slice of every block, in order."""
    for start in range(0, num_rows, block_size):
        yield slice(start, min(start + block_size, num_rows))


class BlockReader:
    """Reads column blocks from one table, charging an :class:`IOCounter`.

    The reader is deliberately stateless between calls so that several query
    threads can share one instance; only the counter is mutated, matching the
    paper's "immutable data structures for lock-free inference" discipline.

    When ``partition`` is given, ``block_index`` arguments are
    partition-local and :meth:`total_blocks` counts the partition's blocks
    only; otherwise the reader spans the whole table.
    """

    def __init__(
        self,
        table: Table,
        io: IOCounter,
        partition: Partition | None = None,
    ):
        self.table = table
        self.io = io
        self.partition = partition
        if partition is None:
            self._row_start, self._row_stop = 0, table.num_rows
        else:
            self._row_start, self._row_stop = partition.row_start, partition.row_stop

    @property
    def row_start(self) -> int:
        return self._row_start

    @property
    def num_rows(self) -> int:
        """Rows addressable by this reader (partition rows when bound)."""
        return self._row_stop - self._row_start

    def block_bounds(self, block_index: int) -> tuple[int, int]:
        """Global ``(start, stop)`` row bounds of one (local) block."""
        start = self._row_start + block_index * self.table.block_size
        if block_index < 0 or start >= self._row_stop:
            where = (
                f"partition {self.partition.index} of " if self.partition else ""
            )
            raise IndexError(
                f"block {block_index} out of range for {where}table "
                f"{self.table.name!r}"
            )
        return start, min(start + self.table.block_size, self._row_stop)

    def read_column_block(self, column: str, block_index: int) -> np.ndarray:
        """Read one block of one column, charging exactly one block I/O.

        Bytes charged are the slice's actual dtype bytes; a string column's
        dictionary is charged separately, once per (table, column) per
        counter, instead of being smeared into every block read.
        """
        col = self.table.column(column)
        start, stop = self.block_bounds(block_index)
        values = col.values[start:stop]
        if col.dictionary is not None:
            dict_nbytes = col.nbytes - int(col.values.nbytes)
            self.io.record_dictionary(self.table.name, column, dict_nbytes)
        self.io.record_block(
            self.table.name, column, rows=stop - start, nbytes=int(values.nbytes)
        )
        return values

    def read_column_blocks(
        self, column: str, block_indices: Sequence[int]
    ) -> dict[int, np.ndarray]:
        """Read several blocks of one column (e.g. the surviving blocks)."""
        return {
            index: self.read_column_block(column, index) for index in block_indices
        }

    def total_blocks(self) -> int:
        return block_count(self.num_rows, self.table.block_size)
