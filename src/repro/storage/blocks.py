"""Block iteration over columns, with I/O accounting.

The engine never reads a column wholesale: it reads *blocks* (runs of
``table.block_size`` rows) and charges each block to an :class:`IOCounter`.
Multi-stage readers exploit this by skipping blocks whose rows were already
filtered out by earlier, more selective columns.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.storage.io_stats import IOCounter
from repro.storage.table import Table


def block_count(num_rows: int, block_size: int) -> int:
    """Number of blocks needed to store ``num_rows`` rows."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return (num_rows + block_size - 1) // block_size


def block_slices(num_rows: int, block_size: int) -> Iterator[slice]:
    """Yield the row slice of every block, in order."""
    for start in range(0, num_rows, block_size):
        yield slice(start, min(start + block_size, num_rows))


class BlockReader:
    """Reads column blocks from one table, charging an :class:`IOCounter`.

    The reader is deliberately stateless between calls so that several query
    threads can share one instance; only the counter is mutated, matching the
    paper's "immutable data structures for lock-free inference" discipline.
    """

    def __init__(self, table: Table, io: IOCounter):
        self.table = table
        self.io = io

    def read_column_block(self, column: str, block_index: int) -> np.ndarray:
        """Read one block of one column, charging exactly one block I/O."""
        col = self.table.column(column)
        start = block_index * self.table.block_size
        if start >= self.table.num_rows or block_index < 0:
            raise IndexError(
                f"block {block_index} out of range for table {self.table.name!r}"
            )
        stop = min(start + self.table.block_size, self.table.num_rows)
        values = col.values[start:stop]
        bytes_per_row = max(1, col.nbytes // max(1, self.table.num_rows))
        self.io.record_block(
            self.table.name, column, rows=stop - start, nbytes=len(values) * bytes_per_row
        )
        return values

    def read_column_blocks(
        self, column: str, block_indices: Sequence[int]
    ) -> dict[int, np.ndarray]:
        """Read several blocks of one column (e.g. the surviving blocks)."""
        return {
            index: self.read_column_block(column, index) for index in block_indices
        }

    def total_blocks(self) -> int:
        return block_count(self.table.num_rows, self.table.block_size)
