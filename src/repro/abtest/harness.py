"""Side-by-side strategy comparison: plan decisions and Q-Error.

An :class:`ABHarness` plans (and estimates) every query of a workload
under **two** estimation strategies and emits a structured diff: where
the two plans diverge (join order, reader choice, partition pruning,
column order), what each side estimated, and each side's Q-Error against
the true cardinality.  This is the offline safety net behind strategy
rollouts -- before routing production traffic to a new strategy, the
diff shows exactly *which plan decisions would change* and whether the
accuracy delta justifies them.

Both sides plan through the ordinary :class:`~repro.engine.optimizer.
Optimizer`, so every comparison exercises the same protocol surface
production uses; the serving tier keeps the two sides' cached estimates
apart via the strategy-scoped cache keys (see
:func:`repro.serving.fingerprint.request_fingerprint`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.config import EngineConfig
from repro.engine.optimizer import Optimizer, PhysicalPlan
from repro.errors import EstimationError
from repro.estimators.base import EstimationStrategy
from repro.estimators.strategy import as_strategy
from repro.metrics.qerror import qerror
from repro.metrics.quantiles import quantile
from repro.sql.query import CardQuery
from repro.storage.catalog import Catalog
from repro.workloads.truth import true_count

__all__ = ["ABHarness", "ABReport", "QueryDiff"]


def _join_order_names(plan: PhysicalPlan) -> list[str]:
    ordered = []
    for join in plan.join_order:
        j = join.normalized()
        ordered.append(
            f"{j.left_table}.{j.left_column}={j.right_table}.{j.right_column}"
        )
    return ordered


@dataclass
class QueryDiff:
    """One query's plan-decision and accuracy diff between two strategies."""

    query: str
    #: the cache scopes the two sides actually answered under (a router's
    #: routed chain id, not just its configured name)
    scope_a: str
    scope_b: str
    join_order_a: list[str] = field(default_factory=list)
    join_order_b: list[str] = field(default_factory=list)
    #: table -> (reader_a, reader_b), only where they differ
    reader_diffs: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: table -> (pruned_a, pruned_b), only where they differ
    pruning_diffs: dict[str, tuple[list[int], list[int]]] = field(
        default_factory=dict
    )
    #: table -> (order_a, order_b), only where they differ
    column_order_diffs: dict[str, tuple[list[str], list[str]]] = field(
        default_factory=dict
    )
    estimate_a: float | None = None
    estimate_b: float | None = None
    true_count: float | None = None
    qerror_a: float | None = None
    qerror_b: float | None = None

    @property
    def join_order_differs(self) -> bool:
        return self.join_order_a != self.join_order_b

    @property
    def plan_differs(self) -> bool:
        return bool(
            self.join_order_differs
            or self.reader_diffs
            or self.pruning_diffs
            or self.column_order_diffs
        )

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "scope_a": self.scope_a,
            "scope_b": self.scope_b,
            "plan_differs": self.plan_differs,
            "join_order_differs": self.join_order_differs,
            "join_order_a": self.join_order_a,
            "join_order_b": self.join_order_b,
            "reader_diffs": {
                t: list(pair) for t, pair in sorted(self.reader_diffs.items())
            },
            "pruning_diffs": {
                t: [list(a), list(b)]
                for t, (a, b) in sorted(self.pruning_diffs.items())
            },
            "column_order_diffs": {
                t: [list(a), list(b)]
                for t, (a, b) in sorted(self.column_order_diffs.items())
            },
            "estimate_a": self.estimate_a,
            "estimate_b": self.estimate_b,
            "true_count": self.true_count,
            "qerror_a": self.qerror_a,
            "qerror_b": self.qerror_b,
        }


def _qerror_stats(qerrors: list[float]) -> dict:
    finite = [q for q in qerrors if math.isfinite(q)]
    if not finite:
        return {"count": 0, "p50": None, "p90": None, "max": None}
    return {
        "count": len(finite),
        "p50": quantile(finite, 0.5),
        "p90": quantile(finite, 0.9),
        "max": max(finite),
    }


@dataclass
class ABReport:
    """The workload-level outcome of one A/B comparison."""

    strategy_a: str
    strategy_b: str
    diffs: list[QueryDiff] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return len(self.diffs)

    @property
    def plans_differing(self) -> int:
        return sum(1 for d in self.diffs if d.plan_differs)

    def summary(self) -> dict:
        return {
            "strategy_a": self.strategy_a,
            "strategy_b": self.strategy_b,
            "queries": self.queries,
            "plans_differing": self.plans_differing,
            "join_orders_differing": sum(
                1 for d in self.diffs if d.join_order_differs
            ),
            "reader_choices_differing": sum(
                1 for d in self.diffs if d.reader_diffs
            ),
            "pruning_differing": sum(1 for d in self.diffs if d.pruning_diffs),
            "qerror_a": _qerror_stats(
                [d.qerror_a for d in self.diffs if d.qerror_a is not None]
            ),
            "qerror_b": _qerror_stats(
                [d.qerror_b for d in self.diffs if d.qerror_b is not None]
            ),
        }

    def to_dict(self) -> dict:
        return {
            "summary": self.summary(),
            "queries": [d.to_dict() for d in self.diffs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class ABHarness:
    """Runs two strategies side by side over one workload.

    Each side gets its own :class:`Optimizer` (shared engine config and
    catalog), so the comparison covers every estimate-driven plan
    decision, not just the final COUNT.  ``compute_truth`` (default on)
    executes the exact counting path of :func:`repro.workloads.truth.
    true_count` per query to anchor Q-Errors; switch it off for
    plan-decision-only diffs over workloads too large to count exactly.
    """

    def __init__(
        self,
        catalog: Catalog,
        strategy_a: EstimationStrategy,
        strategy_b: EstimationStrategy,
        config: EngineConfig | None = None,
        registry=None,
        compute_truth: bool = True,
    ):
        self.catalog = catalog
        self.strategy_a = as_strategy(strategy_a)
        self.strategy_b = as_strategy(strategy_b)
        self.config = config or EngineConfig()
        self.compute_truth = compute_truth
        self.optimizer_a = Optimizer(
            None,
            None,
            self.config,
            registry,
            catalog=catalog,
            strategy=self.strategy_a,
        )
        self.optimizer_b = Optimizer(
            None,
            None,
            self.config,
            registry,
            catalog=catalog,
            strategy=self.strategy_b,
        )

    # ------------------------------------------------------------------
    def _estimate(self, strategy: EstimationStrategy, query: CardQuery):
        try:
            value = float(strategy.estimate_count(query))
        except (EstimationError, NotImplementedError):
            return None
        return value if math.isfinite(value) else None

    def compare(self, query: CardQuery, truth: float | None = None) -> QueryDiff:
        """Plan and estimate one query under both strategies.

        ``truth`` short-circuits the exact count when the workload already
        carries it (generated workloads record ``true_counts``).
        """
        plan_a = self.optimizer_a.plan(query)
        plan_b = self.optimizer_b.plan(query)
        diff = QueryDiff(
            query=query.name or "query",
            scope_a=plan_a.strategy,
            scope_b=plan_b.strategy,
            join_order_a=_join_order_names(plan_a),
            join_order_b=_join_order_names(plan_b),
        )
        for table in query.tables:
            reader_a = plan_a.readers.get(table)
            reader_b = plan_b.readers.get(table)
            if reader_a != reader_b:
                diff.reader_diffs[table] = (
                    reader_a.value if reader_a else "",
                    reader_b.value if reader_b else "",
                )
            pruned_a = sorted(plan_a.pruned_partitions.get(table, ()))
            pruned_b = sorted(plan_b.pruned_partitions.get(table, ()))
            if pruned_a != pruned_b:
                diff.pruning_diffs[table] = (pruned_a, pruned_b)
            order_a = list(plan_a.column_orders.get(table, []))
            order_b = list(plan_b.column_orders.get(table, []))
            if order_a != order_b:
                diff.column_order_diffs[table] = (order_a, order_b)
        diff.estimate_a = self._estimate(self.strategy_a, query)
        diff.estimate_b = self._estimate(self.strategy_b, query)
        if truth is None and self.compute_truth:
            truth = float(true_count(self.catalog, query))
        if truth is not None:
            diff.true_count = float(truth)
            if diff.estimate_a is not None:
                diff.qerror_a = qerror(diff.estimate_a, diff.true_count)
            if diff.estimate_b is not None:
                diff.qerror_b = qerror(diff.estimate_b, diff.true_count)
        return diff

    def run(self, workload) -> ABReport:
        """The full workload comparison.

        ``workload`` is a sequence of queries or a generated
        :class:`~repro.workloads.generator.Workload`, whose recorded
        ``true_counts`` are reused instead of recounting.
        """
        queries: Sequence[CardQuery] = getattr(workload, "queries", workload)
        known: dict = getattr(workload, "true_counts", {})
        report = ABReport(
            strategy_a=self.strategy_a.strategy_id,
            strategy_b=self.strategy_b.strategy_id,
        )
        for query in queries:
            truth = known.get(query.name) if query.name else None
            report.diffs.append(self.compare(query, truth=truth))
        return report
