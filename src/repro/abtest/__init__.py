"""A/B testing of estimation strategies.

:class:`ABHarness` plans a workload under two
:class:`~repro.estimators.base.EstimationStrategy` implementations and
emits a structured :class:`ABReport`: per-query plan-decision diffs
(join order, reader choice, partition pruning, column order) plus
Q-Error against true cardinalities.  ``benchmarks/bench_strategy_ab.py``
drives it over the reproduction workloads and writes the JSON report CI
uploads as an artifact.
"""

from repro.abtest.harness import ABHarness, ABReport, QueryDiff

__all__ = ["ABHarness", "ABReport", "QueryDiff"]
