"""Runtime cardinality feedback: capture -> monitor -> forge priority.

See :mod:`repro.feedback.log` for the subsystem overview.
"""

from repro.feedback.log import FeedbackLog, FeedbackRecord, PendingEstimate

__all__ = ["FeedbackLog", "FeedbackRecord", "PendingEstimate"]
