"""The runtime cardinality feedback log.

The executor computes true cardinalities as a by-product of every scan and
join; until this module they were thrown away.  A :class:`FeedbackLog` is a
bounded, thread-safe ring of ``(fingerprint, table_scope, estimated,
actual, timestamp)`` pairs captured on the execution path -- free drift
evidence the Model Monitor consumes instead of (a share of) its synthetic
test queries, and the signal the forge uses to rank retrains by *observed*
error mass rather than fixed priorities (the paper's Section 4.4.2
monitor/fine-tune loop, driven by production queries instead of probes).

Two write paths feed one ring:

* **complete pairs** -- the executor knows both sides (the plan's estimate
  and the scan/join's actual cardinality) and appends a finished
  :class:`FeedbackRecord` via :meth:`FeedbackLog.record`;
* **pending estimates** -- the serving tier answers estimates (including
  cache hits, which never touch a model) before any actual exists.  It
  *notes* them via :meth:`FeedbackLog.note_estimate`; when the executor
  later observes the actual for the same fingerprint it pairs the two,
  preserving the serving-side provenance (``cache`` / ``model`` /
  ``fallback-*``) in the record's ``source``.

Non-finite estimates or actuals never enter the ring (counted in
``feedback_records_dropped_total{reason="non-finite"}``): a NaN here would
poison every Q-Error quantile computed downstream.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.metrics.qerror import qerror
from repro.obs.metrics import MetricsRegistry

__all__ = ["FeedbackLog", "FeedbackRecord", "PendingEstimate"]

#: drop reasons pre-registered so exports show explicit zeros
DROP_REASONS = ("non-finite", "pending-evicted")


@dataclass(frozen=True)
class FeedbackRecord:
    """One observed (estimate, actual) cardinality pair."""

    #: canonical query fingerprint (see :mod:`repro.serving.fingerprint`)
    fingerprint: Hashable
    #: tables the cardinality covers -- ``(table,)`` for scans, the sorted
    #: joined prefix for join steps
    table_scope: tuple[str, ...]
    estimated: float
    actual: float
    timestamp: float
    #: where the estimate came from: ``plan`` (optimizer-recorded), or the
    #: serving tier's provenance (``cache`` / ``model`` / ``fallback-*``)
    source: str = "plan"
    #: which execution step observed the actual: ``scan`` | ``join``
    kind: str = "scan"
    #: cache scope of the strategy that produced the estimate (see
    #: :meth:`repro.estimators.base.EstimationStrategy.cache_scope`);
    #: empty when the producer predates strategy routing
    strategy: str = ""

    @property
    def qerror(self) -> float:
        return qerror(self.estimated, self.actual)

    @property
    def log_qerror(self) -> float:
        """Natural log of the Q-Error -- the unit of observed error mass."""
        return math.log(self.qerror)


@dataclass(frozen=True)
class PendingEstimate:
    """A served estimate waiting for its runtime actual."""

    value: float
    source: str
    #: ``rows`` (COUNT estimates) or ``fraction`` (selectivities, scaled by
    #: the table's row count at pairing time)
    unit: str = "rows"
    #: cache scope of the answering strategy (kept through pairing)
    strategy: str = ""


class FeedbackLog:
    """Bounded, thread-safe runtime feedback ring plus a pending-estimate
    side table.

    Appends are O(1) under one lock; :meth:`drain` / :meth:`take_for_table`
    remove evidence atomically so a consumer (the monitor) never sees the
    same record twice while executor threads keep appending.
    """

    def __init__(
        self,
        capacity: int = 4096,
        pending_capacity: int = 1024,
        registry: MetricsRegistry | None = None,
    ):
        if capacity < 1:
            raise ValueError("feedback capacity must be >= 1")
        if pending_capacity < 1:
            raise ValueError("pending capacity must be >= 1")
        self.capacity = capacity
        self.pending_capacity = pending_capacity
        self.registry = (
            registry if registry is not None else MetricsRegistry(enabled=False)
        )
        self._lock = threading.Lock()
        self._records: deque[FeedbackRecord] = deque(maxlen=capacity)
        self._pending: OrderedDict[Hashable, PendingEstimate] = OrderedDict()
        if self.registry.enabled:
            self.registry.preregister(
                "feedback_records_dropped_total", "reason", DROP_REASONS
            )
            self.registry.preregister(
                "feedback_records_total", "kind", ("scan", "join")
            )

    # ------------------------------------------------------------------
    # Write path (executor / serving tier)
    # ------------------------------------------------------------------
    def record(
        self,
        fingerprint: Hashable,
        table_scope: Iterable[str],
        estimated: float,
        actual: float,
        source: str = "plan",
        kind: str = "scan",
        timestamp: float | None = None,
        strategy: str = "",
    ) -> FeedbackRecord | None:
        """Append one complete pair; returns ``None`` (and counts the drop)
        when either side is non-finite."""
        est = float(estimated)
        act = float(actual)
        if not (math.isfinite(est) and math.isfinite(act)):
            self.registry.counter(
                "feedback_records_dropped_total", reason="non-finite"
            ).inc()
            return None
        rec = FeedbackRecord(
            fingerprint=fingerprint,
            table_scope=tuple(table_scope),
            estimated=est,
            actual=act,
            timestamp=time.time() if timestamp is None else timestamp,
            source=source,
            kind=kind,
            strategy=strategy,
        )
        with self._lock:
            self._records.append(rec)
        self.registry.counter("feedback_records_total", kind=kind).inc()
        return rec

    def note_estimate(
        self,
        fingerprint: Hashable,
        table_scope: Iterable[str],
        value: float,
        source: str = "model",
        unit: str = "rows",
        strategy: str = "",
    ) -> None:
        """Register a served estimate awaiting its runtime actual.

        ``table_scope`` is accepted (and ignored) so callers need not
        special-case it; the scope is authoritative at pairing time, when
        the executor knows exactly which scan/join produced the actual.
        The side table is LRU-bounded: estimates that never execute are
        evicted (counted), not accumulated.
        """
        value = float(value)
        if not math.isfinite(value):
            self.registry.counter(
                "feedback_records_dropped_total", reason="non-finite"
            ).inc()
            return
        evicted = 0
        with self._lock:
            self._pending[fingerprint] = PendingEstimate(
                value, source, unit, strategy
            )
            self._pending.move_to_end(fingerprint)
            while len(self._pending) > self.pending_capacity:
                self._pending.popitem(last=False)
                evicted += 1
        if evicted:
            self.registry.counter(
                "feedback_records_dropped_total", reason="pending-evicted"
            ).inc(evicted)

    def take_estimate(self, fingerprint: Hashable) -> PendingEstimate | None:
        """Claim (and remove) the pending estimate for one fingerprint."""
        with self._lock:
            return self._pending.pop(fingerprint, None)

    # ------------------------------------------------------------------
    # Read path (monitor / forge)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def snapshot(self) -> list[FeedbackRecord]:
        """Every retained record, oldest first, without consuming."""
        with self._lock:
            return list(self._records)

    def drain(self) -> list[FeedbackRecord]:
        """Atomically remove and return every retained record."""
        with self._lock:
            records = list(self._records)
            self._records.clear()
        return records

    def records_for(self, table: str) -> list[FeedbackRecord]:
        """Single-table records for ``table`` (the COUNT-model evidence),
        oldest first, without consuming."""
        scope = (table,)
        with self._lock:
            return [r for r in self._records if r.table_scope == scope]

    def take_for_table(
        self, table: str, limit: int | None = None
    ) -> list[FeedbackRecord]:
        """Remove and return (up to ``limit`` of the most recent)
        single-table records for ``table``.

        Consuming matters: evidence against the *old* model must not
        re-fail a freshly retrained one -- the monitor takes what it uses,
        so a post-retrain reassessment only sees feedback produced after
        the swap.
        """
        scope = (table,)
        with self._lock:
            matching = [r for r in self._records if r.table_scope == scope]
            if limit is not None and limit < len(matching):
                matching = matching[len(matching) - limit :]
            if matching:
                taken = set(map(id, matching))
                kept = [r for r in self._records if id(r) not in taken]
                self._records.clear()
                self._records.extend(kept)
        return matching

    def scoped_tables(self) -> list[str]:
        """Tables with at least one single-table record, sorted."""
        with self._lock:
            tables = {
                r.table_scope[0]
                for r in self._records
                if len(r.table_scope) == 1
            }
        return sorted(tables)

    def error_mass(self, table: str) -> float:
        """Sum of log-Q-Error over retained single-table records.

        The forge's retrain-priority signal: many mildly-wrong or a few
        badly-wrong observed estimates both accumulate mass, unlike a p90
        that one lucky batch can mask.
        """
        return sum(r.log_qerror for r in self.records_for(table))

    def error_mass_by_strategy(self) -> dict[tuple[str, str], float]:
        """Observed log-Q-Error mass keyed by ``(strategy, table)``.

        The :class:`~repro.estimators.strategy.StrategyRouter`'s learning
        signal: only single-table records carry a clean per-table
        attribution, and records without strategy provenance (executor
        pairs that predate routing) are excluded rather than lumped under
        an empty key.
        """
        mass: dict[tuple[str, str], float] = {}
        for rec in self.snapshot():
            if not rec.strategy or len(rec.table_scope) != 1:
                continue
            key = (rec.strategy, rec.table_scope[0])
            mass[key] = mass.get(key, 0.0) + rec.log_qerror
        return mass
