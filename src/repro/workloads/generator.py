"""Random workload generation over a dataset bundle.

Generates the query class of the paper's hybrid workloads:

* **COUNT queries** -- acyclic equi-join templates drawn from the collected
  join schema with 1-4 single-column predicates (the JOB-light / STATS-CEB
  style);
* **aggregation queries** -- the same joins plus GROUP BY keys (the "Hybrid"
  extension the paper adds for evaluating aggregation processing);
* **NDV queries** -- single-table ``COUNT(DISTINCT col)`` with predicates,
  matching how ByteHouse asks ByteCard for hash-table pre-sizing.

Literals are drawn from actual column values so predicates are neither
always-true nor always-false, and every emitted query is checked against
ground truth to be non-empty and below a materialization cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.sql.query import (
    AggKind,
    AggSpec,
    CardQuery,
    JoinCondition,
    PredicateOp,
    TablePredicate,
)
from repro.storage.catalog import JoinEdge
from repro.utils.rng import derive_rng
from repro.workloads.truth import true_count


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated workload (mirrors Table 5's rows)."""

    name: str
    num_queries: int
    min_tables: int = 2
    max_tables: int = 5
    max_predicates: int = 4
    #: fraction of queries that carry a GROUP BY (the "hybrid" aggregations)
    aggregation_fraction: float = 0.4
    #: fraction of queries carrying a disjunctive (OR) predicate group --
    #: the form ByteCard rewrites via inclusion-exclusion and independence-
    #: based estimators systematically overestimate on overlapping ranges
    or_group_fraction: float = 0.3
    min_group_keys: int = 1
    max_group_keys: int = 2
    num_ndv_queries: int = 60
    #: reject queries whose true cardinality exceeds this (keeps end-to-end
    #: engine runs tractable); ``None`` disables the cap
    max_true_cardinality: float | None = 5e7
    seed: int = 7


@dataclass
class Workload:
    """A generated workload: COUNT/aggregation queries plus NDV queries."""

    name: str
    queries: list[CardQuery] = field(default_factory=list)
    ndv_queries: list[CardQuery] = field(default_factory=list)
    #: true COUNT per query name, filled during generation
    true_counts: dict[str, int] = field(default_factory=dict)

    def join_templates(self) -> set[frozenset[JoinCondition]]:
        """Distinct join structures (Table 5's '# of join templates')."""
        return {frozenset(q.joins) for q in self.queries if q.joins}


class _QueryBuilder:
    """Stateful random builder bound to one dataset bundle."""

    def __init__(self, bundle: DatasetBundle, spec: WorkloadSpec):
        self.bundle = bundle
        self.spec = spec
        self.rng = derive_rng(spec.seed, "workload", spec.name)
        self.catalog = bundle.catalog
        self.edges = list(self.catalog.join_schema)

    # -- join templates ---------------------------------------------------
    def random_join_template(
        self, num_tables: int
    ) -> tuple[tuple[str, ...], tuple[JoinCondition, ...]]:
        """Random connected acyclic template with ``num_tables`` tables."""
        if num_tables <= 1:
            names = self.catalog.table_names()
            return (names[self.rng.integers(len(names))],), ()
        start_edge = self.edges[self.rng.integers(len(self.edges))]
        tables = [start_edge.left_table, start_edge.right_table]
        joins = [self._to_condition(start_edge)]
        while len(tables) < num_tables:
            frontier = [
                edge
                for edge in self.edges
                if (edge.left_table in tables) != (edge.right_table in tables)
            ]
            if not frontier:
                break
            edge = frontier[self.rng.integers(len(frontier))]
            new_table = (
                edge.right_table if edge.left_table in tables else edge.left_table
            )
            tables.append(new_table)
            joins.append(self._to_condition(edge))
        return tuple(tables), tuple(joins)

    @staticmethod
    def _to_condition(edge: JoinEdge) -> JoinCondition:
        return JoinCondition(
            edge.left_table, edge.left_column, edge.right_table, edge.right_column
        ).normalized()

    # -- predicates ---------------------------------------------------------
    def random_predicate(self, table: str) -> TablePredicate | None:
        columns = self.bundle.filter_columns.get(table, [])
        if not columns:
            return None
        column = columns[self.rng.integers(len(columns))]
        values = self.catalog.table(table).column(column).values
        anchor = float(values[self.rng.integers(len(values))])
        choice = self.rng.random()
        if choice < 0.35:
            return TablePredicate(table, column, PredicateOp.EQ, anchor)
        if choice < 0.55:
            return TablePredicate(table, column, PredicateOp.LE, anchor)
        if choice < 0.75:
            return TablePredicate(table, column, PredicateOp.GE, anchor)
        if choice < 0.9:
            other = float(values[self.rng.integers(len(values))])
            low, high = min(anchor, other), max(anchor, other)
            return TablePredicate(table, column, PredicateOp.BETWEEN, (low, high))
        picks = values[self.rng.integers(len(values), size=3)]
        in_values = tuple(sorted({float(v) for v in picks}))
        return TablePredicate(table, column, PredicateOp.IN, in_values)

    def random_predicates(self, tables: tuple[str, ...]) -> tuple[TablePredicate, ...]:
        """Predicates clustered on a focus table.

        Analytical queries tend to stack several (often correlated) filters
        on one table -- the pattern that makes column ordering and reader
        selection matter.  A focus table receives most predicates; the rest
        spread over the remaining tables.
        """
        count = int(self.rng.integers(1, self.spec.max_predicates + 1))
        focus = tables[self.rng.integers(len(tables))]
        predicates: list[TablePredicate] = []
        used: set[tuple[str, str]] = set()
        for _ in range(count * 4):  # retry budget for duplicate columns
            if len(predicates) >= count:
                break
            if self.rng.random() < 0.7:
                table = focus
            else:
                table = tables[self.rng.integers(len(tables))]
            pred = self.random_predicate(table)
            if pred is None or (pred.table, pred.column) in used:
                continue
            used.add((pred.table, pred.column))
            predicates.append(pred)
        return tuple(predicates)

    def random_or_group(
        self, tables: tuple[str, ...], used: set[tuple[str, str]]
    ) -> tuple[TablePredicate, ...] | None:
        """A disjunction of predicates on one column of one table.

        Mixes overlapping ranges (e.g. two date windows sharing days --
        where independence-composed OR selectivities overestimate) with
        disjoint equality alternatives (``status = a OR status = b``).
        """
        table = tables[self.rng.integers(len(tables))]
        columns = [
            c
            for c in self.bundle.filter_columns.get(table, [])
            if (table, c) not in used
        ]
        if not columns:
            return None
        column = columns[self.rng.integers(len(columns))]
        values = self.catalog.table(table).column(column).values
        a = float(values[self.rng.integers(len(values))])
        b = float(values[self.rng.integers(len(values))])
        if self.rng.random() < 0.6:
            # Overlapping ranges: [min, mid+span] OR [mid, max'].
            low, high = min(a, b), max(a, b)
            mid = (low + high) / 2.0
            return (
                TablePredicate(table, column, PredicateOp.BETWEEN, (low, max(mid, low))),
                TablePredicate(
                    table, column, PredicateOp.BETWEEN,
                    (min((low + mid) / 2.0, high), high),
                ),
            )
        if a == b:
            return (TablePredicate(table, column, PredicateOp.EQ, a),)
        return (
            TablePredicate(table, column, PredicateOp.EQ, a),
            TablePredicate(table, column, PredicateOp.EQ, b),
        )

    def random_group_by(
        self, tables: tuple[str, ...]
    ) -> tuple[tuple[str, str], ...]:
        count = int(
            self.rng.integers(self.spec.min_group_keys, self.spec.max_group_keys + 1)
        )
        keys: list[tuple[str, str]] = []
        used: set[tuple[str, str]] = set()
        for _ in range(count * 4):
            if len(keys) >= count:
                break
            table = tables[self.rng.integers(len(tables))]
            columns = self.bundle.filter_columns.get(table, [])
            if not columns:
                continue
            column = columns[self.rng.integers(len(columns))]
            if (table, column) in used:
                continue
            used.add((table, column))
            keys.append((table, column))
        return tuple(keys)

    # -- NDV queries -----------------------------------------------------
    def random_ndv_query(self, index: int) -> CardQuery | None:
        tables = self.catalog.table_names()
        table = tables[self.rng.integers(len(tables))]
        columns = self.bundle.filter_columns.get(table, [])
        # Include high-NDV columns as NDV targets (they are the hard cases).
        targets = list(columns) + [
            col for (tbl, col) in self.bundle.high_ndv_columns if tbl == table
        ]
        if not targets:
            return None
        target = targets[self.rng.integers(len(targets))]
        # NDV queries carry predicates: the paper's motivating case is that
        # aggregation targets "often are subject to user-defined predicates,
        # making the precomputation of NDVs impractical".
        predicates: list[TablePredicate] = []
        for _ in range(int(self.rng.integers(1, 4))):
            pred = self.random_predicate(table)
            if pred is not None and pred.column != target:
                predicates.append(pred)
        if not predicates:
            return None
        return CardQuery(
            tables=(table,),
            predicates=tuple(predicates),
            agg=AggSpec(AggKind.COUNT_DISTINCT, table, target),
            name=f"{self.spec.name}-ndv-{index:03d}",
        )


def generate_workload(bundle: DatasetBundle, spec: WorkloadSpec) -> Workload:
    """Generate a full workload per ``spec``, validated against ground truth."""
    builder = _QueryBuilder(bundle, spec)
    workload = Workload(name=spec.name)
    rng = builder.rng

    attempts = 0
    max_attempts = spec.num_queries * 30
    while len(workload.queries) < spec.num_queries and attempts < max_attempts:
        attempts += 1
        num_tables = int(rng.integers(spec.min_tables, spec.max_tables + 1))
        tables, joins = builder.random_join_template(num_tables)
        if len(tables) < spec.min_tables:
            continue
        predicates = builder.random_predicates(tables)
        if not predicates:
            continue
        or_groups: tuple[tuple[TablePredicate, ...], ...] = ()
        if rng.random() < spec.or_group_fraction:
            used = {(p.table, p.column) for p in predicates}
            group = builder.random_or_group(tables, used)
            if group is not None:
                or_groups = (group,)
        is_agg = rng.random() < spec.aggregation_fraction
        group_by = builder.random_group_by(tables) if is_agg else ()
        if is_agg and not group_by:
            continue
        index = len(workload.queries)
        query = CardQuery(
            tables=tables,
            joins=joins,
            predicates=predicates,
            or_groups=or_groups,
            group_by=group_by,
            agg=AggSpec(AggKind.COUNT),
            name=f"{spec.name}-q{index:03d}",
        )
        truth = true_count(bundle.catalog, query)
        if truth <= 0:
            continue
        if (
            spec.max_true_cardinality is not None
            and truth > spec.max_true_cardinality
        ):
            continue
        workload.queries.append(query)
        workload.true_counts[query.name] = truth

    if len(workload.queries) < spec.num_queries:
        raise RuntimeError(
            f"workload {spec.name!r}: only generated {len(workload.queries)} of "
            f"{spec.num_queries} queries within the attempt budget"
        )

    ndv_attempts = 0
    while (
        len(workload.ndv_queries) < spec.num_ndv_queries
        and ndv_attempts < spec.num_ndv_queries * 20
    ):
        ndv_attempts += 1
        query = builder.random_ndv_query(len(workload.ndv_queries))
        if query is None:
            continue
        workload.ndv_queries.append(query)
    return workload
