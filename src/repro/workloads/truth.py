"""Exact ground truth for COUNT, NDV, and group-by NDV.

``true_count`` counts acyclic join results *without materializing them*,
using Yannakakis-style weighted message passing over the query's join tree:
every surviving row starts with weight 1; each child table is aggregated
into per-join-key weight sums which multiply into its parent's row weights;
the answer is the root's weight total.  This is exact for the acyclic join
templates the workload generators emit and runs in near-linear time, which
is what makes Q-Error evaluation over hundreds of queries feasible.

``true_group_ndv`` counts distinct group-key combinations over a join by
propagating *deduplicated projections* instead of weights.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.estimators.jointree import build_join_tree as _join_tree
from repro.sql.query import AggKind, CardQuery, JoinCondition
from repro.storage.catalog import Catalog
from repro.workloads.predicates import table_mask


def _subtree_weights(
    catalog: Catalog,
    query: CardQuery,
    children: dict[str, list[tuple[str, JoinCondition]]],
    table: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Surviving join-key-independent weights of ``table``'s subtree.

    Returns ``(rows_mask_indices_values, weights)`` where the first array is
    the table's surviving rows' values *per row* (the caller slices the join
    column), but to stay general we return the surviving row indices and the
    per-row weights.
    """
    tbl = catalog.table(table)
    mask = table_mask(tbl, query)
    indices = np.flatnonzero(mask)
    weights = np.ones(indices.size, dtype=np.float64)
    for child, join in children[table]:
        child_indices, child_weights = _subtree_weights(catalog, query, children, child)
        child_key = catalog.table(child).column(join.side_for(child)).values[child_indices]
        # Aggregate child weights per join-key value.
        uniques, inverse = np.unique(child_key, return_inverse=True)
        if uniques.size == 0:
            return indices[:0], weights[:0]
        sums = np.zeros(uniques.size, dtype=np.float64)
        np.add.at(sums, inverse, child_weights)
        # Multiply into the parent rows joining those values.
        parent_key = tbl.column(join.side_for(table)).values[indices]
        positions = np.clip(np.searchsorted(uniques, parent_key), 0, uniques.size - 1)
        matched = uniques[positions] == parent_key
        factor = np.where(matched, sums[positions], 0.0)
        weights = weights * factor
        keep = weights > 0
        indices = indices[keep]
        weights = weights[keep]
    return indices, weights


def true_count(catalog: Catalog, query: CardQuery) -> int:
    """Exact COUNT(*) of the query's (acyclic) join with its predicates."""
    if query.is_single_table():
        tbl = catalog.table(query.tables[0])
        return int(table_mask(tbl, query).sum())
    children = _join_tree(query)
    _indices, weights = _subtree_weights(catalog, query, children, query.tables[0])
    return int(round(weights.sum()))


def true_ndv(catalog: Catalog, query: CardQuery) -> int:
    """Exact COUNT(DISTINCT col) for a single-table query with predicates."""
    if query.agg.kind is not AggKind.COUNT_DISTINCT:
        raise ExecutionError("true_ndv requires a COUNT DISTINCT aggregate")
    if not query.is_single_table():
        raise ExecutionError("true_ndv supports single-table queries only")
    table = catalog.table(query.tables[0])
    assert query.agg.column is not None
    mask = table_mask(table, query)
    values = table.column(query.agg.column).values[mask]
    if values.size == 0:
        return 0
    return int(np.unique(values).size)


def true_group_ndv(catalog: Catalog, query: CardQuery) -> int:
    """Exact number of distinct group-key combinations in the join result.

    This is the quantity an aggregation operator's hash table must hold --
    the ground truth for the hash-table pre-sizing experiments (Fig. 6b).
    Computed by propagating deduplicated projections along the join tree, so
    intermediate size is bounded by the product of group-key domains rather
    than the join size.
    """
    if not query.group_by:
        raise ExecutionError("query has no GROUP BY keys")
    if query.is_single_table():
        table = catalog.table(query.tables[0])
        mask = table_mask(table, query)
        stack = np.stack(
            [table.column(col).values[mask] for _t, col in query.group_by]
        )
        if stack.shape[1] == 0:
            return 0
        return int(np.unique(stack, axis=1).shape[1])

    children = _join_tree(query)
    root = query.tables[0]
    projection = _subtree_projection(catalog, query, children, root, parent_join=None)
    if projection.shape[1] == 0:
        return 0
    group_cols = [i for i, _ in enumerate(query.group_by)]
    if not group_cols:
        return 0
    return int(np.unique(projection[group_cols, :], axis=1).shape[1])


def _subtree_projection(
    catalog: Catalog,
    query: CardQuery,
    children: dict[str, list[tuple[str, JoinCondition]]],
    table: str,
    parent_join: JoinCondition | None,
) -> np.ndarray:
    """Distinct (group-keys..., parent-join-key?) tuples of a subtree.

    Rows of the returned matrix: first ``len(query.group_by)`` rows are the
    group-key columns (columns not in this subtree are filled with zero and
    contribute nothing to distinctness ordering because they are constant),
    and, when ``parent_join`` is given, one extra row holds the join-key
    values toward the parent.
    """
    tbl = catalog.table(table)
    mask = table_mask(tbl, query)
    indices = np.flatnonzero(mask)

    num_groups = len(query.group_by)
    rows = [np.zeros(indices.size, dtype=np.int64) for _ in range(num_groups)]
    owned = [i for i, (t, _c) in enumerate(query.group_by) if t == table]
    for i in owned:
        _t, col = query.group_by[i]
        rows[i] = tbl.column(col).values[indices].astype(np.int64)

    matrix = np.stack(rows) if num_groups else np.empty((0, indices.size), dtype=np.int64)

    for child, join in children[table]:
        child_proj = _subtree_projection(catalog, query, children, child, join)
        child_key = child_proj[-1, :]
        parent_key = tbl.column(join.side_for(table)).values[indices]
        # Join: for each parent tuple, expand with matching distinct child tuples.
        order = np.argsort(child_key, kind="stable")
        child_sorted = child_proj[:, order]
        sorted_keys = child_key[order]
        left = np.searchsorted(sorted_keys, parent_key, side="left")
        right = np.searchsorted(sorted_keys, parent_key, side="right")
        counts = right - left
        parent_repeat = np.repeat(np.arange(indices.size), counts)
        child_take = np.concatenate(
            [np.arange(lo, hi) for lo, hi in zip(left, right)]
        ) if indices.size else np.empty(0, dtype=np.int64)
        matrix = matrix[:, parent_repeat] + child_sorted[:-1, child_take]
        indices = indices[parent_repeat]

    out_rows = [matrix]
    if parent_join is not None:
        parent_key = tbl.column(parent_join.side_for(table)).values[indices]
        out_rows.append(parent_key[np.newaxis, :].astype(np.int64))
    full = np.concatenate(out_rows, axis=0) if out_rows else matrix
    if full.shape[1] == 0:
        return full
    return np.unique(full, axis=1)
