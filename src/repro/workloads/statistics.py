"""Workload statistics: the rows of the paper's Table 5."""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.workloads.generator import Workload
from repro.workloads.truth import true_count


@dataclass(frozen=True)
class WorkloadStatistics:
    """One column of Table 5."""

    name: str
    num_queries: int
    num_join_templates: int
    min_joined_tables: int
    max_joined_tables: int
    min_group_keys: int
    max_group_keys: int
    min_true_cardinality: int
    max_true_cardinality: int
    queries_at_max_tables: int
    queries_at_max_group_keys: int

    def as_rows(self) -> list[tuple[str, str]]:
        """Render as (label, value) pairs matching Table 5's layout."""
        return [
            ("# of queries", str(self.num_queries)),
            ("# of join templates", str(self.num_join_templates)),
            ("# of joined tables", f"{self.min_joined_tables}-{self.max_joined_tables}"),
            ("# of group-by keys", f"{self.min_group_keys}-{self.max_group_keys}"),
            (
                "range of true cardinality",
                f"{self.min_true_cardinality:.1e} - {self.max_true_cardinality:.1e}",
            ),
            ("# of queries hit the max joined-table", str(self.queries_at_max_tables)),
            ("# of queries hit the max group-by key", str(self.queries_at_max_group_keys)),
        ]


def compute_statistics(catalog: Catalog, workload: Workload) -> WorkloadStatistics:
    """Compute Table 5 statistics for a generated workload."""
    if not workload.queries:
        raise ValueError(f"workload {workload.name!r} has no queries")
    joined = [q.num_joined_tables() for q in workload.queries]
    group_keys = [len(q.group_by) for q in workload.queries if q.group_by]
    truths = [
        workload.true_counts.get(q.name) or true_count(catalog, q)
        for q in workload.queries
    ]
    max_tables = max(joined)
    max_groups = max(group_keys) if group_keys else 0
    return WorkloadStatistics(
        name=workload.name,
        num_queries=len(workload.queries),
        num_join_templates=len(workload.join_templates()),
        min_joined_tables=min(joined),
        max_joined_tables=max_tables,
        min_group_keys=min(group_keys) if group_keys else 0,
        max_group_keys=max_groups,
        min_true_cardinality=min(truths),
        max_true_cardinality=max(truths),
        queries_at_max_tables=sum(1 for j in joined if j == max_tables),
        queries_at_max_group_keys=sum(1 for g in group_keys if g == max_groups),
    )
