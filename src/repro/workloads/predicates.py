"""Vectorized predicate evaluation over numpy columns.

Shared by the ground-truth calculator, the execution engine, and the
sampling estimator, so that "what a predicate selects" has exactly one
definition in the code base.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.sql.query import CardQuery, PredicateOp, TablePredicate
from repro.storage.table import Table


def predicate_mask(values: np.ndarray, pred: TablePredicate) -> np.ndarray:
    """Boolean mask of rows in ``values`` satisfying ``pred``."""
    op = pred.op
    if op is PredicateOp.EQ:
        return values == pred.value
    if op is PredicateOp.NE:
        return values != pred.value
    if op is PredicateOp.LT:
        return values < pred.value
    if op is PredicateOp.LE:
        return values <= pred.value
    if op is PredicateOp.GT:
        return values > pred.value
    if op is PredicateOp.GE:
        return values >= pred.value
    if op is PredicateOp.IN:
        return np.isin(values, np.asarray(pred.value))
    if op is PredicateOp.BETWEEN:
        low, high = pred.value  # type: ignore[misc]
        return (values >= low) & (values <= high)
    raise ExecutionError(f"unsupported predicate operator {op}")


def table_mask(table: Table, query: CardQuery) -> np.ndarray:
    """Mask of ``table`` rows satisfying the query's predicates on it.

    Applies the AND-ed predicates and any OR-groups whose members all
    reference this table.  OR-groups spanning several tables are not
    produced by the workload generators and are rejected.
    """
    mask = np.ones(len(table), dtype=bool)
    for pred in query.predicates:
        if pred.table == table.name:
            mask &= predicate_mask(table.column(pred.column).values, pred)
    for group in query.or_groups:
        group_tables = {p.table for p in group}
        if table.name not in group_tables:
            continue
        if group_tables != {table.name}:
            raise ExecutionError(
                "OR-groups spanning multiple tables are not supported"
            )
        group_mask = np.zeros(len(table), dtype=bool)
        for pred in group:
            group_mask |= predicate_mask(table.column(pred.column).values, pred)
        mask &= group_mask
    return mask
