"""The paper's three evaluation workloads (Table 5).

* **JOB-Hybrid**: 100 queries over IMDB, 2-5 joined tables, 1-2 group-by
  keys.  Based on JOB-light (no string-pattern predicates) extended with
  aggregation queries.
* **STATS-Hybrid**: 200 queries over STATS, 2-8 joined tables, 1-2 group-by
  keys.  Based on STATS-CEB extended with aggregation queries.
* **AEOLUS-Online**: 200 queries over the 5-table AEOLUS schema, 2-5 joined
  tables, 2-4 group-by keys, extracted (here: generated) to reflect the
  online business workload.
"""

from __future__ import annotations

from repro.datasets.base import DatasetBundle
from repro.workloads.generator import Workload, WorkloadSpec, generate_workload


def job_hybrid(
    bundle: DatasetBundle, num_queries: int = 100, seed: int = 101
) -> Workload:
    """JOB-Hybrid over an IMDB bundle."""
    spec = WorkloadSpec(
        name="JOB-Hybrid",
        num_queries=num_queries,
        min_tables=2,
        max_tables=5,
        max_predicates=4,
        aggregation_fraction=0.35,
        min_group_keys=1,
        max_group_keys=2,
        num_ndv_queries=max(20, num_queries // 2),
        seed=seed,
    )
    return generate_workload(bundle, spec)


def stats_hybrid(
    bundle: DatasetBundle, num_queries: int = 200, seed: int = 102
) -> Workload:
    """STATS-Hybrid over a STATS bundle."""
    spec = WorkloadSpec(
        name="STATS-Hybrid",
        num_queries=num_queries,
        min_tables=2,
        max_tables=8,
        max_predicates=4,
        aggregation_fraction=0.35,
        min_group_keys=1,
        max_group_keys=2,
        num_ndv_queries=max(20, num_queries // 2),
        seed=seed,
    )
    return generate_workload(bundle, spec)


def aeolus_online(
    bundle: DatasetBundle, num_queries: int = 200, seed: int = 103
) -> Workload:
    """AEOLUS-Online over an AEOLUS bundle."""
    spec = WorkloadSpec(
        name="AEOLUS-Online",
        num_queries=num_queries,
        min_tables=2,
        max_tables=5,
        max_predicates=3,
        aggregation_fraction=0.5,
        min_group_keys=2,
        max_group_keys=4,
        num_ndv_queries=max(20, num_queries // 2),
        seed=seed,
    )
    return generate_workload(bundle, spec)
