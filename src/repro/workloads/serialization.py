"""Workload (de)serialization: SQL files with cached ground truth.

Workloads are reproducible artifacts: each query is stored as its SQL text
plus its true cardinality, one JSON object per line, so a generated
workload can be shipped, diffed, and re-bound against a regenerated (same
seed) dataset without recomputing ground truth.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.sql.binder import bind_sql
from repro.storage.catalog import Catalog
from repro.workloads.generator import Workload

_FORMAT_VERSION = 1


def save_workload(workload: Workload, path: str | Path) -> None:
    """Write a workload to a JSON-lines file."""
    path = Path(path)
    lines = [
        json.dumps(
            {
                "format": _FORMAT_VERSION,
                "name": workload.name,
                "num_queries": len(workload.queries),
                "num_ndv_queries": len(workload.ndv_queries),
            }
        )
    ]
    for query in workload.queries:
        lines.append(
            json.dumps(
                {
                    "kind": "count",
                    "name": query.name,
                    "sql": query.to_sql(),
                    "true_count": workload.true_counts.get(query.name),
                }
            )
        )
    for query in workload.ndv_queries:
        lines.append(
            json.dumps({"kind": "ndv", "name": query.name, "sql": query.to_sql()})
        )
    path.write_text("\n".join(lines) + "\n")


def load_workload(path: str | Path, catalog: Catalog) -> Workload:
    """Read a workload back, re-binding each SQL string against ``catalog``."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise ReproError(f"workload file {path} is empty")
    header = json.loads(lines[0])
    if header.get("format") != _FORMAT_VERSION:
        raise ReproError(
            f"workload file {path} has unsupported format {header.get('format')!r}"
        )
    workload = Workload(name=header["name"])
    for line in lines[1:]:
        if not line.strip():
            continue
        record = json.loads(line)
        query = bind_sql(record["sql"], catalog, name=record["name"])
        if record["kind"] == "count":
            workload.queries.append(query)
            if record.get("true_count") is not None:
                workload.true_counts[query.name] = int(record["true_count"])
        elif record["kind"] == "ndv":
            workload.ndv_queries.append(query)
        else:
            raise ReproError(f"unknown workload record kind {record['kind']!r}")
    return workload
