"""Workload generation and ground truth.

Builds the paper's three evaluation workloads -- JOB-Hybrid, STATS-Hybrid,
and AEOLUS-Online (Table 5) -- as sets of bound :class:`repro.sql.CardQuery`
objects over the synthetic datasets, and computes exact ground truth
(COUNT, NDV) for Q-Error evaluation.
"""

from repro.workloads.truth import true_count, true_ndv, true_group_ndv
from repro.workloads.generator import Workload, WorkloadSpec, generate_workload
from repro.workloads.definitions import (
    job_hybrid,
    stats_hybrid,
    aeolus_online,
)
from repro.workloads.statistics import WorkloadStatistics, compute_statistics
from repro.workloads.serialization import save_workload, load_workload

__all__ = [
    "true_count",
    "true_ndv",
    "true_group_ndv",
    "Workload",
    "WorkloadSpec",
    "generate_workload",
    "job_hybrid",
    "stats_hybrid",
    "aeolus_online",
    "WorkloadStatistics",
    "compute_statistics",
    "save_workload",
    "load_workload",
]
