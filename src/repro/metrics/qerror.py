"""Q-Error: the standard multiplicative cardinality-estimation error.

For a true cardinality ``t`` and an estimate ``e``::

    qerror(e, t) = max(e / t, t / e)        (both clamped to >= 1 row)

The theoretical lower bound is 1 (a perfect estimate).  The paper reports
Q-Error at the 50th/90th/99th percentiles (Tables 1 and 2) and as violin plots
(Figure 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.metrics.quantiles import quantile

#: Estimates and truths below this many rows are clamped before dividing, the
#: usual convention so that empty results do not yield infinite errors.
_CLAMP_ROWS = 1.0


def qerror(estimate: float, truth: float) -> float:
    """Return the Q-Error of a single estimate.

    Both arguments are clamped to at least one row; the result is always
    ``>= 1``.  Non-finite inputs (NaN, +/-inf) are rejected with
    ``ValueError``: ``max(nan, 1.0)`` is NaN in Python, so letting them
    through would silently poison every quantile and drift series computed
    downstream.

    >>> qerror(10, 100)
    10.0
    >>> qerror(100, 10)
    10.0
    >>> qerror(0, 0)
    1.0
    """
    est = float(estimate)
    tru = float(truth)
    if not math.isfinite(est):
        raise ValueError(f"non-finite estimate in qerror: {est!r}")
    if not math.isfinite(tru):
        raise ValueError(f"non-finite truth in qerror: {tru!r}")
    est = max(est, _CLAMP_ROWS)
    tru = max(tru, _CLAMP_ROWS)
    return max(est / tru, tru / est)


def qerror_many(
    estimates: Iterable[float], truths: Iterable[float]
) -> np.ndarray:
    """Vectorized :func:`qerror` over parallel sequences.

    Raises ``ValueError`` when the sequences differ in length or when
    either side contains a non-finite value.
    """
    est = np.asarray(list(estimates), dtype=np.float64)
    tru = np.asarray(list(truths), dtype=np.float64)
    if est.shape != tru.shape:
        raise ValueError(
            f"estimates and truths differ in length: {est.shape} vs {tru.shape}"
        )
    if not np.isfinite(est).all():
        raise ValueError("non-finite estimate in qerror_many")
    if not np.isfinite(tru).all():
        raise ValueError("non-finite truth in qerror_many")
    est = np.maximum(est, _CLAMP_ROWS)
    tru = np.maximum(tru, _CLAMP_ROWS)
    return np.maximum(est / tru, tru / est)


@dataclass(frozen=True)
class QErrorSummary:
    """Quantile summary of a batch of Q-Errors (one cell group of Table 1/2)."""

    count: int
    p50: float
    p90: float
    p99: float
    maximum: float
    mean: float

    def as_row(self) -> tuple[float, float, float]:
        """The (50%, 90%, 99%) triple as printed in the paper's tables."""
        return (self.p50, self.p90, self.p99)


def summarize_qerrors(qerrors: Sequence[float]) -> QErrorSummary:
    """Summarize Q-Errors into the paper's quantile report.

    Raises ``ValueError`` on an empty input: a summary of nothing is a bug in
    the caller's workload, not a value.
    """
    arr = np.asarray(qerrors, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty Q-Error sample")
    return QErrorSummary(
        count=int(arr.size),
        p50=quantile(arr, 0.50),
        p90=quantile(arr, 0.90),
        p99=quantile(arr, 0.99),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )
