"""Latency records for the end-to-end evaluation (Figure 5).

The engine's cost model produces a deterministic latency in abstract cost
units per query; :class:`LatencyProfile` aggregates a workload's latencies
into the normalized quantile bars the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.metrics.quantiles import quantile


@dataclass(frozen=True)
class LatencyRecord:
    """Latency breakdown of one executed query, in abstract cost units."""

    query_id: str
    estimation_cost: float
    io_cost: float
    cpu_cost: float

    @property
    def total(self) -> float:
        return self.estimation_cost + self.io_cost + self.cpu_cost


@dataclass
class LatencyProfile:
    """Collects per-query latencies and reports the paper's quantile bars."""

    records: list[LatencyRecord] = field(default_factory=list)

    def add(self, record: LatencyRecord) -> None:
        self.records.append(record)

    def totals(self) -> list[float]:
        return [r.total for r in self.records]

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` (0-1) across recorded queries."""
        return quantile(self.totals(), q)

    def bars(self, qs: Sequence[float] = (0.50, 0.75, 0.90, 0.99)) -> dict[float, float]:
        """The P50/P75/P90/P99 bars shown in Figure 5."""
        return {q: self.percentile(q) for q in qs}

    @staticmethod
    def normalize(
        profiles: dict[str, "LatencyProfile"],
        qs: Sequence[float] = (0.50, 0.75, 0.90, 0.99),
    ) -> dict[str, dict[float, float]]:
        """Normalize several methods' bars against the global maximum.

        Mirrors the paper's presentation: "latency normalized against the
        highest value in each plot".
        """
        raw = {name: profile.bars(qs) for name, profile in profiles.items()}
        peak = max(v for bars in raw.values() for v in bars.values())
        if peak <= 0:
            raise ValueError("cannot normalize all-zero latency profiles")
        return {
            name: {q: v / peak for q, v in bars.items()}
            for name, bars in raw.items()
        }
