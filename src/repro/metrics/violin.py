"""Violin-plot statistics for Figure 7.

The paper presents Q-Error distributions as violin plots; the quantities a
reader extracts from such a plot are the median, the interquartile range, the
whisker extent, and the density mass near 1.  :class:`ViolinStats` captures
exactly those so the benchmark harness can print a textual violin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.quantiles import quantile


@dataclass(frozen=True)
class ViolinStats:
    """Summary of one violin (one method on one workload)."""

    count: int
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    #: Fraction of the distribution with Q-Error below 2 (the "width" of the
    #: violin near the optimum -- most mass concentrated at small values).
    frac_below_2: float

    @property
    def iqr(self) -> float:
        """Interquartile range (height of the box inside the violin)."""
        return self.p75 - self.p25


def violin_stats(values: Sequence[float]) -> ViolinStats:
    """Compute :class:`ViolinStats` for a sample of Q-Errors."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot compute violin statistics of an empty sample")
    return ViolinStats(
        count=int(arr.size),
        minimum=float(arr.min()),
        p25=quantile(arr, 0.25),
        median=quantile(arr, 0.50),
        p75=quantile(arr, 0.75),
        p95=quantile(arr, 0.95),
        maximum=float(arr.max()),
        frac_below_2=float(np.mean(arr < 2.0)),
    )
