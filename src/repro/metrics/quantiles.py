"""Quantile helpers shared by the metric modules.

A thin wrapper over :func:`numpy.quantile` that pins the interpolation method
so every table in the reproduction uses the same definition of "P99".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def quantile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """Return the ``q``-quantile (0 <= q <= 1) with linear interpolation."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot take a quantile of an empty sample")
    return float(np.quantile(arr, q, method="linear"))


def quantiles(
    values: Sequence[float] | np.ndarray, qs: Sequence[float]
) -> list[float]:
    """Return several quantiles of the same sample at once."""
    return [quantile(values, q) for q in qs]
