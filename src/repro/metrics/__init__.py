"""Evaluation metrics used throughout the reproduction.

The central metric is the *Q-Error* (Section 1 of the paper), the
multiplicative estimation error ``max(est/true, true/est)`` whose theoretical
lower bound is 1.  The package also provides quantile summaries (Tables 1-2),
violin-plot statistics (Figure 7), and latency/cost records (Figure 5).
"""

from repro.metrics.qerror import qerror, qerror_many, QErrorSummary, summarize_qerrors
from repro.metrics.quantiles import quantile, quantiles
from repro.metrics.violin import ViolinStats, violin_stats
from repro.metrics.latency import LatencyRecord, LatencyProfile

__all__ = [
    "qerror",
    "qerror_many",
    "QErrorSummary",
    "summarize_qerrors",
    "quantile",
    "quantiles",
    "ViolinStats",
    "violin_stats",
    "LatencyRecord",
    "LatencyProfile",
]
