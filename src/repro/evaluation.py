"""Evaluation harness: estimator accuracy over a workload in one call.

The benchmarks and examples repeatedly need "run estimator X over workload
W and summarize Q-Errors"; this module is that loop, with ground truth
cached in the workload where available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.base import CountEstimator, NdvEstimator
from repro.metrics import QErrorSummary, qerror_many, summarize_qerrors
from repro.storage.catalog import Catalog
from repro.workloads.generator import Workload
from repro.workloads.truth import true_count, true_ndv


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy summary of one estimator on one workload."""

    estimator: str
    workload: str
    count_summary: QErrorSummary | None
    ndv_summary: QErrorSummary | None


def evaluate_count(
    catalog: Catalog, workload: Workload, estimator: CountEstimator
) -> QErrorSummary:
    """Q-Error summary of COUNT estimates over the workload's queries."""
    estimates = [estimator.estimate_count(q) for q in workload.queries]
    truths = [
        workload.true_counts.get(q.name) or true_count(catalog, q)
        for q in workload.queries
    ]
    return summarize_qerrors(qerror_many(estimates, truths))


def evaluate_ndv(
    catalog: Catalog, workload: Workload, estimator: NdvEstimator
) -> QErrorSummary:
    """Q-Error summary of NDV estimates over the workload's NDV queries."""
    estimates, truths = [], []
    for query in workload.ndv_queries:
        truth = true_ndv(catalog, query)
        if truth == 0:
            continue
        estimates.append(estimator.estimate_ndv(query))
        truths.append(truth)
    return summarize_qerrors(qerror_many(estimates, truths))


def evaluate(
    catalog: Catalog,
    workload: Workload,
    count_estimator: CountEstimator | None = None,
    ndv_estimator: NdvEstimator | None = None,
    name: str = "",
) -> EvaluationResult:
    """Evaluate whichever estimators are supplied on one workload."""
    if count_estimator is None and ndv_estimator is None:
        raise ValueError("supply at least one estimator to evaluate")
    return EvaluationResult(
        estimator=name
        or (count_estimator or ndv_estimator).name,  # type: ignore[union-attr]
        workload=workload.name,
        count_summary=(
            evaluate_count(catalog, workload, count_estimator)
            if count_estimator is not None
            else None
        ),
        ndv_summary=(
            evaluate_ndv(catalog, workload, ndv_estimator)
            if ndv_estimator is not None
            else None
        ),
    )
