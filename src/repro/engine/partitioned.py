"""Partition pruning and the parallel partitioned-scan driver.

The driver is the engine's partition-native entry point for table scans:

1. **Prune** -- every partition's zone maps are tested against the query's
   predicates; partitions that provably contain no matching row are skipped
   before any block I/O (the counters below record how many).
2. **Fan out** -- surviving partitions are scanned with their per-partition
   reader choice (single- or multi-stage), either sequentially or over a
   bounded ``ThreadPoolExecutor`` (``EngineConfig.scan_parallelism``).
3. **Merge** -- per-partition :class:`ScanResult`s and private
   :class:`IOCounter`s are folded back *in partition order*, so results and
   I/O charges are bit-identical at any parallelism level.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.engine.readers import (
    ReaderKind,
    ScanResult,
    multi_stage_scan,
    single_stage_scan,
)
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import CardQuery
from repro.storage.io_stats import IOCounter
from repro.storage.partitions import Partition
from repro.storage.table import Table


def partition_refuted(table: Table, partition: Partition, query: CardQuery) -> bool:
    """True when zone maps prove no row of ``partition`` can match.

    A partition is refuted when any AND-ed predicate is refuted by its
    column's zone map, or when every member of an OR-group local to this
    table is refuted (the group then selects nothing in this partition).
    """
    if partition.num_rows == 0:
        return True
    for pred in query.predicates:
        if pred.table != table.name:
            continue
        if table.zone_map(partition.index, pred.column).refutes(pred):
            return True
    for group in query.or_groups:
        members = [p for p in group if p.table == table.name]
        if not members:
            continue
        if all(
            table.zone_map(partition.index, p.column).refutes(p) for p in members
        ):
            return True
    return False


def prune_partitions(
    table: Table, query: CardQuery
) -> tuple[list[Partition], list[int]]:
    """Split partitions into (survivors, pruned partition indices)."""
    survivors: list[Partition] = []
    pruned: list[int] = []
    for partition in table.partitions():
        if partition_refuted(table, partition, query):
            pruned.append(partition.index)
        else:
            survivors.append(partition)
    return survivors, pruned


def _merge_scan_results(
    table: Table,
    default_reader: ReaderKind,
    results: list[ScanResult],
    pruned: list[int],
    total_partitions: int,
) -> ScanResult:
    """Fold per-partition results (already in partition order) into one."""
    indices = [r.row_indices for r in results if r.row_indices.size]
    row_indices = (
        np.concatenate(indices) if indices else np.empty(0, dtype=np.int64)
    )
    stage_survivors: list[int] = []
    for result in results:
        for stage, survivors in enumerate(result.stage_survivors):
            if stage == len(stage_survivors):
                stage_survivors.append(survivors)
            else:
                stage_survivors[stage] += survivors
    return ScanResult(
        table=table.name,
        reader=default_reader,
        row_indices=row_indices.astype(np.int64),
        blocks_read=sum(r.blocks_read for r in results),
        rows_scanned=sum(r.rows_scanned for r in results),
        random_blocks=sum(r.random_blocks for r in results),
        stage_survivors=stage_survivors,
        partitions_scanned=len(results),
        partitions_pruned=len(pruned),
        pruned_partition_indices=tuple(pruned),
        partition_scans=list(results) if total_partitions > 1 else [],
    )


def partitioned_scan(
    table: Table,
    query: CardQuery,
    payload_columns: list[str],
    io: IOCounter,
    *,
    default_reader: ReaderKind = ReaderKind.SINGLE_STAGE,
    default_column_order: list[str] | None = None,
    partition_readers: dict[int, ReaderKind] | None = None,
    partition_column_orders: dict[int, list[str]] | None = None,
    parallelism: int = 1,
    prune: bool = True,
    registry: MetricsRegistry | None = None,
) -> ScanResult:
    """Prune, scan surviving partitions (possibly in parallel), and merge.

    ``partition_readers`` / ``partition_column_orders`` carry the
    optimizer's per-partition decisions keyed by partition index; partitions
    without an entry fall back to the table-level ``default_reader`` /
    ``default_column_order``.  The returned :class:`ScanResult` and the
    charges applied to ``io`` are identical for any ``parallelism`` value.
    """
    registry = registry if registry is not None else MetricsRegistry(enabled=False)
    if prune:
        survivors, pruned = prune_partitions(table, query)
    else:
        survivors, pruned = list(table.partitions()), []
    if registry.enabled:
        registry.counter("engine_partitions_scanned_total").inc(len(survivors))
        registry.counter("engine_partitions_pruned_total").inc(len(pruned))

    def scan_one(partition: Partition, local_io: IOCounter) -> ScanResult:
        reader = (partition_readers or {}).get(partition.index, default_reader)
        start = time.perf_counter()
        if reader is ReaderKind.MULTI_STAGE:
            order = (partition_column_orders or {}).get(
                partition.index, default_column_order
            )
            result = multi_stage_scan(
                table,
                query,
                payload_columns,
                local_io,
                column_order=order,
                partition=partition,
            )
        else:
            result = single_stage_scan(
                table, query, payload_columns, local_io, partition=partition
            )
        if registry.enabled:
            registry.histogram(
                "engine_partition_scan_seconds", table=table.name
            ).observe(time.perf_counter() - start)
        return result

    results: list[ScanResult]
    if parallelism <= 1 or len(survivors) <= 1:
        results = [scan_one(partition, io) for partition in survivors]
    else:
        # Each worker charges a private counter; merging in partition order
        # keeps totals deterministic and dictionary charges de-duplicated.
        local_counters = [IOCounter() for _ in survivors]
        workers = min(parallelism, len(survivors))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-scan"
        ) as pool:
            futures = [
                pool.submit(scan_one, partition, counter)
                for partition, counter in zip(survivors, local_counters)
            ]
            results = [future.result() for future in futures]
        for counter in local_counters:
            io.merge(counter)
    return _merge_scan_results(
        table, default_reader, results, pruned, table.num_partitions
    )
