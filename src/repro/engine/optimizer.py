"""The optimizer: where cardinality estimates become plan decisions.

Three decisions, each one of the paper's enhanced strategies:

* **column order** for the multi-stage reader -- greedy conditional-
  selectivity ordering; a correlation-aware estimator (the BN) orders
  correlated columns together, reproducing Example 1's I/O win.  The
  enumeration early-stops once the prefix selectivity exceeds a threshold
  (the paper's constrained enumeration);
* **reader selection** -- multi-stage when the table's overall estimated
  selectivity is below the threshold (highly selective predicates),
  single-stage otherwise;
* **join order** -- greedy smallest-intermediate-first ordering driven by
  join-size estimates (FactorJoin in the learned configuration).

The optimizer also totals the estimation overhead it incurred, which the
cost model folds into the query's latency -- the term that penalizes the
sample-based method end-to-end.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.config import EngineConfig
from repro.engine.partitioned import prune_partitions
from repro.engine.readers import ReaderKind
from repro.errors import DetailError, EstimationError
from repro.estimators.base import CountEstimator, EstimationStrategy, NdvEstimator
from repro.estimators.strategy import as_strategy
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import CardQuery, JoinCondition

#: ``shard_router(table, shard_index, single_table_subquery) -> selectivity``
#: or None when no specialized model covers that shard.
ShardRouter = Callable[[str, int, CardQuery], "float | None"]


@dataclass
class PhysicalPlan:
    """The optimizer's output for one query."""

    query: CardQuery
    readers: dict[str, ReaderKind] = field(default_factory=dict)
    column_orders: dict[str, list[str]] = field(default_factory=dict)
    join_order: list[JoinCondition] = field(default_factory=list)
    estimated_group_ndv: float | None = None
    estimation_cost: float = 0.0
    #: per-table estimated selectivities (for introspection/tests)
    table_selectivities: dict[str, float] = field(default_factory=dict)
    #: wall-clock seconds spent per plan decision (``selectivity:t``,
    #: ``column_order:t``, ``join_order``, ``group_ndv``)
    decision_timings: dict[str, float] = field(default_factory=dict)
    #: per-decision estimate provenance counts: how each consulted estimate
    #: was produced (cache / model / fallback-* when planning through the
    #: serving tier, ``direct`` for bare estimators, ``shard_model`` when a
    #: shard-specialized model answered for a pinned partition)
    decision_provenance: dict[str, dict[str, int]] = field(default_factory=dict)
    #: total partitions per planned table (only multi-partition tables)
    partition_counts: dict[str, int] = field(default_factory=dict)
    #: partitions refuted by zone maps at plan time, per table
    pruned_partitions: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: per-partition reader decisions, keyed table -> partition index
    partition_readers: dict[str, dict[int, ReaderKind]] = field(default_factory=dict)
    #: per-partition column orders for multi-stage partitions
    partition_column_orders: dict[str, dict[int, list[str]]] = field(
        default_factory=dict
    )
    #: per-partition estimated selectivities (shard model or global fallback)
    partition_selectivities: dict[str, dict[int, float]] = field(
        default_factory=dict
    )
    #: estimated surviving rows per table (selectivity x row count) -- the
    #: executor pairs these with observed scan cardinalities for the
    #: runtime feedback log
    estimated_table_rows: dict[str, float] = field(default_factory=dict)
    #: estimated intermediate size after each step of ``join_order``
    #: (parallel lists); ``inf`` marks a step the estimator failed on
    join_step_estimates: list[float] = field(default_factory=list)
    #: identity of the estimation strategy that planned this query (the
    #: router's routed chain when planning through a StrategyRouter);
    #: threaded into feedback records for per-strategy Q-Error series
    strategy: str = ""


class Optimizer:
    """Plans queries with a pluggable estimator pair."""

    def __init__(
        self,
        count_estimator: CountEstimator | None,
        ndv_estimator: NdvEstimator | None,
        config: EngineConfig | None = None,
        registry: MetricsRegistry | None = None,
        catalog=None,
        shard_router: ShardRouter | None = None,
        strategy: EstimationStrategy | None = None,
    ):
        """``catalog`` enables partition-aware planning (falls back to the
        strategy's own catalog when omitted); ``shard_router`` routes
        selectivity calls to shard-specialized models when pruning pins a
        partition (defaults to the strategy's ``shard_selectivity`` when it
        advertises ``supports_shard_routing``, e.g.
        :meth:`repro.core.ByteCard.shard_selectivity`).

        All estimator access goes through the
        :class:`~repro.estimators.base.EstimationStrategy` protocol: pass
        ``strategy`` directly (a chain, a router, ...), or pass a bare
        ``count_estimator`` and it is adapted via
        :func:`~repro.estimators.strategy.as_strategy`.
        """
        if strategy is None:
            if count_estimator is None:
                raise ValueError("provide count_estimator or strategy")
            strategy = as_strategy(count_estimator)
        self.strategy = strategy
        self.count_estimator = (
            count_estimator if count_estimator is not None else strategy
        )
        self.ndv_estimator = ndv_estimator
        self.config = config or EngineConfig()
        self.registry = registry if registry is not None else MetricsRegistry(enabled=False)
        if self.registry.enabled:
            self.registry.preregister(
                "optimizer_detail_errors_total", "kind", ("selectivity", "count")
            )
        self.catalog = catalog if catalog is not None else strategy.catalog
        if shard_router is not None:
            self.shard_router = shard_router
        elif strategy.supports_shard_routing:
            self.shard_router = strategy.shard_selectivity
        else:
            self.shard_router = None

    # ------------------------------------------------------------------
    def plan(self, query: CardQuery) -> PhysicalPlan:
        plan = PhysicalPlan(query=query, strategy=self.strategy.cache_scope(query))
        for table in query.tables:
            with self._decision(plan, f"selectivity:{table}", "selectivity"):
                selectivity = self._table_selectivity(query, table, plan)
            plan.table_selectivities[table] = selectivity
            plan.readers[table] = self._choose_reader(selectivity)
            if plan.readers[table] is ReaderKind.MULTI_STAGE:
                with self._decision(plan, f"column_order:{table}", "column_order"):
                    plan.column_orders[table] = self._choose_column_order(
                        query, table, plan
                    )
            self._plan_partitions(query, table, plan)
            rows = self._table_rows(table)
            if rows:
                # After partition planning: a pinned partition may have
                # replaced the table-level selectivity with its effective
                # (shard-model) value.
                plan.estimated_table_rows[table] = (
                    plan.table_selectivities[table] * rows
                )
        if query.joins:
            with self._decision(plan, "join_order", "join_order"):
                plan.join_order = self._choose_join_order(query, plan)
        if query.group_by and self.ndv_estimator is not None:
            with self._decision(plan, "group_ndv", "group_ndv"):
                plan.estimated_group_ndv = self._estimate_group_ndv(query, plan)
        return plan

    # ------------------------------------------------------------------
    @contextmanager
    def _decision(self, plan: PhysicalPlan, name: str, kind: str):
        """Time one plan decision into the plan and the registry."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            plan.decision_timings[name] = (
                plan.decision_timings.get(name, 0.0) + elapsed
            )
            self.registry.histogram(
                "optimizer_decision_seconds", decision=kind
            ).observe(elapsed)

    def _note_provenance(
        self, plan: PhysicalPlan, decision: str, source: str, count: int = 1
    ) -> None:
        if count <= 0:
            return
        bucket = plan.decision_provenance.setdefault(decision, {})
        bucket[source] = bucket.get(source, 0) + count

    def _note_pass_counts(self, plan: PhysicalPlan, decision: str) -> None:
        """Record the estimator's actual BN pass accounting, when exposed.

        Shared-belief estimators (FactorJoin/ByteCard) publish a per-thread
        ``last_pass_stats`` after each join estimate; folding it into the
        decision provenance makes ``explain_result`` show how many inference
        passes each decision really ran vs. what the naive path would have.
        """
        stats = self.strategy.last_pass_stats
        if stats is None:
            return
        self._note_provenance(plan, decision, "bn_pass", stats.executed)
        self._note_provenance(plan, decision, "bn_pass_saved", stats.saved)

    def _note_detail_error(
        self, plan: PhysicalPlan, decision: str, kind: str
    ) -> None:
        """A provenance-carrying detail path raised: distinguishable from a
        strategy that genuinely answers in-line (``direct``)."""
        self._note_provenance(plan, decision, "detail_error")
        self.registry.counter("optimizer_detail_errors_total", kind=kind).inc()

    def _selectivity_with_provenance(
        self, plan: PhysicalPlan, decision: str, subquery: CardQuery
    ) -> float:
        try:
            detail = self.strategy.selectivity_detail(subquery)
        except DetailError:
            self._note_detail_error(plan, decision, "selectivity")
            raise
        self._note_provenance(plan, decision, detail.source)
        if detail.source == "direct":
            self._note_pass_counts(plan, decision)
        return float(detail.value)

    def _estimate_count_with_provenance(
        self, plan: PhysicalPlan, decision: str, subquery: CardQuery
    ) -> float:
        try:
            detail = self.strategy.estimate_count_detail(subquery)
        except DetailError:
            self._note_detail_error(plan, decision, "count")
            raise
        self._note_provenance(plan, decision, detail.source)
        if detail.source == "direct":
            self._note_pass_counts(plan, decision)
        return float(detail.value)

    def _charge(self, plan: PhysicalPlan, subquery: CardQuery) -> None:
        plan.estimation_cost += self.strategy.estimation_overhead(subquery)

    def _table_selectivity(
        self, query: CardQuery, table: str, plan: PhysicalPlan
    ) -> float:
        subquery = query.single_table_subquery(table)
        self._charge(plan, subquery)
        decision = f"selectivity:{table}"
        try:
            return self._selectivity_with_provenance(plan, decision, subquery)
        except (EstimationError, NotImplementedError):
            # Estimators without a selectivity interface (e.g. MSCN) fall
            # back to count / table-size when possible, else neutral.
            try:
                estimate = self._estimate_count_with_provenance(
                    plan, decision, subquery
                )
            except EstimationError:
                return 1.0
            rows = self._table_rows(table)
            return min(1.0, estimate / rows) if rows else 1.0

    def _table_rows(self, table: str) -> int:
        catalog = self.catalog
        if catalog is None:
            return 0
        return len(catalog.table(table))

    # ------------------------------------------------------------------
    # Partition-aware planning
    # ------------------------------------------------------------------
    def _catalog_table(self, table: str):
        if self.catalog is None or not self.catalog.has_table(table):
            return None
        return self.catalog.table(table)

    def _plan_partitions(
        self, query: CardQuery, table: str, plan: PhysicalPlan
    ) -> None:
        """Prune partitions at plan time and decide reader/column-order per
        surviving partition, routing selectivity to shard-specialized models
        when the predicates pin a single partition."""
        tbl = self._catalog_table(table)
        if tbl is None or tbl.num_partitions <= 1 or not self.config.partition_pruning:
            return
        with self._decision(plan, f"partitions:{table}", "partition_plan"):
            survivors, pruned = prune_partitions(tbl, query)
            plan.partition_counts[table] = tbl.num_partitions
            plan.pruned_partitions[table] = tuple(pruned)
            subquery = query.single_table_subquery(table)
            pinned = len(survivors) == 1
            readers: dict[int, ReaderKind] = {}
            orders: dict[int, list[str]] = {}
            selectivities: dict[int, float] = {}
            for partition in survivors:
                shard_selectivity = self._shard_selectivity(
                    plan, table, tbl, partition.index, subquery
                )
                if shard_selectivity is None:
                    # Fall back to the global model's table-level estimate.
                    selectivity = plan.table_selectivities.get(table, 1.0)
                else:
                    selectivity = shard_selectivity
                selectivities[partition.index] = selectivity
                kind = self._choose_reader(selectivity)
                readers[partition.index] = kind
                if kind is ReaderKind.MULTI_STAGE:
                    orders[partition.index] = self._partition_column_order(
                        query, table, plan, partition.index, shard_selectivity
                    )
                if pinned and shard_selectivity is not None and len(tbl):
                    # The predicates pin this partition, so the shard model's
                    # partition-local estimate, scaled by the partition's row
                    # share, *is* the table's effective selectivity.
                    effective = shard_selectivity * partition.num_rows / len(tbl)
                    plan.table_selectivities[table] = effective
                    plan.readers[table] = self._choose_reader(effective)
            plan.partition_readers[table] = readers
            plan.partition_column_orders[table] = orders
            plan.partition_selectivities[table] = selectivities

    def _shard_selectivity(
        self, plan: PhysicalPlan, table: str, tbl, shard: int, subquery: CardQuery
    ) -> "float | None":
        """Selectivity from the shard-specialized model, if one applies.

        Requires the table to be partitioned by key (partition index ==
        shard index of ModelForge's hash-mod shard function) and the router
        to actually have a model for that shard.
        """
        if self.shard_router is None or tbl.partition_key is None:
            return None
        self._charge(plan, subquery)
        try:
            value = self.shard_router(table, shard, subquery)
        except EstimationError:
            return None
        if value is None:
            return None
        self._note_provenance(plan, f"selectivity:{table}", "shard_model")
        return min(1.0, max(0.0, float(value)))

    def _partition_column_order(
        self,
        query: CardQuery,
        table: str,
        plan: PhysicalPlan,
        shard: int,
        shard_selectivity: "float | None",
    ) -> list[str]:
        """Column order for one multi-stage partition.

        With a routable shard model, columns are ordered by ascending
        shard-local single-column selectivity (the specialized model may
        rank them differently than the global one); otherwise the
        table-level greedy order is reused.
        """
        tbl = self._catalog_table(table)
        if (
            shard_selectivity is None
            or self.shard_router is None
            or tbl is None
            or tbl.partition_key is None
        ):
            order = plan.column_orders.get(table)
            if order is None:
                order = self._choose_column_order(query, table, plan)
                plan.column_orders[table] = order
            return list(order)
        predicates = query.predicates_on(table)
        columns = list(dict.fromkeys(p.column for p in predicates))
        ranked: list[tuple[float, str]] = []
        base = query.single_table_subquery(table)
        for column in columns:
            restricted = base.with_predicates(
                [p for p in predicates if p.column == column]
            )
            self._charge(plan, restricted)
            try:
                value = self.shard_router(table, shard, restricted)
            except EstimationError:
                value = None
            if value is None:
                value = 1.0
            else:
                self._note_provenance(
                    plan, f"column_order:{table}", "shard_model"
                )
            ranked.append((float(value), column))
        ranked.sort(key=lambda item: (item[0], columns.index(item[1])))
        ordered = [column for _value, column in ranked]
        # OR-group columns are evaluated last, as in the table-level order.
        for group in query.or_groups:
            for pred in group:
                if pred.table == table and pred.column not in ordered:
                    ordered.append(pred.column)
        return ordered

    def _choose_reader(self, selectivity: float) -> ReaderKind:
        if selectivity < self.config.reader_selectivity_threshold:
            return ReaderKind.MULTI_STAGE
        return ReaderKind.SINGLE_STAGE

    def _choose_column_order(
        self, query: CardQuery, table: str, plan: PhysicalPlan
    ) -> list[str]:
        """Greedy conditional-selectivity ordering of filter columns.

        At each step, append the column whose addition to the already-chosen
        prefix yields the lowest estimated *combined* selectivity -- this is
        what lets a correlation-aware model read ``col2`` and ``col3``
        before ``col1`` in the paper's Example 1.
        """
        predicates = query.predicates_on(table)
        columns = list(dict.fromkeys(p.column for p in predicates))
        # OR-group columns are evaluated last (after the AND stages).
        for group in query.or_groups:
            for pred in group:
                if pred.table == table and pred.column not in columns:
                    columns.append(pred.column)
        and_columns = list(dict.fromkeys(p.column for p in predicates))
        ordered: list[str] = []
        remaining = list(and_columns)
        prefix_selectivity = 1.0
        while remaining:
            if prefix_selectivity > self.config.column_order_early_stop and ordered:
                # Constrained enumeration: prefix is already non-selective
                # enough that further ordering effort cannot pay off.
                ordered.extend(remaining)
                break
            best_column = None
            best_selectivity = float("inf")
            for column in remaining:
                chosen = [
                    p
                    for p in predicates
                    if p.column in ordered or p.column == column
                ]
                subquery = query.single_table_subquery(table).with_predicates(chosen)
                self._charge(plan, subquery)
                try:
                    selectivity = self._selectivity_with_provenance(
                        plan, f"column_order:{table}", subquery
                    )
                except (EstimationError, NotImplementedError):
                    selectivity = 1.0
                if selectivity < best_selectivity:
                    best_selectivity = selectivity
                    best_column = column
            assert best_column is not None
            ordered.append(best_column)
            remaining.remove(best_column)
            prefix_selectivity = best_selectivity
        # Append OR-group-only columns at the end.
        ordered.extend(c for c in columns if c not in ordered)
        return ordered

    def _choose_join_order(
        self, query: CardQuery, plan: PhysicalPlan
    ) -> list[JoinCondition]:
        if self.config.join_order_strategy == "dp":
            return self._dp_join_order(query, plan)
        return self._greedy_join_order(query, plan)

    def _greedy_join_order(
        self, query: CardQuery, plan: PhysicalPlan
    ) -> list[JoinCondition]:
        """Greedy smallest-intermediate-first join ordering."""
        start = min(
            query.tables,
            key=lambda t: plan.table_selectivities.get(t, 1.0)
            * max(1, self._table_rows(t)),
        )
        joined = {start}
        order: list[JoinCondition] = []
        used_joins: list[JoinCondition] = []
        remaining = list(query.joins)
        while remaining:
            candidates = [
                j
                for j in remaining
                if (j.left_table in joined) != (j.right_table in joined)
            ]
            if not candidates:
                # Shouldn't happen for connected tree queries, but stay safe.
                candidates = remaining[:1]
            best_join = None
            best_size = float("inf")
            for join in candidates:
                new_tables = joined | set(join.tables())
                subquery = self._connected_subquery(query, new_tables, used_joins + [join])
                self._charge(plan, subquery)
                try:
                    size = self._estimate_count_with_provenance(
                        plan, "join_order", subquery
                    )
                except EstimationError:
                    size = float("inf")
                if size < best_size:
                    best_size = size
                    best_join = join
            assert best_join is not None
            order.append(best_join)
            plan.join_step_estimates.append(best_size)
            used_joins.append(best_join)
            joined |= set(best_join.tables())
            remaining.remove(best_join)
        return order

    def _dp_join_order(
        self, query: CardQuery, plan: PhysicalPlan
    ) -> list[JoinCondition]:
        """Exact left-deep join ordering by dynamic programming.

        States are connected table subsets; the cost of a state is the sum
        of estimated intermediate sizes along its best build order (the
        quantity the executor's materialization cost charges).  Exponential
        in the number of tables, which is fine for the paper's <= 8-way
        joins.
        """
        tables = list(query.tables)
        index_of = {t: i for i, t in enumerate(tables)}
        full_mask = (1 << len(tables)) - 1

        # Adjacency: join conditions between table pairs.
        edges: dict[frozenset[str], JoinCondition] = {}
        for join in query.joins:
            edges[frozenset(join.tables())] = join

        size_cache: dict[int, float] = {}

        def subset_size(mask: int) -> float:
            if mask in size_cache:
                return size_cache[mask]
            subset = {tables[i] for i in range(len(tables)) if mask & (1 << i)}
            joins = [
                join
                for pair, join in edges.items()
                if pair <= subset
            ]
            subquery = self._connected_subquery(query, subset, joins)
            self._charge(plan, subquery)
            try:
                size = self._estimate_count_with_provenance(
                    plan, "join_order", subquery
                )
            except EstimationError:
                size = float("inf")
            size_cache[mask] = size
            return size

        # best[mask] = (total intermediate cost, join order reaching mask)
        best: dict[int, tuple[float, list[JoinCondition]]] = {}
        for i, table in enumerate(tables):
            best[1 << i] = (0.0, [])
        frontier = sorted(best)
        while frontier:
            next_states: set[int] = set()
            for mask in frontier:
                cost, order = best[mask]
                in_set = {tables[i] for i in range(len(tables)) if mask & (1 << i)}
                for pair, join in edges.items():
                    left, right = tuple(pair)
                    new = None
                    if left in in_set and right not in in_set:
                        new = right
                    elif right in in_set and left not in in_set:
                        new = left
                    if new is None:
                        continue
                    new_mask = mask | (1 << index_of[new])
                    new_cost = cost + subset_size(new_mask)
                    entry = best.get(new_mask)
                    if entry is None or new_cost < entry[0]:
                        best[new_mask] = (new_cost, order + [join])
                        next_states.add(new_mask)
            frontier = sorted(next_states)
        final = best.get(full_mask)
        if final is None:
            # Disconnected under the available edges; fall back to greedy.
            return self._greedy_join_order(query, plan)
        order = final[1]
        # Reconstruct the per-step size estimates along the chosen order
        # from the DP's memo (every prefix state was costed there).
        running = 0
        for join in order:
            for table in join.tables():
                running |= 1 << index_of[table]
            plan.join_step_estimates.append(
                size_cache.get(running, float("inf"))
            )
        return order

    @staticmethod
    def _connected_subquery(
        query: CardQuery, tables: set[str], joins: list[JoinCondition]
    ) -> CardQuery:
        ordered_tables = tuple(t for t in query.tables if t in tables)
        predicates = tuple(p for p in query.predicates if p.table in tables)
        or_groups = tuple(
            group
            for group in query.or_groups
            if all(p.table in tables for p in group)
        )
        return CardQuery(
            tables=ordered_tables,
            joins=tuple(joins),
            predicates=predicates,
            or_groups=or_groups,
            name=f"{query.name}:sub",
        )

    def _estimate_group_ndv(
        self, query: CardQuery, plan: PhysicalPlan
    ) -> float | None:
        assert self.ndv_estimator is not None
        plan.estimation_cost += self.ndv_estimator.estimation_overhead(query)
        try:
            return float(self.ndv_estimator.group_ndv(query))
        except EstimationError:
            # Includes estimators without a group-key model: the base
            # contract signals "unsupported" through this channel.
            return None
