"""The ByteHouse-lite execution engine.

A single-process columnar engine implementing exactly the decision points
the paper's optimizations touch:

* **readers** -- single-stage vs multi-stage early materialization, with
  block-granular I/O accounting (Sections 3.1.2 / 5.1);
* **join execution** -- hash joins in an optimizer-chosen order, with
  intermediate-size-driven CPU cost (Section 5.1.3);
* **aggregation** -- hash aggregation with capacity-doubling resize
  accounting and NDV-estimate-driven pre-sizing (Section 5.2);
* **cost model** -- deterministic latency in abstract cost units, including
  the cardinality estimator's own inference overhead (the term that makes
  the sample-based method lose Figure 5 despite decent Q-Errors).
"""

from repro.engine.config import EngineConfig, CLUSTER_SETUP
from repro.engine.hash_table import SimulatedHashTable
from repro.engine.readers import ReaderKind, ScanResult, single_stage_scan, multi_stage_scan
from repro.engine.partitioned import partition_refuted, partitioned_scan, prune_partitions
from repro.engine.join import hash_join_tree
from repro.engine.aggregation import AggregationResult, hash_aggregate
from repro.engine.optimizer import Optimizer, PhysicalPlan
from repro.engine.executor import QueryResult, Executor
from repro.engine.session import EngineSession, EstimatorSuite
from repro.engine.explain import explain_plan, explain_result

__all__ = [
    "EngineConfig",
    "CLUSTER_SETUP",
    "SimulatedHashTable",
    "ReaderKind",
    "ScanResult",
    "single_stage_scan",
    "multi_stage_scan",
    "partition_refuted",
    "partitioned_scan",
    "prune_partitions",
    "hash_join_tree",
    "AggregationResult",
    "hash_aggregate",
    "Optimizer",
    "PhysicalPlan",
    "QueryResult",
    "Executor",
    "EngineSession",
    "EstimatorSuite",
    "explain_plan",
    "explain_result",
]
