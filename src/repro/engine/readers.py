"""Single-stage and multi-stage early-materialization readers.

Both readers produce the surviving row set of one table under a query's
predicates; they differ in I/O:

* the **single-stage** reader scans every block of every needed column in
  one pass and applies all predicates at once -- efficient for
  non-selective predicates (block reads amortize), wasteful for selective
  ones (it constructs tuples that are immediately discarded);
* the **multi-stage** reader reads filter columns one at a time in the
  optimizer-chosen order, and for each later stage reads only the blocks
  that still contain surviving rows -- the I/O saving the paper's Figure
  6(a) measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.sql.query import CardQuery, TablePredicate
from repro.storage.blocks import BlockReader, block_count
from repro.storage.io_stats import IOCounter
from repro.storage.partitions import Partition
from repro.storage.table import Table
from repro.workloads.predicates import predicate_mask


class ReaderKind(enum.Enum):
    SINGLE_STAGE = "single-stage"
    MULTI_STAGE = "multi-stage"


@dataclass
class ScanResult:
    """Outcome of scanning one table (or one partition of it).

    ``row_indices`` are always *global* table row indices, so per-partition
    results concatenate into exactly what a whole-table scan would return.
    """

    table: str
    reader: ReaderKind
    row_indices: np.ndarray
    blocks_read: int
    rows_scanned: int
    #: blocks read non-contiguously in later stages (charged a random-read
    #: penalty by the cost model; zero for single-stage scans)
    random_blocks: int = 0
    #: rows surviving after each multi-stage filter stage (each carries a
    #: tuple-append cost: the incremental tuple construction the paper
    #: describes for the multi-stage reader)
    stage_survivors: list[int] = field(default_factory=list)
    #: which partition this scan covered (None for whole-table scans and
    #: for merged results from the partitioned driver)
    partition_index: int | None = None
    #: partition accounting, filled by the partitioned scan driver
    partitions_scanned: int = 1
    partitions_pruned: int = 0
    pruned_partition_indices: tuple[int, ...] = ()
    #: per-partition scan details when the partitioned driver merged
    #: several partition scans (empty for plain whole-table scans)
    partition_scans: list["ScanResult"] = field(default_factory=list)


def _filter_columns_of(table: Table, query: CardQuery) -> list[str]:
    """Columns of ``table`` referenced by the query's predicates."""
    columns: list[str] = []
    for pred in query.all_predicates():
        if pred.table == table.name and pred.column not in columns:
            columns.append(pred.column)
    return columns


def _mask_for_column(
    table: Table, query: CardQuery, column: str, values: np.ndarray
) -> np.ndarray:
    """Evaluate every predicate of ``query`` touching ``column`` on a block."""
    mask = np.ones(values.shape[0], dtype=bool)
    for pred in query.predicates:
        if pred.table == table.name and pred.column == column:
            mask &= predicate_mask(values, pred)
    return mask


def _or_group_mask(
    table: Table, query: CardQuery, row_indices: np.ndarray
) -> np.ndarray:
    """Evaluate OR-groups on already-materialized rows (single-table groups)."""
    mask = np.ones(row_indices.size, dtype=bool)
    for group in query.or_groups:
        members = [p for p in group if p.table == table.name]
        if not members:
            continue
        group_mask = np.zeros(row_indices.size, dtype=bool)
        for pred in members:
            values = table.column(pred.column).values[row_indices]
            group_mask |= predicate_mask(values, pred)
        mask &= group_mask
    return mask


def single_stage_scan(
    table: Table,
    query: CardQuery,
    payload_columns: list[str],
    io: IOCounter,
    partition: Partition | None = None,
) -> ScanResult:
    """One-pass scan: read every needed column fully, filter once.

    With ``partition`` the scan covers that partition's row range only
    (partition-local blocks); the default covers the whole table.
    """
    reader = BlockReader(table, io, partition=partition)
    filter_columns = _filter_columns_of(table, query)
    needed = list(dict.fromkeys(filter_columns + payload_columns))
    total_blocks = reader.total_blocks()
    before = io.blocks_read
    mask = np.ones(reader.num_rows, dtype=bool)
    for column in needed:
        pieces = [
            reader.read_column_block(column, b) for b in range(total_blocks)
        ]
        values = np.concatenate(pieces) if pieces else np.empty(0)
        if column in filter_columns:
            mask &= _mask_for_column(table, query, column, values)
    row_indices = np.flatnonzero(mask) + reader.row_start
    if query.or_groups:
        row_indices = row_indices[_or_group_mask(table, query, row_indices)]
    return ScanResult(
        table=table.name,
        reader=ReaderKind.SINGLE_STAGE,
        row_indices=row_indices,
        blocks_read=io.blocks_read - before,
        rows_scanned=reader.num_rows * len(needed),
        partition_index=partition.index if partition is not None else None,
    )


def multi_stage_scan(
    table: Table,
    query: CardQuery,
    payload_columns: list[str],
    io: IOCounter,
    column_order: list[str] | None = None,
    partition: Partition | None = None,
) -> ScanResult:
    """Staged scan: filter column by column, skipping exhausted blocks.

    With ``partition`` the scan covers that partition's row range only
    (partition-local blocks); the default covers the whole table.
    """
    reader = BlockReader(table, io, partition=partition)
    filter_columns = column_order or _filter_columns_of(table, query)
    total_blocks = reader.total_blocks()
    before = io.blocks_read
    rows_scanned = 0
    random_blocks = 0
    stage_survivors: list[int] = []

    surviving_blocks = list(range(total_blocks))
    block_masks: dict[int, np.ndarray] = {}
    if not filter_columns:
        # No predicates: every row of every block survives.
        for block in surviving_blocks:
            start, stop = reader.block_bounds(block)
            block_masks[block] = np.ones(stop - start, dtype=bool)
    for stage, column in enumerate(filter_columns):
        next_surviving: list[int] = []
        survivors = 0
        for block in surviving_blocks:
            values = reader.read_column_block(column, block)
            rows_scanned += values.shape[0]
            if stage > 0:
                random_blocks += 1
            mask = _mask_for_column(table, query, column, values)
            if stage > 0:
                mask &= block_masks[block]
            if mask.any():
                block_masks[block] = mask
                next_surviving.append(block)
                survivors += int(mask.sum())
            else:
                block_masks.pop(block, None)
        stage_survivors.append(survivors)
        surviving_blocks = next_surviving
        if not surviving_blocks:
            break

    # Materialize payload columns only for surviving blocks.
    remaining_payload = [
        c for c in payload_columns if c not in filter_columns
    ]
    for column in remaining_payload:
        for block in surviving_blocks:
            values = reader.read_column_block(column, block)
            rows_scanned += values.shape[0]
            random_blocks += 1

    indices_pieces = []
    for block in surviving_blocks:
        start, _stop = reader.block_bounds(block)
        local = np.flatnonzero(block_masks[block]) + start
        indices_pieces.append(local)
    row_indices = (
        np.concatenate(indices_pieces) if indices_pieces else np.empty(0, np.int64)
    )
    if query.or_groups and row_indices.size:
        # OR-group columns are read for the surviving blocks only -- and
        # must be charged like any other late-stage (random) block read.
        or_columns = sorted(
            {
                pred.column
                for group in query.or_groups
                for pred in group
                if pred.table == table.name and pred.column not in filter_columns
            }
        )
        touched_blocks = np.unique(
            (row_indices - reader.row_start) // table.block_size
        )
        for column in or_columns:
            for block in touched_blocks:
                values = reader.read_column_block(column, int(block))
                rows_scanned += values.shape[0]
                random_blocks += 1
        row_indices = row_indices[_or_group_mask(table, query, row_indices)]
    return ScanResult(
        table=table.name,
        reader=ReaderKind.MULTI_STAGE,
        row_indices=row_indices.astype(np.int64),
        blocks_read=io.blocks_read - before,
        rows_scanned=rows_scanned,
        random_blocks=random_blocks,
        stage_survivors=stage_survivors,
        partition_index=partition.index if partition is not None else None,
    )
