"""Engine configuration and the simulated cluster setup (Table 4)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field


def _default_scan_parallelism() -> int:
    """Default worker count for partition fan-out.

    ``REPRO_SCAN_PARALLELISM`` overrides the default of 1 (sequential, the
    pre-partitioning behaviour); CI's engine-parallel-smoke job uses it to
    run the whole engine suite at parallelism 4.
    """
    raw = os.environ.get("REPRO_SCAN_PARALLELISM", "")
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the execution engine and its cost model.

    Cost weights are abstract units; only their ratios matter for the
    normalized latency plots.  A block read from the (simulated) distributed
    file system is far more expensive than touching a tuple in memory,
    mirroring the storage/compute separation of the real system.
    """

    #: fraction-of-rows threshold under which the multi-stage reader wins
    #: (the paper's example threshold of 0.15, Section 5.1.2)
    reader_selectivity_threshold: float = 0.15
    #: column-order enumeration early-stops once the prefix selectivity
    #: exceeds this (Section 5.1.1's constrained enumeration)
    column_order_early_stop: float = 0.5
    #: hash tables start at this capacity when no estimate is available
    default_hash_capacity: int = 256
    hash_load_factor: float = 0.5
    #: ceiling on NDV-driven pre-sizing: a wildly overestimated group NDV
    #: must not allocate an arbitrarily large table up front (the waste is
    #: recorded in ``AggregationResult.presize_waste``)
    max_presize_capacity: int = 1 << 21
    #: safety cap on materialized intermediate join tuples
    max_intermediate_rows: int = 30_000_000
    #: join-order enumeration: "greedy" (smallest-next, linear) or "dp"
    #: (exact left-deep dynamic programming over connected subsets --
    #: affordable for the <= 8-way joins of the paper's workloads)
    join_order_strategy: str = "greedy"
    #: worker threads for scanning surviving partitions concurrently;
    #: 1 (the default) scans sequentially and is bit-identical to the
    #: pre-partitioning engine.  Overridable via REPRO_SCAN_PARALLELISM.
    scan_parallelism: int = field(default_factory=_default_scan_parallelism)
    #: consult zone maps to skip partitions before any block I/O
    partition_pruning: bool = True
    #: capture (fingerprint, estimated, actual) pairs into the session's
    #: :class:`repro.feedback.FeedbackLog` as a by-product of every scan
    #: and join -- the runtime evidence behind feedback-driven monitoring
    #: and observed-error-mass retrain priorities (off by default: the
    #: capture must stay opt-in and under 2% executor overhead)
    enable_feedback: bool = False
    #: ring capacity of an auto-created feedback log
    feedback_capacity: int = 4096
    #: mid-plan adaptivity: when a join step's actual cardinality deviates
    #: from its estimate by more than this factor (Q-Error-style ratio),
    #: re-rank the remaining join order on observed scan cardinalities and
    #: count ``adaptive_replan_total``.  ``0`` disables replanning.
    adaptive_replan_factor: float = 0.0

    # cost-model weights (abstract units)
    io_block_cost: float = 1.0
    #: later-stage block reads are non-contiguous on the distributed FS and
    #: cost more than a sequential full-column sweep -- the reason the
    #: multi-stage reader loses on non-selective predicates
    random_read_multiplier: float = 1.6
    cpu_tuple_cost: float = 0.0005
    join_tuple_cost: float = 0.001
    materialize_tuple_cost: float = 0.004
    resize_move_cost: float = 0.004
    agg_tuple_cost: float = 0.001


#: The paper's Table 4, reproduced as the *simulated* environment
#: description.  The reproduction runs in-process, so these rows describe
#: the simulation target rather than physical hardware.
CLUSTER_SETUP: list[tuple[str, str]] = [
    ("CPU", "Intel(R) Xeon(R) Gold 6230 (simulated; CPU @ 2.10GHz, 75 cores)"),
    ("Memory", "300 G (simulated)"),
    ("Network", "10Gbps Ethernet (simulated)"),
    ("OS", "Debian 9 (Linux Kernel 5.4.56) (simulated)"),
    ("Cache", "55M shared L3 cache (simulated)"),
    ("Server", "1"),
    ("Compute-Worker", "8 (simulated as one in-process engine)"),
    ("Ingestor-Worker", "8 (simulated by the ModelForge ingestion hooks)"),
]
