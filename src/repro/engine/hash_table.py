"""Capacity-doubling hash-table simulation for aggregation.

The paper's aggregation bottleneck: each time the number of distinct keys
crosses ``capacity * load_factor`` the table doubles, re-allocating and
rehashing every resident entry.  The simulation replays the distinct-growth
curve of the key stream, so resize counts and rehash volumes match what a
real open-addressing table would do -- which is what Figure 6(b) measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


@dataclass
class SimulatedHashTable:
    """Tracks resizes of a hash aggregation over a stream of group keys."""

    initial_capacity: int = 256
    load_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.initial_capacity < 1:
            raise ValueError("initial capacity must be >= 1")
        if not 0.0 < self.load_factor <= 1.0:
            raise ValueError("load factor must be in (0, 1]")
        self.capacity = _next_power_of_two(self.initial_capacity)
        self.distinct = 0
        self.resize_count = 0
        self.moved_entries = 0

    # ------------------------------------------------------------------
    def _grow_to(self, target_distinct: int) -> None:
        """Advance the distinct count, replaying every threshold crossing.

        A resize fires when the distinct count first exceeds
        ``capacity * load_factor``; at that moment all resident entries
        (``threshold`` of them) are rehashed into the doubled table.
        """
        while self.distinct < target_distinct:
            threshold = int(self.capacity * self.load_factor)
            if target_distinct <= threshold:
                self.distinct = target_distinct
                break
            # Fill up to the threshold, then the next insert triggers the
            # resize, moving everything currently resident.
            self.distinct = threshold + 1
            self.moved_entries += threshold
            self.capacity <<= 1
            self.resize_count += 1

    def insert_stream(self, keys: np.ndarray) -> int:
        """Insert a stream of keys; returns the final distinct count.

        Resize behaviour depends only on how many *new* keys arrive, so the
        growth curve is folded into threshold crossings directly.
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return self.distinct
        new_distinct = int(np.unique(keys).size)
        self._grow_to(self.distinct + new_distinct)
        return self.distinct

    def insert_distinct_total(self, total_distinct: int) -> None:
        """Insert ``total_distinct`` brand-new keys."""
        if total_distinct < 0:
            raise ValueError("distinct count cannot be negative")
        self._grow_to(self.distinct + total_distinct)
