"""Capacity-doubling hash-table simulation for aggregation.

The paper's aggregation bottleneck: each time the number of distinct keys
crosses ``capacity * load_factor`` the table doubles, re-allocating and
rehashing every resident entry.  The simulation replays the distinct-growth
curve of the key stream, so resize counts and rehash volumes match what a
real open-addressing table would do -- which is what Figure 6(b) measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


@dataclass
class SimulatedHashTable:
    """Tracks resizes of a hash aggregation over a stream of group keys."""

    initial_capacity: int = 256
    load_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.initial_capacity < 1:
            raise ValueError("initial capacity must be >= 1")
        if not 0.0 < self.load_factor <= 1.0:
            raise ValueError("load factor must be in (0, 1]")
        self.capacity = _next_power_of_two(self.initial_capacity)
        self.distinct = 0
        self.resize_count = 0
        self.moved_entries = 0
        #: keys already resident from previous ``insert_stream`` calls --
        #: a re-inserted key must not count as a new distinct entry
        self._resident: set = set()

    # ------------------------------------------------------------------
    def _grow_to(self, target_distinct: int) -> None:
        """Advance the distinct count, replaying every threshold crossing.

        A resize fires when the distinct count first exceeds
        ``capacity * load_factor``; at that moment all resident entries
        (``threshold`` of them) are rehashed into the doubled table.
        """
        while self.distinct < target_distinct:
            threshold = int(self.capacity * self.load_factor)
            if target_distinct <= threshold:
                self.distinct = target_distinct
                break
            # Fill up to the threshold, then the next insert triggers the
            # resize, moving everything currently resident.
            self.distinct = threshold + 1
            self.moved_entries += threshold
            self.capacity <<= 1
            self.resize_count += 1

    def insert_stream(self, keys: np.ndarray) -> int:
        """Insert a stream of keys; returns the final distinct count.

        Resize behaviour depends only on how many *new* keys arrive, so the
        growth curve is folded into threshold crossings directly.  Keys are
        tracked across calls: a key already resident from an earlier block
        does not count again, so streaming overlapping blocks matches one
        concatenated insert (the Figure 6(b) accounting).
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return self.distinct
        batch = np.unique(keys)
        if self._resident:
            fresh = [k for k in batch.tolist() if k not in self._resident]
        else:
            fresh = batch.tolist()
        if not fresh:
            return self.distinct
        self._resident.update(fresh)
        self._grow_to(self.distinct + len(fresh))
        return self.distinct

    def insert_distinct_total(self, total_distinct: int) -> None:
        """Insert ``total_distinct`` brand-new (anonymous) keys.

        The keys are assumed disjoint from everything inserted so far; use
        :meth:`insert_stream` when re-inserted keys must be deduplicated.
        """
        if total_distinct < 0:
            raise ValueError("distinct count cannot be negative")
        self._grow_to(self.distinct + total_distinct)
