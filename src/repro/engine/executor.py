"""Physical-plan execution and the cost model.

Executes a :class:`PhysicalPlan`: scans each table with its chosen reader
(charging block I/O), runs the hash joins in the chosen order, and -- for
GROUP BY queries -- hash-aggregates with the plan's NDV-driven initial
capacity.  The result carries the full cost breakdown the benchmarks plot:
blocks read (Figure 6a), resize counts (Figure 6b), and total latency in
cost units (Figure 5).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine.aggregation import AggregationResult, hash_aggregate
from repro.obs.metrics import MetricsRegistry
from repro.engine.config import EngineConfig
from repro.engine.join import JoinExecution, hash_join_step, hash_join_tree
from repro.engine.optimizer import Optimizer, PhysicalPlan
from repro.engine.partitioned import partitioned_scan
from repro.engine.readers import ReaderKind, ScanResult
from repro.errors import ExecutionError
from repro.feedback import FeedbackLog
from repro.metrics.latency import LatencyRecord
from repro.serving.fingerprint import query_fingerprint
from repro.sql.query import AggKind, CardQuery, JoinCondition
from repro.storage.catalog import Catalog
from repro.storage.io_stats import IOCounter


@dataclass
class QueryResult:
    """Everything the benchmarks need from one executed query."""

    query: CardQuery
    result_rows: int
    groups: int | None
    #: the query's scalar answer when it has no GROUP BY (COUNT(*) rows,
    #: SUM/AVG/MIN/MAX of the target, or the exact COUNT DISTINCT)
    aggregate_value: float | None
    blocks_read: int
    rows_scanned: int
    resize_count: int
    moved_entries: int
    estimation_cost: float
    io_cost: float
    cpu_cost: float
    scans: dict[str, ScanResult]
    aggregation: AggregationResult | None
    #: wall-clock seconds per execution stage (scan / join / aggregate)
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: per-decision estimate provenance carried over from the plan (how the
    #: optimizer's estimates were produced, incl. actual vs. saved BN
    #: inference pass counts from shared-belief plans)
    estimate_provenance: dict[str, dict[str, int]] = field(default_factory=dict)
    #: mid-plan join-order re-rankings triggered by observed cardinalities
    adaptive_replans: int = 0

    @property
    def total_cost(self) -> float:
        return self.estimation_cost + self.io_cost + self.cpu_cost

    def latency_record(self) -> LatencyRecord:
        return LatencyRecord(
            query_id=self.query.name,
            estimation_cost=self.estimation_cost,
            io_cost=self.io_cost,
            cpu_cost=self.cpu_cost,
        )


class Executor:
    """Executes physical plans against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig | None = None,
        registry: MetricsRegistry | None = None,
        feedback: FeedbackLog | None = None,
    ):
        self.catalog = catalog
        self.config = config or EngineConfig()
        self.registry = registry if registry is not None else MetricsRegistry(enabled=False)
        #: runtime feedback ring; pairs the plan's (or the serving tier's)
        #: estimates with the actual cardinalities this executor observes.
        #: Only consulted when ``config.enable_feedback`` is set.
        self.feedback = feedback

    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan) -> QueryResult:
        query = plan.query
        io = IOCounter()
        stage_timings: dict[str, float] = {}
        scans: dict[str, ScanResult] = {}
        stage_start = time.perf_counter()
        for table_name in query.tables:
            table = self.catalog.table(table_name)
            payload = self._payload_columns(query, table_name)
            scans[table_name] = partitioned_scan(
                table,
                query,
                payload,
                io,
                default_reader=plan.readers.get(table_name, ReaderKind.SINGLE_STAGE),
                default_column_order=plan.column_orders.get(table_name),
                partition_readers=plan.partition_readers.get(table_name),
                partition_column_orders=plan.partition_column_orders.get(table_name),
                parallelism=self.config.scan_parallelism,
                prune=self.config.partition_pruning,
                registry=self.registry,
            )
        stage_timings["scan"] = time.perf_counter() - stage_start

        capture = self.feedback is not None and self.config.enable_feedback
        if capture:
            self._capture_scan_feedback(query, plan, scans)

        scanned_rows = {name: scan.row_indices for name, scan in scans.items()}
        stage_start = time.perf_counter()
        adaptive_replans = 0
        if capture or self.config.adaptive_replan_factor > 0:
            join_exec, adaptive_replans = self._execute_joins_stepwise(
                query, plan, scanned_rows, capture
            )
        else:
            # The historical single-call path: zero added work when the
            # feedback loop and adaptivity are both off.
            join_exec = hash_join_tree(
                self.catalog,
                query,
                scanned_rows,
                plan.join_order,
                max_intermediate_rows=self.config.max_intermediate_rows,
            )
        stage_timings["join"] = time.perf_counter() - stage_start

        aggregation: AggregationResult | None = None
        if query.group_by:
            stage_start = time.perf_counter()
            aggregation = hash_aggregate(
                self.catalog,
                query,
                join_exec.tuples,
                estimated_ndv=plan.estimated_group_ndv,
                default_capacity=self.config.default_hash_capacity,
                load_factor=self.config.hash_load_factor,
                max_presize_capacity=self.config.max_presize_capacity,
            )
            stage_timings["aggregate"] = time.perf_counter() - stage_start

        random_blocks = sum(s.random_blocks for s in scans.values())
        sequential_blocks = io.blocks_read - random_blocks
        io_cost = (
            sequential_blocks * self.config.io_block_cost
            + random_blocks
            * self.config.io_block_cost
            * self.config.random_read_multiplier
        )
        cpu_cost = self._cpu_cost(scans, join_exec, aggregation)
        aggregate_value = (
            self._scalar_aggregate(query, join_exec) if not query.group_by else None
        )
        self._record_metrics(io, scans, stage_timings, aggregation)
        return QueryResult(
            query=query,
            result_rows=join_exec.result_rows,
            groups=aggregation.groups if aggregation else None,
            aggregate_value=aggregate_value,
            blocks_read=io.blocks_read,
            rows_scanned=sum(s.rows_scanned for s in scans.values()),
            resize_count=aggregation.resize_count if aggregation else 0,
            moved_entries=aggregation.moved_entries if aggregation else 0,
            estimation_cost=plan.estimation_cost,
            io_cost=io_cost,
            cpu_cost=cpu_cost,
            scans=scans,
            aggregation=aggregation,
            stage_timings=stage_timings,
            estimate_provenance={
                decision: dict(sources)
                for decision, sources in plan.decision_provenance.items()
            },
            adaptive_replans=adaptive_replans,
        )

    # ------------------------------------------------------------------
    # Runtime feedback capture + adaptive join driver
    # ------------------------------------------------------------------
    def _capture_scan_feedback(
        self,
        query: CardQuery,
        plan: PhysicalPlan,
        scans: dict[str, ScanResult],
    ) -> None:
        """Pair each scan's actual cardinality with its estimate.

        A pending served estimate (noted by the serving tier under the same
        canonical fingerprint) wins over the plan-recorded one because it
        carries provenance -- ``cache`` hits in particular never reach the
        optimizer's provenance accounting.

        Canonical fingerprints exist only to pair those pending estimates,
        and computing one means building the single-table subquery and
        serializing it -- the bulk of the capture cost.  When the pending
        side table is empty (no serving tier attached, the common
        engine-only deployment) a cheap positional key is recorded instead;
        the monitor consumes evidence by table scope, never by fingerprint.
        """
        feedback = self.feedback
        assert feedback is not None
        pair = feedback.pending_count > 0
        for table, scan in scans.items():
            if pair:
                fingerprint = query_fingerprint(
                    query.single_table_subquery(table)
                )
                pending = feedback.take_estimate(fingerprint)
            else:
                fingerprint = f"scan:{query.name or 'q'}:{table}"
                pending = None
            source = "plan"
            strategy = plan.strategy
            estimated: float | None
            if pending is not None:
                estimated = pending.value
                if pending.unit == "fraction":
                    estimated *= len(self.catalog.table(table))
                source = pending.source
                strategy = pending.strategy
            else:
                estimated = plan.estimated_table_rows.get(table)
            if estimated is None:
                continue
            feedback.record(
                fingerprint,
                (table,),
                estimated,
                float(scan.row_indices.size),
                source=source,
                kind="scan",
                strategy=strategy,
            )

    def _execute_joins_stepwise(
        self,
        query: CardQuery,
        plan: PhysicalPlan,
        scanned_rows: dict[str, np.ndarray],
        capture: bool,
    ) -> tuple[JoinExecution, int]:
        """Drive the joins one step at a time.

        After every step the actual intermediate cardinality is known; it is
        (a) recorded as join feedback and (b) compared against the plan's
        per-step estimate -- when the deviation exceeds
        ``config.adaptive_replan_factor`` the remaining order is re-ranked
        on observed scan cardinalities (a valid linearization is preserved:
        every re-ranked step still connects to the joined prefix).
        """
        if not query.joins:
            table = query.tables[0]
            return JoinExecution(tuples={table: scanned_rows[table]}), 0
        order = list(plan.join_order)
        if len(order) != len(query.joins):
            raise ExecutionError(
                f"join order has {len(order)} steps for {len(query.joins)} joins"
            )
        estimates = plan.join_step_estimates
        execution = JoinExecution(
            tuples={order[0].left_table: scanned_rows[order[0].left_table]}
        )
        executed: list[JoinCondition] = []
        replans = 0
        factor = self.config.adaptive_replan_factor
        index = 0
        while index < len(order):
            join = order[index]
            out_rows = hash_join_step(
                self.catalog,
                execution,
                join,
                scanned_rows,
                max_intermediate_rows=self.config.max_intermediate_rows,
            )
            executed.append(join)
            # Plan-recorded estimates only line up with the original order;
            # after a replan the executed prefix diverges from what the
            # optimizer costed, so stop attributing its numbers.
            estimate: float | None = None
            if replans == 0 and index < len(estimates):
                estimate = estimates[index]
                if not math.isfinite(estimate):
                    estimate = None
            if capture:
                self._record_join_feedback(
                    query, plan, execution, executed, estimate
                )
            if (
                factor > 0
                and replans == 0
                and estimate is not None
                and estimate > 0
                and index + 1 < len(order)
            ):
                actual = max(float(out_rows), 1.0)
                expected = max(estimate, 1.0)
                deviation = max(actual / expected, expected / actual)
                if deviation > factor:
                    order = order[: index + 1] + self._rerank_remaining(
                        set(execution.tuples), order[index + 1 :], scanned_rows
                    )
                    replans += 1
                    self.registry.counter("adaptive_replan_total").inc()
            index += 1
        return execution, replans

    def _record_join_feedback(
        self,
        query: CardQuery,
        plan: PhysicalPlan,
        execution: JoinExecution,
        executed: list[JoinCondition],
        plan_estimate: float | None,
    ) -> None:
        feedback = self.feedback
        assert feedback is not None
        scope = tuple(sorted(execution.tuples))
        pending = None
        if feedback.pending_count > 0:
            # Canonical fingerprinting (subquery reconstruction + canonical
            # serialization) is only worth paying when a serving tier may
            # have noted an estimate to pair; see _capture_scan_feedback.
            subquery = Optimizer._connected_subquery(
                query, set(execution.tuples), executed
            )
            fingerprint = query_fingerprint(subquery)
            pending = feedback.take_estimate(fingerprint)
        else:
            fingerprint = f"join:{query.name or 'q'}:{'+'.join(scope)}"
        if pending is not None and pending.unit == "rows":
            estimated: float | None = pending.value
            source = pending.source
            strategy = pending.strategy
        else:
            estimated = plan_estimate
            source = "plan"
            strategy = plan.strategy
        if estimated is None:
            return
        feedback.record(
            fingerprint,
            scope,
            estimated,
            float(execution.result_rows),
            source=source,
            kind="join",
            strategy=strategy,
        )

    def _rerank_remaining(
        self,
        joined: set[str],
        remaining: list[JoinCondition],
        scanned_rows: dict[str, np.ndarray],
    ) -> list[JoinCondition]:
        """Greedy smallest-observed-next ordering of the leftover joins.

        Unlike planning-time ordering this ranks on *actual* scanned
        cardinalities -- free information the plan's estimates got wrong
        badly enough to trigger the replan.
        """
        joined = set(joined)
        queue = list(remaining)
        reordered: list[JoinCondition] = []
        while queue:
            candidates = [
                j
                for j in queue
                if (j.left_table in joined) != (j.right_table in joined)
            ]
            if not candidates:
                # Disconnected leftovers; keep their original relative order.
                candidates = queue[:1]

            def observed_size(condition: JoinCondition) -> int:
                left, right = condition.tables()
                new_table = right if left in joined else left
                rows = scanned_rows.get(new_table)
                return int(rows.size) if rows is not None else 0

            best = min(candidates, key=observed_size)
            reordered.append(best)
            joined |= set(best.tables())
            queue.remove(best)
        return reordered

    # ------------------------------------------------------------------
    def _record_metrics(
        self,
        io: IOCounter,
        scans: dict[str, ScanResult],
        stage_timings: dict[str, float],
        aggregation: AggregationResult | None,
    ) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        registry.counter("engine_queries_total").inc()
        registry.counter("engine_blocks_read_total").inc(io.blocks_read)
        registry.counter("engine_rows_scanned_total").inc(
            sum(s.rows_scanned for s in scans.values())
        )
        for stage, seconds in stage_timings.items():
            registry.histogram("engine_stage_seconds", stage=stage).observe(
                seconds
            )
        if aggregation is not None:
            registry.counter("engine_hash_resizes_total").inc(
                aggregation.resize_count
            )
            registry.counter("engine_hash_moved_entries_total").inc(
                aggregation.moved_entries
            )
            registry.counter("engine_presize_waste_slots_total").inc(
                aggregation.presize_waste
            )
            if aggregation.presize_clamped:
                registry.counter("engine_presize_clamped_total").inc()

    # ------------------------------------------------------------------
    def _payload_columns(self, query: CardQuery, table: str) -> list[str]:
        """Columns of ``table`` the engine must materialize beyond filters."""
        payload: list[str] = []
        for join in query.joins_touching(table):
            column = join.side_for(table)
            if column not in payload:
                payload.append(column)
        for group_table, column in query.group_by:
            if group_table == table and column not in payload:
                payload.append(column)
        if query.agg.table == table and query.agg.column is not None:
            if query.agg.column not in payload:
                payload.append(query.agg.column)
        return payload

    def _scalar_aggregate(
        self, query: CardQuery, join_exec: JoinExecution
    ) -> float:
        """The query's scalar answer for the no-GROUP-BY case."""
        kind = query.agg.kind
        if kind is AggKind.COUNT:
            return float(join_exec.result_rows)
        assert query.agg.table is not None and query.agg.column is not None
        rows = join_exec.tuples.get(query.agg.table)
        if rows is None or rows.size == 0:
            return 0.0
        target = (
            self.catalog.table(query.agg.table)
            .column(query.agg.column)
            .values[rows]
            .astype(float)
        )
        if kind is AggKind.COUNT_DISTINCT:
            return float(np.unique(target).size)
        if kind is AggKind.SUM:
            return float(target.sum())
        if kind is AggKind.AVG:
            return float(target.mean())
        if kind is AggKind.MIN:
            return float(target.min())
        return float(target.max())

    def _cpu_cost(
        self,
        scans: dict[str, ScanResult],
        join_exec: JoinExecution,
        aggregation: AggregationResult | None,
    ) -> float:
        config = self.config
        cost = sum(s.rows_scanned for s in scans.values()) * config.cpu_tuple_cost
        # Incremental tuple construction of the multi-stage reader: every
        # surviving row of every stage is appended to a partial tuple.
        cost += (
            sum(sum(s.stage_survivors) for s in scans.values())
            * config.materialize_tuple_cost
        )
        cost += (join_exec.build_rows + join_exec.probe_rows) * config.join_tuple_cost
        cost += sum(join_exec.intermediate_sizes) * config.materialize_tuple_cost
        if aggregation is not None:
            cost += aggregation.rows_aggregated * config.agg_tuple_cost
            cost += aggregation.moved_entries * config.resize_move_cost
        return cost
