"""Physical-plan execution and the cost model.

Executes a :class:`PhysicalPlan`: scans each table with its chosen reader
(charging block I/O), runs the hash joins in the chosen order, and -- for
GROUP BY queries -- hash-aggregates with the plan's NDV-driven initial
capacity.  The result carries the full cost breakdown the benchmarks plot:
blocks read (Figure 6a), resize counts (Figure 6b), and total latency in
cost units (Figure 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine.aggregation import AggregationResult, hash_aggregate
from repro.obs.metrics import MetricsRegistry
from repro.engine.config import EngineConfig
from repro.engine.join import JoinExecution, hash_join_tree
from repro.engine.optimizer import PhysicalPlan
from repro.engine.partitioned import partitioned_scan
from repro.engine.readers import ReaderKind, ScanResult
from repro.metrics.latency import LatencyRecord
from repro.sql.query import AggKind, CardQuery
from repro.storage.catalog import Catalog
from repro.storage.io_stats import IOCounter


@dataclass
class QueryResult:
    """Everything the benchmarks need from one executed query."""

    query: CardQuery
    result_rows: int
    groups: int | None
    #: the query's scalar answer when it has no GROUP BY (COUNT(*) rows,
    #: SUM/AVG/MIN/MAX of the target, or the exact COUNT DISTINCT)
    aggregate_value: float | None
    blocks_read: int
    rows_scanned: int
    resize_count: int
    moved_entries: int
    estimation_cost: float
    io_cost: float
    cpu_cost: float
    scans: dict[str, ScanResult]
    aggregation: AggregationResult | None
    #: wall-clock seconds per execution stage (scan / join / aggregate)
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: per-decision estimate provenance carried over from the plan (how the
    #: optimizer's estimates were produced, incl. actual vs. saved BN
    #: inference pass counts from shared-belief plans)
    estimate_provenance: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.estimation_cost + self.io_cost + self.cpu_cost

    def latency_record(self) -> LatencyRecord:
        return LatencyRecord(
            query_id=self.query.name,
            estimation_cost=self.estimation_cost,
            io_cost=self.io_cost,
            cpu_cost=self.cpu_cost,
        )


class Executor:
    """Executes physical plans against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.catalog = catalog
        self.config = config or EngineConfig()
        self.registry = registry if registry is not None else MetricsRegistry(enabled=False)

    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan) -> QueryResult:
        query = plan.query
        io = IOCounter()
        stage_timings: dict[str, float] = {}
        scans: dict[str, ScanResult] = {}
        stage_start = time.perf_counter()
        for table_name in query.tables:
            table = self.catalog.table(table_name)
            payload = self._payload_columns(query, table_name)
            scans[table_name] = partitioned_scan(
                table,
                query,
                payload,
                io,
                default_reader=plan.readers.get(table_name, ReaderKind.SINGLE_STAGE),
                default_column_order=plan.column_orders.get(table_name),
                partition_readers=plan.partition_readers.get(table_name),
                partition_column_orders=plan.partition_column_orders.get(table_name),
                parallelism=self.config.scan_parallelism,
                prune=self.config.partition_pruning,
                registry=self.registry,
            )
        stage_timings["scan"] = time.perf_counter() - stage_start

        scanned_rows = {name: scan.row_indices for name, scan in scans.items()}
        stage_start = time.perf_counter()
        join_exec = hash_join_tree(
            self.catalog,
            query,
            scanned_rows,
            plan.join_order,
            max_intermediate_rows=self.config.max_intermediate_rows,
        )
        stage_timings["join"] = time.perf_counter() - stage_start

        aggregation: AggregationResult | None = None
        if query.group_by:
            stage_start = time.perf_counter()
            aggregation = hash_aggregate(
                self.catalog,
                query,
                join_exec.tuples,
                estimated_ndv=plan.estimated_group_ndv,
                default_capacity=self.config.default_hash_capacity,
                load_factor=self.config.hash_load_factor,
                max_presize_capacity=self.config.max_presize_capacity,
            )
            stage_timings["aggregate"] = time.perf_counter() - stage_start

        random_blocks = sum(s.random_blocks for s in scans.values())
        sequential_blocks = io.blocks_read - random_blocks
        io_cost = (
            sequential_blocks * self.config.io_block_cost
            + random_blocks
            * self.config.io_block_cost
            * self.config.random_read_multiplier
        )
        cpu_cost = self._cpu_cost(scans, join_exec, aggregation)
        aggregate_value = (
            self._scalar_aggregate(query, join_exec) if not query.group_by else None
        )
        self._record_metrics(io, scans, stage_timings, aggregation)
        return QueryResult(
            query=query,
            result_rows=join_exec.result_rows,
            groups=aggregation.groups if aggregation else None,
            aggregate_value=aggregate_value,
            blocks_read=io.blocks_read,
            rows_scanned=sum(s.rows_scanned for s in scans.values()),
            resize_count=aggregation.resize_count if aggregation else 0,
            moved_entries=aggregation.moved_entries if aggregation else 0,
            estimation_cost=plan.estimation_cost,
            io_cost=io_cost,
            cpu_cost=cpu_cost,
            scans=scans,
            aggregation=aggregation,
            stage_timings=stage_timings,
            estimate_provenance={
                decision: dict(sources)
                for decision, sources in plan.decision_provenance.items()
            },
        )

    # ------------------------------------------------------------------
    def _record_metrics(
        self,
        io: IOCounter,
        scans: dict[str, ScanResult],
        stage_timings: dict[str, float],
        aggregation: AggregationResult | None,
    ) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        registry.counter("engine_queries_total").inc()
        registry.counter("engine_blocks_read_total").inc(io.blocks_read)
        registry.counter("engine_rows_scanned_total").inc(
            sum(s.rows_scanned for s in scans.values())
        )
        for stage, seconds in stage_timings.items():
            registry.histogram("engine_stage_seconds", stage=stage).observe(
                seconds
            )
        if aggregation is not None:
            registry.counter("engine_hash_resizes_total").inc(
                aggregation.resize_count
            )
            registry.counter("engine_hash_moved_entries_total").inc(
                aggregation.moved_entries
            )
            registry.counter("engine_presize_waste_slots_total").inc(
                aggregation.presize_waste
            )
            if aggregation.presize_clamped:
                registry.counter("engine_presize_clamped_total").inc()

    # ------------------------------------------------------------------
    def _payload_columns(self, query: CardQuery, table: str) -> list[str]:
        """Columns of ``table`` the engine must materialize beyond filters."""
        payload: list[str] = []
        for join in query.joins_touching(table):
            column = join.side_for(table)
            if column not in payload:
                payload.append(column)
        for group_table, column in query.group_by:
            if group_table == table and column not in payload:
                payload.append(column)
        if query.agg.table == table and query.agg.column is not None:
            if query.agg.column not in payload:
                payload.append(query.agg.column)
        return payload

    def _scalar_aggregate(
        self, query: CardQuery, join_exec: JoinExecution
    ) -> float:
        """The query's scalar answer for the no-GROUP-BY case."""
        kind = query.agg.kind
        if kind is AggKind.COUNT:
            return float(join_exec.result_rows)
        assert query.agg.table is not None and query.agg.column is not None
        rows = join_exec.tuples.get(query.agg.table)
        if rows is None or rows.size == 0:
            return 0.0
        target = (
            self.catalog.table(query.agg.table)
            .column(query.agg.column)
            .values[rows]
            .astype(float)
        )
        if kind is AggKind.COUNT_DISTINCT:
            return float(np.unique(target).size)
        if kind is AggKind.SUM:
            return float(target.sum())
        if kind is AggKind.AVG:
            return float(target.mean())
        if kind is AggKind.MIN:
            return float(target.min())
        return float(target.max())

    def _cpu_cost(
        self,
        scans: dict[str, ScanResult],
        join_exec: JoinExecution,
        aggregation: AggregationResult | None,
    ) -> float:
        config = self.config
        cost = sum(s.rows_scanned for s in scans.values()) * config.cpu_tuple_cost
        # Incremental tuple construction of the multi-stage reader: every
        # surviving row of every stage is appended to a partial tuple.
        cost += (
            sum(sum(s.stage_survivors) for s in scans.values())
            * config.materialize_tuple_cost
        )
        cost += (join_exec.build_rows + join_exec.probe_rows) * config.join_tuple_cost
        cost += sum(join_exec.intermediate_sizes) * config.materialize_tuple_cost
        if aggregation is not None:
            cost += aggregation.rows_aggregated * config.agg_tuple_cost
            cost += aggregation.moved_entries * config.resize_move_cost
        return cost
