"""Hash-join execution over scanned row sets.

Joins are executed along the optimizer's chosen order: each step joins one
new table into the accumulated intermediate result (arrays of row indices,
one per joined table -- classic late-materialized join representation).
Intermediate tuple counts are accumulated for the CPU cost model; an
explicit cap guards against runaway materialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError
from repro.sql.query import CardQuery, JoinCondition
from repro.storage.catalog import Catalog


@dataclass
class JoinExecution:
    """Result of executing a join tree."""

    #: row indices per table, parallel arrays (one row per result tuple)
    tuples: dict[str, np.ndarray]
    #: intermediate result sizes after each join step (cost-model input)
    intermediate_sizes: list[int] = field(default_factory=list)
    #: rows hashed + probed across all steps
    build_rows: int = 0
    probe_rows: int = 0

    @property
    def result_rows(self) -> int:
        if not self.tuples:
            return 0
        return int(next(iter(self.tuples.values())).size)


def hash_join_tree(
    catalog: Catalog,
    query: CardQuery,
    scanned: dict[str, np.ndarray],
    join_order: list[JoinCondition],
    max_intermediate_rows: int = 30_000_000,
) -> JoinExecution:
    """Execute the query's joins in the given order.

    ``scanned`` maps each table to its surviving row indices; ``join_order``
    must be a linearization where every condition connects a new table to
    the already-joined prefix (the optimizer guarantees this).
    """
    if not query.joins:
        table = query.tables[0]
        return JoinExecution(tuples={table: scanned[table]})
    if len(join_order) != len(query.joins):
        raise ExecutionError(
            f"join order has {len(join_order)} steps for {len(query.joins)} joins"
        )

    first = join_order[0]
    start_table = first.left_table
    execution = JoinExecution(tuples={start_table: scanned[start_table]})

    for join in join_order:
        hash_join_step(catalog, execution, join, scanned, max_intermediate_rows)
    return execution


def hash_join_step(
    catalog: Catalog,
    execution: JoinExecution,
    join: JoinCondition,
    scanned: dict[str, np.ndarray],
    max_intermediate_rows: int = 30_000_000,
) -> int:
    """Join one new table into the accumulated execution, **in place**.

    The single-step building block of :func:`hash_join_tree`, exposed so
    the executor can drive joins step by step -- observing each step's
    actual intermediate cardinality (runtime feedback) and re-ranking the
    remaining order when an actual deviates wildly from its estimate
    (adaptive replanning).  Returns the step's output row count.
    """
    joined_tables = set(execution.tuples)
    left, right = join.tables()
    if left in joined_tables and right not in joined_tables:
        new_table = right
    elif right in joined_tables and left not in joined_tables:
        new_table = left
    else:
        raise ExecutionError(
            f"join order step {join} does not extend the joined prefix"
        )
    old_table = left if new_table == right else right

    old_keys = catalog.table(old_table).column(join.side_for(old_table)).values[
        execution.tuples[old_table]
    ]
    new_rows = scanned[new_table]
    new_keys = catalog.table(new_table).column(join.side_for(new_table)).values[
        new_rows
    ]

    # Build on the new table's rows, probe with the intermediate.
    order = np.argsort(new_keys, kind="stable")
    sorted_rows = new_rows[order]
    sorted_keys = new_keys[order]
    lo = np.searchsorted(sorted_keys, old_keys, side="left")
    hi = np.searchsorted(sorted_keys, old_keys, side="right")
    counts = hi - lo
    out_rows = int(counts.sum())
    if out_rows > max_intermediate_rows:
        raise ExecutionError(
            f"intermediate join result of {out_rows} rows exceeds the "
            f"cap of {max_intermediate_rows}"
        )
    repeat_index = np.repeat(np.arange(old_keys.size), counts)
    if old_keys.size:
        take = np.concatenate(
            [np.arange(a, b) for a, b in zip(lo, hi)]
        ).astype(np.int64)
    else:
        take = np.empty(0, dtype=np.int64)

    execution.tuples = {
        table: rows[repeat_index] for table, rows in execution.tuples.items()
    }
    execution.tuples[new_table] = sorted_rows[take]
    execution.build_rows += int(new_rows.size)
    execution.probe_rows += int(old_keys.size)
    execution.intermediate_sizes.append(out_rows)
    return out_rows
