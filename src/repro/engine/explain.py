"""EXPLAIN-style rendering of plans and execution results.

``explain_plan`` shows what the optimizer decided (readers, column orders,
join order, hash pre-sizing) and ``explain_result`` what execution actually
did (blocks, rows, resizes, cost breakdown) -- the two views a ByteHouse
engineer diffs when a query regresses.
"""

from __future__ import annotations

from repro.engine.executor import QueryResult
from repro.engine.optimizer import PhysicalPlan


def explain_plan(plan: PhysicalPlan) -> str:
    """Render one physical plan as indented text."""
    query = plan.query
    lines = [f"Query {query.name or '<unnamed>'}: {query.agg}"]
    lines.append(f"  tables: {', '.join(query.tables)}")
    for table in query.tables:
        reader = plan.readers.get(table)
        selectivity = plan.table_selectivities.get(table)
        parts = [f"  scan {table}"]
        if reader is not None:
            parts.append(f"reader={reader.value}")
        if selectivity is not None:
            parts.append(f"est_selectivity={selectivity:.4f}")
        order = plan.column_orders.get(table)
        if order:
            parts.append("column_order=" + " -> ".join(order))
        lines.append("  ".join(parts))
        total_partitions = plan.partition_counts.get(table)
        if total_partitions is not None:
            pruned = plan.pruned_partitions.get(table, ())
            lines.append(
                f"    partitions: {total_partitions - len(pruned)}/"
                f"{total_partitions} survive zone-map pruning"
                + (f" (pruned: {', '.join(map(str, pruned))})" if pruned else "")
            )
            partition_readers = plan.partition_readers.get(table, {})
            for index in sorted(partition_readers):
                kind = partition_readers[index]
                detail = [f"    partition {index}: reader={kind.value}"]
                selectivity = plan.partition_selectivities.get(table, {}).get(index)
                if selectivity is not None:
                    detail.append(f"est_selectivity={selectivity:.4f}")
                part_order = plan.partition_column_orders.get(table, {}).get(index)
                if part_order:
                    detail.append("column_order=" + " -> ".join(part_order))
                lines.append("  ".join(detail))
    for index, join in enumerate(plan.join_order, start=1):
        lines.append(f"  join {index}: {join}")
    if query.group_by:
        keys = ", ".join(f"{t}.{c}" for t, c in query.group_by)
        sizing = (
            f"pre-sized for ~{plan.estimated_group_ndv:.0f} groups"
            if plan.estimated_group_ndv is not None
            else "default capacity"
        )
        lines.append(f"  aggregate by ({keys}): {sizing}")
    lines.append(f"  estimation cost: {plan.estimation_cost:.2f}")
    if plan.decision_timings:
        lines.append("  decisions:")
        for name, seconds in plan.decision_timings.items():
            parts = [f"    {name}: {seconds * 1e3:.3f}ms"]
            provenance = plan.decision_provenance.get(name)
            if provenance:
                rendered = ", ".join(
                    f"{source} x{count}"
                    for source, count in sorted(provenance.items())
                )
                parts.append(f"[{rendered}]")
            lines.append("  ".join(parts))
    return "\n".join(lines)


def explain_result(result: QueryResult) -> str:
    """Render one execution result as indented text."""
    lines = [f"Result {result.query.name or '<unnamed>'}"]
    lines.append(f"  rows: {result.result_rows}")
    if result.groups is not None:
        lines.append(f"  groups: {result.groups}")
    if result.aggregate_value is not None:
        lines.append(f"  answer: {result.aggregate_value:g}")
    lines.append(
        f"  io: {result.blocks_read} blocks ({result.rows_scanned} rows scanned)"
    )
    for table, scan in sorted(result.scans.items()):
        partitions = ""
        if scan.partitions_pruned or scan.partitions_scanned > 1:
            total = scan.partitions_scanned + scan.partitions_pruned
            partitions = (
                f", partitions {scan.partitions_scanned}/{total}"
                f" ({scan.partitions_pruned} pruned)"
            )
        lines.append(
            f"    {table}: {scan.reader.value}, {scan.blocks_read} blocks"
            + (f" ({scan.random_blocks} random)" if scan.random_blocks else "")
            + partitions
        )
    if result.resize_count:
        lines.append(
            f"  hash resizes: {result.resize_count} "
            f"({result.moved_entries} entries rehashed)"
        )
    aggregation = result.aggregation
    if aggregation is not None and (
        aggregation.presize_waste or aggregation.presize_clamped
    ):
        clamp = " (clamped)" if aggregation.presize_clamped else ""
        lines.append(
            f"  pre-sizing{clamp}: initial={aggregation.initial_capacity} "
            f"final={aggregation.final_capacity} "
            f"waste={aggregation.presize_waste} slots"
        )
    if result.stage_timings:
        rendered = " ".join(
            f"{stage}={seconds * 1e3:.3f}ms"
            for stage, seconds in result.stage_timings.items()
        )
        lines.append(f"  stage timings: {rendered}")
    if result.estimate_provenance:
        lines.append("  estimates:")
        for decision in sorted(result.estimate_provenance):
            rendered = ", ".join(
                f"{source} x{count}"
                for source, count in sorted(
                    result.estimate_provenance[decision].items()
                )
            )
            lines.append(f"    {decision}: {rendered}")
    lines.append(
        "  cost: "
        f"estimation={result.estimation_cost:.2f} "
        f"io={result.io_cost:.2f} cpu={result.cpu_cost:.2f} "
        f"total={result.total_cost:.2f}"
    )
    return "\n".join(lines)
