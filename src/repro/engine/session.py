"""The engine session facade: optimizer + executor behind one call.

An :class:`EngineSession` pairs a catalog with an :class:`EstimatorSuite`
(a named COUNT/NDV estimator pair -- "sketch", "sample", or "bytecard") and
runs bound queries end to end, which is exactly the setup of the paper's
Figure 5 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.config import EngineConfig
from repro.engine.executor import Executor, QueryResult
from repro.engine.optimizer import Optimizer
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.feedback import FeedbackLog
from repro.metrics.latency import LatencyProfile
from repro.sql.query import CardQuery
from repro.storage.catalog import Catalog


@dataclass
class EstimatorSuite:
    """A named pair of estimators the engine consults during planning."""

    name: str
    count_estimator: CountEstimator
    ndv_estimator: NdvEstimator | None = None


class EngineSession:
    """Plan-and-execute facade over one catalog."""

    def __init__(
        self,
        catalog: Catalog,
        suite: EstimatorSuite | None = None,
        config: EngineConfig | None = None,
        service=None,
        registry=None,
        feedback: FeedbackLog | None = None,
        strategy=None,
    ):
        """Pass exactly one of ``suite``, ``service``, or ``strategy``.

        With ``service`` (a :class:`repro.serving.EstimationService`), the
        optimizer consults the serving tier -- estimates come through its
        cache, batcher, and deadline-fallback pipeline instead of raw
        estimator calls.

        With ``strategy`` (an
        :class:`repro.estimators.base.EstimationStrategy` -- a routed
        :class:`~repro.estimators.strategy.StrategyRouter`, a fallback
        :class:`~repro.estimators.strategy.StrategyChain`, or a single
        adapted estimator), the optimizer plans against that strategy's
        protocol surface directly; NDV estimation uses the strategy itself
        when it is an :class:`~repro.estimators.base.NdvEstimator`.

        ``registry`` (a :class:`repro.obs.MetricsRegistry`) collects the
        optimizer's decision spans and the executor's scan/join/resize
        counters; when omitted, the session inherits the service's registry
        or the estimator's own (``ByteCard.metrics()``), if either exists.

        ``feedback`` is the runtime :class:`repro.feedback.FeedbackLog`.
        When ``config.enable_feedback`` is set and none is passed, the
        session inherits the service's log (so served estimates pair with
        executed actuals), then the estimator's (``ByteCard.feedback_log``),
        and finally creates a private one.
        """
        provided = sum(x is not None for x in (suite, service, strategy))
        if provided != 1:
            raise ValueError(
                "provide exactly one of suite=, service=, or strategy="
            )
        if strategy is not None:
            ndv = strategy if isinstance(strategy, NdvEstimator) else None
            suite = EstimatorSuite(
                strategy.strategy_id,
                count_estimator=strategy,
                ndv_estimator=ndv,
            )
        elif suite is None:
            ndv = service if getattr(service, "estimate_ndv", None) else None
            suite = EstimatorSuite(
                service.name, count_estimator=service, ndv_estimator=ndv
            )
        if registry is None:
            registry = getattr(service, "registry", None)
        if registry is None:
            registry = getattr(suite.count_estimator, "obs", None)
        self.catalog = catalog
        self.suite = suite
        self.service = service
        self.registry = registry
        self.config = config or EngineConfig()
        if feedback is None and self.config.enable_feedback:
            feedback = getattr(service, "feedback", None)
            if feedback is None:
                feedback = getattr(suite.count_estimator, "feedback_log", None)
            if feedback is None:
                feedback = FeedbackLog(
                    capacity=self.config.feedback_capacity, registry=registry
                )
        self.feedback = feedback
        self.optimizer = Optimizer(
            suite.count_estimator,
            suite.ndv_estimator,
            self.config,
            registry,
            catalog=catalog,
        )
        self.executor = Executor(catalog, self.config, registry, feedback=feedback)

    def run(self, query: CardQuery) -> QueryResult:
        """Plan and execute one query."""
        plan = self.optimizer.plan(query)
        return self.executor.execute(plan)

    def run_workload(self, queries: list[CardQuery]) -> LatencyProfile:
        """Execute a workload and collect its latency profile."""
        profile = LatencyProfile()
        for query in queries:
            result = self.run(query)
            profile.add(result.latency_record())
        return profile
