"""Hash aggregation with resize accounting and NDV-driven pre-sizing.

The operator groups the join result by the query's GROUP BY keys using a
:class:`SimulatedHashTable`.  Its initial capacity comes from the NDV
estimate the engine was given -- ByteCard's RBX in the learned
configuration, a cached/default size otherwise -- and the resulting resize
counts are the quantity of Figure 6(b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.hash_table import SimulatedHashTable, _next_power_of_two
from repro.errors import ExecutionError
from repro.sql.query import CardQuery
from repro.storage.catalog import Catalog


@dataclass
class AggregationResult:
    """Outcome of one hash aggregation."""

    groups: int
    rows_aggregated: int
    resize_count: int
    moved_entries: int
    initial_capacity: int
    final_capacity: int
    #: slots allocated beyond the minimum capacity that would have held the
    #: actual groups resize-free -- the over-allocation cost of a too-high
    #: NDV estimate (the flip side of Figure 6(b)'s resize savings)
    presize_waste: int = 0
    #: the NDV-driven pre-size hit ``max_presize_capacity`` and was clamped
    presize_clamped: bool = False
    #: per-group aggregate values (parallel to ``group_keys``), when the
    #: query's aggregate targets a column; COUNT(*) yields group sizes
    values: np.ndarray | None = None
    #: distinct key combinations, one column per group-by key
    group_keys: np.ndarray | None = None


def _required_capacity(groups: int, load_factor: float) -> int:
    """Smallest power-of-two capacity holding ``groups`` resize-free."""
    return _next_power_of_two(max(1, int(np.ceil(groups / load_factor))))


def hash_aggregate(
    catalog: Catalog,
    query: CardQuery,
    tuples: dict[str, np.ndarray],
    estimated_ndv: float | None,
    default_capacity: int = 256,
    load_factor: float = 0.5,
    max_presize_capacity: int | None = None,
) -> AggregationResult:
    """Aggregate the join result by the query's group keys.

    ``estimated_ndv`` sizes the hash table up front (with the usual
    head-room of ``1 / load_factor``); ``None`` falls back to the engine's
    default capacity, reproducing the no-ByteCard configuration.  The
    pre-size is clamped to ``max_presize_capacity`` so an overestimated NDV
    cannot allocate an unbounded table; the over-allocation actually paid
    is reported as :attr:`AggregationResult.presize_waste`.
    """
    if not query.group_by:
        raise ExecutionError("hash_aggregate requires GROUP BY keys")
    if not tuples:
        raise ExecutionError("no join tuples supplied to aggregation")
    result_rows = int(next(iter(tuples.values())).size)

    presize_clamped = False
    if estimated_ndv is None:
        initial = default_capacity
    else:
        initial = max(1, int(np.ceil(estimated_ndv / load_factor)))
        if max_presize_capacity is not None and initial > max_presize_capacity:
            initial = max_presize_capacity
            presize_clamped = True
    table = SimulatedHashTable(initial_capacity=initial, load_factor=load_factor)

    if result_rows == 0:
        return AggregationResult(
            groups=0,
            rows_aggregated=0,
            resize_count=0,
            moved_entries=0,
            initial_capacity=table.capacity,
            final_capacity=table.capacity,
            presize_waste=max(
                0, table.capacity - _required_capacity(0, load_factor)
            ),
            presize_clamped=presize_clamped,
        )

    key_rows = []
    for table_name, column in query.group_by:
        if table_name not in tuples:
            raise ExecutionError(
                f"group-by key {table_name}.{column} not in the join result"
            )
        values = catalog.table(table_name).column(column).values[tuples[table_name]]
        key_rows.append(values.astype(np.int64))
    stacked = np.stack(key_rows)
    # Composite keys -> one integer id per distinct combination.
    uniques, inverse = np.unique(stacked, axis=1, return_inverse=True)
    table.insert_stream(inverse)
    values = _aggregate_values(catalog, query, tuples, inverse, table.distinct)

    return AggregationResult(
        groups=table.distinct,
        rows_aggregated=result_rows,
        resize_count=table.resize_count,
        moved_entries=table.moved_entries,
        initial_capacity=initial if estimated_ndv is not None else default_capacity,
        final_capacity=table.capacity,
        presize_waste=max(
            0, table.capacity - _required_capacity(table.distinct, load_factor)
        ),
        presize_clamped=presize_clamped,
        values=values,
        group_keys=uniques,
    )


def _aggregate_values(
    catalog: Catalog,
    query: CardQuery,
    tuples: dict[str, np.ndarray],
    group_ids: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Compute the per-group aggregate (COUNT, SUM, AVG, MIN, MAX,
    COUNT DISTINCT) over the join result."""
    from repro.sql.query import AggKind

    kind = query.agg.kind
    counts = np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    if kind is AggKind.COUNT:
        return counts
    assert query.agg.table is not None and query.agg.column is not None
    if query.agg.table not in tuples:
        raise ExecutionError(
            f"aggregate target {query.agg.table}.{query.agg.column} not in "
            "the join result"
        )
    target = catalog.table(query.agg.table).column(query.agg.column).values[
        tuples[query.agg.table]
    ].astype(np.float64)
    if kind is AggKind.COUNT_DISTINCT:
        pairs = np.stack([group_ids.astype(np.int64), target])
        distinct_pairs = np.unique(pairs, axis=1)
        return np.bincount(
            distinct_pairs[0].astype(np.int64), minlength=num_groups
        ).astype(np.float64)
    if kind is AggKind.SUM or kind is AggKind.AVG:
        sums = np.zeros(num_groups, dtype=np.float64)
        np.add.at(sums, group_ids, target)
        if kind is AggKind.SUM:
            return sums
        return sums / np.maximum(counts, 1.0)
    if kind is AggKind.MIN:
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, group_ids, target)
        return out
    if kind is AggKind.MAX:
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, group_ids, target)
        return out
    raise ExecutionError(f"unsupported aggregate kind {kind}")
