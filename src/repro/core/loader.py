"""The Model Loader: timestamp-based refresh, size gating, LRU eviction.

Runs as one of the Daemon Manager's background tasks in production; here it
is driven explicitly via :meth:`ModelLoader.refresh`.  Semantics follow the
paper:

* only blobs with a **newer timestamp** than the loaded version are
  considered ("only models with the most recent timestamp are considered
  for loading and updating");
* a blob failing the **size checker** or the **health detector** is
  refused, keeping the previous version serving;
* when the cumulative size exceeds the budget, the **least recently used**
  models are evicted.

The loader also maintains a **generation counter**: every refresh pass that
changes the serving set (loads or evicts at least one model) bumps it and
notifies registered listeners with the pass's :class:`RefreshReport`.  The
serving tier's estimate cache keys its entries on these generations, so a
mid-flight model swap lazily invalidates exactly the affected estimates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import CardEstInferenceEngine
from repro.core.registry import ModelRegistry
from repro.core.validator import ModelValidator
from repro.obs.metrics import MetricsRegistry


@dataclass
class _LoadedModel:
    engine: CardEstInferenceEngine
    timestamp: int
    nbytes: int
    last_used: int = 0
    #: monotonically increasing insertion sequence, the LRU tie-breaker
    seq: int = 0


#: refusal categories, the ``reason`` label of
#: ``loader_models_refused_total`` (pre-registered so exports always carry
#: all three, even at zero -- the CI smoke contract)
REFUSAL_REASONS = ("size", "deserialize", "health")


@dataclass
class RefreshReport:
    """What one refresh pass did."""

    loaded: list[tuple[str, str]] = field(default_factory=list)
    refused: list[tuple[str, str, str]] = field(default_factory=list)
    evicted: list[tuple[str, str]] = field(default_factory=list)
    unchanged: list[tuple[str, str]] = field(default_factory=list)
    #: refusal categories parallel to :attr:`refused` (see REFUSAL_REASONS)
    refusal_reasons: list[str] = field(default_factory=list)

    def changed_keys(self) -> list[tuple[str, str]]:
        """Keys whose serving state changed this pass (loaded or evicted)."""
        return list(dict.fromkeys(self.loaded + self.evicted))

    def refusals(self) -> list[tuple[str, str, str, str]]:
        """(kind, name, reason-category, detail) per refused load."""
        return [
            (kind, name, reason, detail)
            for (kind, name, detail), reason in zip(
                self.refused, self.refusal_reasons
            )
        ]


class ModelLoader:
    """Loads models from the registry into inference engines."""

    def __init__(
        self,
        registry: ModelRegistry,
        validator: ModelValidator,
        engine_factory,
        max_total_bytes: int,
        metrics: MetricsRegistry | None = None,
    ):
        """``engine_factory(kind, name)`` builds an empty engine per model."""
        self.registry = registry
        self.validator = validator
        self.engine_factory = engine_factory
        self.max_total_bytes = max_total_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._loaded: dict[tuple[str, str], _LoadedModel] = {}
        self._tick = 0
        self._seq = 0
        self._generation = 0
        self._listeners: list[Callable[[RefreshReport], None]] = []
        #: guards the loaded-model map only; held for dict ops, never
        #: across deserialization or validation
        self._lock = threading.Lock()
        #: serializes whole refresh passes (the slow part runs unlocked)
        self._refresh_lock = threading.Lock()
        if self.metrics.enabled:
            # Pre-register the refusal counters so a scrape can assert on
            # them (at zero) before the first refusal ever happens.
            for reason in REFUSAL_REASONS:
                self.metrics.counter(
                    "loader_models_refused_total", reason=reason
                )

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Bumped whenever a refresh pass loads or evicts any model."""
        return self._generation

    def add_refresh_listener(
        self, listener: Callable[[RefreshReport], None]
    ) -> None:
        """Register a callback invoked after every state-changing refresh."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def refresh(self) -> RefreshReport:
        """One loader pass over everything the registry holds.

        Deserialization, validation, and context initialization -- the
        expensive part -- run *outside* the map lock: :meth:`get` on the
        serving hot path never blocks behind a refresh.  Prepared engines
        are swapped in under the lock at the end of the pass.
        """
        with self._refresh_lock:
            report = self._refresh_pass()
        if report.loaded or report.evicted:
            for listener in self._listeners:
                listener(report)
        return report

    def _refresh_pass(self) -> RefreshReport:
        report = RefreshReport()
        with self._lock:
            current_ts = {
                key: model.timestamp for key, model in self._loaded.items()
            }
        staged: list[tuple[tuple[str, str], CardEstInferenceEngine, int, int]] = []
        for key in self.registry.keys():
            kind, name = key
            record = self.registry.latest(kind, name)
            assert record is not None
            loaded_ts = current_ts.get(key)
            if loaded_ts is not None and loaded_ts >= record.timestamp:
                report.unchanged.append(key)
                continue
            size_check = self.validator.check_size(record.blob)
            if not size_check.ok:
                self._refuse(
                    report, key, "size", "; ".join(size_check.problems)
                )
                continue
            engine = self.engine_factory(kind, name)
            if not engine.load_model(record.blob):
                self._refuse(
                    report, key, "deserialize", "deserialization failed"
                )
                continue
            health = engine.validate()
            if not health.ok:
                self._refuse(report, key, "health", "; ".join(health.problems))
                continue
            engine.init_context()
            staged.append((key, engine, record.timestamp, record.nbytes))
        with self._lock:
            for key, engine, timestamp, nbytes in staged:
                resident = self._loaded.get(key)
                if resident is not None and resident.timestamp >= timestamp:
                    # another publish+refresh won the race mid-pass
                    report.unchanged.append(key)
                    continue
                self._tick += 1
                self._seq += 1
                self._loaded[key] = _LoadedModel(
                    engine=engine,
                    timestamp=timestamp,
                    nbytes=nbytes,
                    last_used=self._tick,
                    seq=self._seq,
                )
                report.loaded.append(key)
            self._evict_over_budget(report)
            if report.loaded or report.evicted:
                self._generation += 1
            self._record_metrics(report)
        return report

    def _refuse(
        self,
        report: RefreshReport,
        key: tuple[str, str],
        reason: str,
        detail: str,
    ) -> None:
        """Record one refused load, with its reason category in the obs
        registry -- a silent refusal is an invisible production outage."""
        kind, name = key
        report.refused.append((kind, name, detail))
        report.refusal_reasons.append(reason)
        if self.metrics.enabled:
            self.metrics.counter(
                "loader_models_refused_total", reason=reason
            ).inc()

    def _record_metrics(self, report: RefreshReport) -> None:
        """Loader lifecycle events -> the observability registry."""
        metrics = self.metrics
        if not metrics.enabled:
            return
        metrics.counter("loader_refresh_total").inc()
        if report.loaded:
            metrics.counter("loader_models_loaded_total").inc(len(report.loaded))
        if report.evicted:
            metrics.counter("loader_models_evicted_total").inc(len(report.evicted))
        metrics.gauge("loader_generation").set(self._generation)
        metrics.gauge("loader_loaded_models").set(len(self._loaded))
        metrics.gauge("loader_loaded_bytes").set(
            sum(m.nbytes for m in self._loaded.values())
        )

    def _evict_over_budget(self, report: RefreshReport) -> None:
        total = sum(m.nbytes for m in self._loaded.values())
        if total <= self.max_total_bytes:
            return
        # Least-recently-used first; equal recency is broken deterministically
        # by insertion order (earliest-loaded evicted first).
        victims = sorted(
            self._loaded,
            key=lambda k: (self._loaded[k].last_used, self._loaded[k].seq),
        )
        for key in victims:
            if total <= self.max_total_bytes:
                break
            total -= self._loaded[key].nbytes
            del self._loaded[key]
            report.evicted.append(key)

    # ------------------------------------------------------------------
    def get(self, kind: str, name: str) -> CardEstInferenceEngine | None:
        """Fetch a loaded engine, updating its LRU recency."""
        with self._lock:
            entry = self._loaded.get((kind, name))
            if entry is None:
                return None
            self._tick += 1
            entry.last_used = self._tick
            return entry.engine

    def peek_last_used(self, kind: str, name: str) -> int | None:
        """The recency tick of a loaded model, without touching it."""
        entry = self._loaded.get((kind, name))
        return None if entry is None else entry.last_used

    def loaded_keys(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._loaded)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(m.nbytes for m in self._loaded.values())
