"""The model store (the paper's cloud storage, simulated).

ModelForge publishes serialized model blobs here with monotonically
increasing logical timestamps; the Model Loader polls for blobs newer than
what it has loaded.  An optional directory backing makes the store
persistent, which the lifecycle example uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class ModelRecord:
    """One published model version."""

    kind: str  # "bn" | "rbx" | ...
    name: str  # e.g. the table name, or "universal" for RBX
    timestamp: int
    blob: bytes

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.name)

    @property
    def nbytes(self) -> int:
        return len(self.blob)


class ModelRegistry:
    """Versioned blob store with logical timestamps."""

    def __init__(self, directory: str | Path | None = None):
        self._records: dict[tuple[str, str], list[ModelRecord]] = {}
        self._clock = itertools.count(1)
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def publish(self, kind: str, name: str, blob: bytes) -> ModelRecord:
        """Store a new version; returns the record with its timestamp."""
        record = ModelRecord(
            kind=kind, name=name, timestamp=next(self._clock), blob=blob
        )
        self._records.setdefault(record.key, []).append(record)
        if self._directory is not None:
            path = self._directory / f"{kind}__{name}__{record.timestamp}.bcm"
            path.write_bytes(blob)
        return record

    def latest(self, kind: str, name: str) -> ModelRecord | None:
        versions = self._records.get((kind, name))
        if not versions:
            return None
        return versions[-1]

    def versions(self, kind: str, name: str) -> list[ModelRecord]:
        return list(self._records.get((kind, name), []))

    def keys(self) -> list[tuple[str, str]]:
        return sorted(self._records)

    def purge_older_than(self, keep_latest: int = 2) -> int:
        """Drop stale versions (the paper's automatic training-data purge
        applied to model artifacts); returns how many were removed."""
        removed = 0
        for key, versions in self._records.items():
            if len(versions) > keep_latest:
                removed += len(versions) - keep_latest
                self._records[key] = versions[-keep_latest:]
        return removed
