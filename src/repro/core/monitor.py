"""The Model Monitor: quality gating and fine-tune triggering.

Following the paper (Section 4.4.2): the monitor auto-generates test
queries with multiple predicates per table, executes them for true
cardinalities, computes Q-Errors of the deployed models, and

* **gates COUNT models**: a table whose single-table model exceeds the
  Q-Error threshold is put on the *fallback list* -- ByteCard reverts to
  the traditional estimator for queries touching it.  Only single-table
  models are assessed (computing true join sizes online is too expensive);
  since FactorJoin composes single-table models, monitoring them indirectly
  covers the multi-table estimates;
* **detects problematic NDV columns**: columns whose RBX estimates carry
  large Q-Errors (typically exceptionally high true NDVs) trigger the
  calibration fine-tuning procedure in ModelForge; the tuned weights are
  installed for those columns only, after validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ByteCardConfig
from repro.datasets.base import DatasetBundle
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.estimators.frequency import FrequencyProfile, frequency_profile
from repro.metrics.qerror import qerror
from repro.metrics.quantiles import quantile
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import (
    AggKind,
    AggSpec,
    CardQuery,
    PredicateOp,
    TablePredicate,
)
from repro.utils.rng import derive_rng
from repro.workloads.truth import true_count, true_ndv


@dataclass
class MonitorReport:
    """Assessment of one model (a table's BN, or one NDV column).

    ``passed`` is tri-state: ``True``/``False`` for an assessed model, and
    ``None`` when no test query produced a q-error (e.g. a table with no
    usable filter columns).  An untested model must not be silently treated
    as passing -- callers decide explicitly, via :attr:`untested`.
    """

    name: str
    qerrors: list[float] = field(default_factory=list)
    passed: bool | None = None

    @property
    def untested(self) -> bool:
        """True when the monitor could not generate any assessable query."""
        return not self.qerrors

    @property
    def p90(self) -> float | None:
        return quantile(self.qerrors, 0.9) if self.qerrors else None

    @property
    def worst(self) -> float | None:
        return max(self.qerrors) if self.qerrors else None


class ModelMonitor:
    """Generates test queries and gates model quality."""

    def __init__(
        self,
        bundle: DatasetBundle,
        config: ByteCardConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.bundle = bundle
        self.config = config or ByteCardConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        #: per-model p90 Q-Error across assessments, oldest first -- the
        #: drift record behind fallback-list churn
        self.drift: dict[str, list[float]] = {}
        #: callbacks invoked after every assessment with (report, kind);
        #: the forge's drift-triggered retrain loop subscribes here
        self._listeners: list = []
        self._rng = derive_rng(bundle.seed, "monitor")

    def add_assessment_listener(self, listener) -> None:
        """Register ``listener(report, kind)`` to observe every assessment.

        ``kind`` is ``"count"`` or ``"ndv"``.  Listeners run synchronously
        after the assessment is recorded; they must not block.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Test-query generation (the cardestbench-style generator)
    # ------------------------------------------------------------------
    def _random_predicates(
        self, table: str, count: int, exclude: str | None = None
    ) -> list[TablePredicate]:
        columns = [
            c for c in self.bundle.filter_columns.get(table, []) if c != exclude
        ]
        if not columns:
            return []
        catalog_table = self.bundle.catalog.table(table)
        predicates: list[TablePredicate] = []
        used: set[str] = set()
        for _ in range(count * 3):
            if len(predicates) >= count:
                break
            column = columns[self._rng.integers(len(columns))]
            if column in used:
                continue
            used.add(column)
            values = catalog_table.column(column).values
            anchor = float(values[self._rng.integers(len(values))])
            roll = self._rng.random()
            if roll < 0.4:
                predicates.append(TablePredicate(table, column, PredicateOp.EQ, anchor))
            elif roll < 0.7:
                predicates.append(TablePredicate(table, column, PredicateOp.LE, anchor))
            else:
                predicates.append(TablePredicate(table, column, PredicateOp.GE, anchor))
        return predicates

    def generate_count_tests(self, table: str) -> list[CardQuery]:
        """Multi-predicate single-table COUNT test queries for one table."""
        queries = []
        for index in range(self.config.monitor_queries_per_table):
            num_predicates = int(self._rng.integers(1, 4))
            predicates = self._random_predicates(table, num_predicates)
            if not predicates:
                continue
            queries.append(
                CardQuery(
                    tables=(table,),
                    predicates=tuple(predicates),
                    name=f"monitor-{table}-{index:02d}",
                )
            )
        return queries

    def generate_ndv_tests(self, table: str, column: str) -> list[CardQuery]:
        """Filtered COUNT-DISTINCT test queries for one column."""
        queries = []
        for index in range(self.config.monitor_queries_per_table // 2):
            predicates = self._random_predicates(
                table, int(self._rng.integers(0, 3)), exclude=column
            )
            queries.append(
                CardQuery(
                    tables=(table,),
                    predicates=tuple(predicates),
                    agg=AggSpec(AggKind.COUNT_DISTINCT, table, column),
                    name=f"monitor-ndv-{table}-{column}-{index:02d}",
                )
            )
        return queries

    # ------------------------------------------------------------------
    # Assessments
    # ------------------------------------------------------------------
    def assess_count_model(
        self, table: str, estimator: CountEstimator
    ) -> MonitorReport:
        """Q-Error-gate one table's single-table COUNT model."""
        report = MonitorReport(name=table)
        for query in self.generate_count_tests(table):
            truth = true_count(self.bundle.catalog, query)
            estimate = estimator.estimate_count(query)
            report.qerrors.append(qerror(estimate, truth))
        if report.qerrors:
            report.passed = bool(report.p90 <= self.config.qerror_gate)
        else:
            report.passed = None  # untested, not passing
        self._record_assessment(report, kind="count")
        return report

    def assess_ndv_column(
        self, table: str, column: str, estimator: NdvEstimator
    ) -> MonitorReport:
        """Q-Error-check RBX on one column; flags fine-tune candidates."""
        report = MonitorReport(name=f"{table}.{column}")
        for query in self.generate_ndv_tests(table, column):
            truth = true_ndv(self.bundle.catalog, query)
            if truth == 0:
                continue
            estimate = estimator.estimate_ndv(query)
            report.qerrors.append(qerror(estimate, truth))
        if report.qerrors:
            report.passed = bool(report.p90 <= self.config.ndv_finetune_trigger)
        else:
            report.passed = None  # untested, not passing
        self._record_assessment(report, kind="ndv")
        return report

    def _record_assessment(self, report: MonitorReport, kind: str) -> None:
        """One drift point per assessment: the model's p90 Q-Error."""
        p90 = report.p90
        if p90 is not None:
            self.drift.setdefault(report.name, []).append(p90)
        if self.metrics.enabled:
            self.metrics.counter(
                "monitor_assessments_total", kind=kind
            ).inc()
            if report.passed is False:
                self.metrics.counter("monitor_failures_total", kind=kind).inc()
            if p90 is not None:
                self.metrics.series(
                    "monitor_qerror_p90", model=report.name, kind=kind
                ).append(p90)
        for listener in self._listeners:
            listener(report, kind)

    # ------------------------------------------------------------------
    # Fine-tune corpus collection
    # ------------------------------------------------------------------
    def collect_column_samples(
        self,
        table: str,
        column: str,
        rates: tuple[float, ...] = (0.01, 0.03, 0.1),
        repeats: int = 4,
    ) -> list[tuple[FrequencyProfile, int]]:
        """(frequency profile, true NDV) pairs for calibration fine-tuning.

        Profiles are drawn at several sampling rates so the tuned model
        stays robust across the rates it will see in production.
        """
        catalog_table = self.bundle.catalog.table(table)
        values = catalog_table.column(column).values
        truth = int(np.unique(values).size)
        samples: list[tuple[FrequencyProfile, int]] = []
        for rate in rates:
            for _ in range(repeats):
                take = max(1, int(len(values) * rate))
                picked = values[
                    self._rng.choice(len(values), size=take, replace=False)
                ]
                samples.append(
                    (frequency_profile(picked, population_size=len(values)), truth)
                )
        return samples
