"""The Model Monitor: quality gating and fine-tune triggering.

Following the paper (Section 4.4.2): the monitor auto-generates test
queries with multiple predicates per table, executes them for true
cardinalities, computes Q-Errors of the deployed models, and

* **gates COUNT models**: a table whose single-table model exceeds the
  Q-Error threshold is put on the *fallback list* -- ByteCard reverts to
  the traditional estimator for queries touching it.  Only single-table
  models are assessed (computing true join sizes online is too expensive);
  since FactorJoin composes single-table models, monitoring them indirectly
  covers the multi-table estimates;
* **detects problematic NDV columns**: columns whose RBX estimates carry
  large Q-Errors (typically exceptionally high true NDVs) trigger the
  calibration fine-tuning procedure in ModelForge; the tuned weights are
  installed for those columns only, after validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ByteCardConfig
from repro.datasets.base import DatasetBundle
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.estimators.frequency import FrequencyProfile, frequency_profile
from repro.metrics.qerror import qerror
from repro.metrics.quantiles import quantile
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import (
    AggKind,
    AggSpec,
    CardQuery,
    PredicateOp,
    TablePredicate,
)
from repro.utils.rng import derive_rng
from repro.workloads.truth import true_count, true_ndv


@dataclass
class MonitorReport:
    """Assessment of one model (a table's BN, or one NDV column).

    ``passed`` is tri-state: ``True``/``False`` for an assessed model, and
    ``None`` when no test query produced a q-error (e.g. a table with no
    usable filter columns).  An untested model must not be silently treated
    as passing -- callers decide explicitly, via :attr:`untested`.
    """

    name: str
    qerrors: list[float] = field(default_factory=list)
    passed: bool | None = None
    #: where the evidence came from: ``synthetic`` (generated test
    #: queries), ``feedback`` (runtime pairs only), or ``mixed``
    source: str = "synthetic"
    #: the subset of :attr:`qerrors` derived from runtime feedback -- the
    #: forge's observed-error-mass priority signal
    feedback_qerrors: list[float] = field(default_factory=list)
    #: strategy cache scope the assessed estimator answers under (empty when
    #: the assessment is not strategy-attributed); when set, the monitor
    #: additionally records a per-strategy drift series the
    #: :class:`~repro.estimators.strategy.StrategyRouter` can learn from
    strategy: str = ""

    @property
    def untested(self) -> bool:
        """True when the monitor could not generate any assessable query."""
        return not self.qerrors

    @property
    def p90(self) -> float | None:
        """p90 over the *finite* Q-Errors (``None`` when none are).

        A NaN slipped into the list (a buggy estimator, a hand-built
        report) must not poison the gate: ``quantile`` would propagate it
        into every decision downstream.
        """
        finite = [q for q in self.qerrors if math.isfinite(q)]
        return quantile(finite, 0.9) if finite else None

    @property
    def worst(self) -> float | None:
        finite = [q for q in self.qerrors if math.isfinite(q)]
        return max(finite) if finite else None

    @property
    def error_mass(self) -> float:
        """Sum of log-Q-Error over the feedback-derived evidence."""
        return sum(
            math.log(max(q, 1.0))
            for q in self.feedback_qerrors
            if math.isfinite(q)
        )


class ModelMonitor:
    """Generates test queries and gates model quality."""

    def __init__(
        self,
        bundle: DatasetBundle,
        config: ByteCardConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.bundle = bundle
        self.config = config or ByteCardConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        #: per-model p90 Q-Error across assessments, oldest first -- the
        #: drift record behind fallback-list churn
        self.drift: dict[str, list[float]] = {}
        #: per-(strategy, model) p90 Q-Error across strategy-attributed
        #: assessments -- the router-facing view of the same drift record
        self.strategy_drift: dict[tuple[str, str], list[float]] = {}
        #: callbacks invoked after every assessment with (report, kind);
        #: the forge's drift-triggered retrain loop subscribes here
        self._listeners: list = []
        #: runtime feedback evidence (attach_feedback); when present, a
        #: configurable share of synthetic test queries is replaced by
        #: observed (estimate, actual) pairs from real executions
        self.feedback = None
        self._rng = derive_rng(bundle.seed, "monitor")

    def attach_feedback(self, log) -> None:
        """Attach a :class:`repro.feedback.FeedbackLog` as drift evidence.

        Subsequent :meth:`assess_count_model` calls consume up to
        ``config.monitor_feedback_share`` of their evidence from the log
        (free -- no test queries executed for those), and
        :meth:`assess_from_feedback` becomes available for assessments
        driven purely by runtime pairs.
        """
        self.feedback = log

    def add_assessment_listener(self, listener) -> None:
        """Register ``listener(report, kind)`` to observe every assessment.

        ``kind`` is ``"count"`` or ``"ndv"``.  Listeners run synchronously
        after the assessment is recorded; they must not block.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Test-query generation (the cardestbench-style generator)
    # ------------------------------------------------------------------
    def _random_predicates(
        self, table: str, count: int, exclude: str | None = None
    ) -> list[TablePredicate]:
        """``count`` random predicates on distinct filter columns.

        Columns are sampled *without replacement*: the retry loop this
        replaces could exhaust its draws on tables with few filter columns
        and silently return fewer predicates than requested, skewing
        assessments toward under-constrained queries.  Now a request for at
        least ``len(columns)`` predicates deterministically covers every
        filter column.
        """
        columns = [
            c for c in self.bundle.filter_columns.get(table, []) if c != exclude
        ]
        if not columns or count <= 0:
            return []
        catalog_table = self.bundle.catalog.table(table)
        if count >= len(columns):
            chosen = list(columns)
        else:
            picked = self._rng.choice(len(columns), size=count, replace=False)
            chosen = [columns[int(i)] for i in picked]
        predicates: list[TablePredicate] = []
        for column in chosen:
            values = catalog_table.column(column).values
            anchor = float(values[self._rng.integers(len(values))])
            roll = self._rng.random()
            if roll < 0.4:
                predicates.append(TablePredicate(table, column, PredicateOp.EQ, anchor))
            elif roll < 0.7:
                predicates.append(TablePredicate(table, column, PredicateOp.LE, anchor))
            else:
                predicates.append(TablePredicate(table, column, PredicateOp.GE, anchor))
        return predicates

    def generate_count_tests(
        self, table: str, count: int | None = None
    ) -> list[CardQuery]:
        """Multi-predicate single-table COUNT test queries for one table.

        ``count`` overrides ``config.monitor_queries_per_table`` -- the
        feedback-evidence path generates only the synthetic remainder.
        """
        if count is None:
            count = self.config.monitor_queries_per_table
        queries = []
        for index in range(count):
            num_predicates = int(self._rng.integers(1, 4))
            predicates = self._random_predicates(table, num_predicates)
            if not predicates:
                continue
            queries.append(
                CardQuery(
                    tables=(table,),
                    predicates=tuple(predicates),
                    name=f"monitor-{table}-{index:02d}",
                )
            )
        return queries

    def generate_ndv_tests(self, table: str, column: str) -> list[CardQuery]:
        """Filtered COUNT-DISTINCT test queries for one column."""
        queries = []
        for index in range(self.config.monitor_queries_per_table // 2):
            predicates = self._random_predicates(
                table, int(self._rng.integers(0, 3)), exclude=column
            )
            queries.append(
                CardQuery(
                    tables=(table,),
                    predicates=tuple(predicates),
                    agg=AggSpec(AggKind.COUNT_DISTINCT, table, column),
                    name=f"monitor-ndv-{table}-{column}-{index:02d}",
                )
            )
        return queries

    # ------------------------------------------------------------------
    # Assessments
    # ------------------------------------------------------------------
    def _consume_feedback_evidence(self, report: MonitorReport, budget: int) -> int:
        """Fold up to ``budget`` runtime feedback pairs into the report.

        Returns how many were used.  Consumed records are *removed* from
        the log: evidence against a model must not be replayed against its
        retrained successor.
        """
        if self.feedback is None or budget <= 0:
            return 0
        records = self.feedback.take_for_table(report.name, limit=budget)
        for record in records:
            q = record.qerror
            report.feedback_qerrors.append(q)
            report.qerrors.append(q)
        if records and self.metrics.enabled:
            self.metrics.counter(
                "monitor_feedback_evidence_total", model=report.name
            ).inc(len(records))
        return len(records)

    def _gate(self, report: MonitorReport, threshold: float) -> None:
        p90 = report.p90
        # p90 is None when untested *or* when every q-error was non-finite
        # (hand-built reports): both mean "not vetted", never "passing".
        report.passed = None if p90 is None else bool(p90 <= threshold)

    def _finite_estimate(self, estimate: float, model: str) -> bool:
        if math.isfinite(estimate):
            return True
        if self.metrics.enabled:
            self.metrics.counter(
                "monitor_nonfinite_estimates_total", model=model
            ).inc()
        return False

    def assess_count_model(
        self, table: str, estimator: CountEstimator, strategy: str | None = None
    ) -> MonitorReport:
        """Q-Error-gate one table's single-table COUNT model.

        With feedback attached, up to ``config.monitor_feedback_share`` of
        the evidence budget comes from observed runtime pairs -- free drift
        evidence replacing that many synthetic test queries.  ``strategy``
        attributes the assessment to one estimation strategy's cache scope,
        feeding the per-strategy drift series the router consumes.
        """
        report = MonitorReport(name=table, strategy=strategy or "")
        total = self.config.monitor_queries_per_table
        budget = int(round(total * self.config.monitor_feedback_share))
        used = self._consume_feedback_evidence(report, budget)
        for query in self.generate_count_tests(table, count=total - used):
            truth = true_count(self.bundle.catalog, query)
            estimate = estimator.estimate_count(query)
            if not self._finite_estimate(estimate, table):
                continue
            report.qerrors.append(qerror(estimate, truth))
        if used:
            report.source = "feedback" if used == len(report.qerrors) else "mixed"
        self._gate(report, self.config.qerror_gate)
        self._record_assessment(report, kind="count")
        return report

    def assess_from_feedback(self, table: str) -> MonitorReport | None:
        """Assess one table's COUNT model purely from runtime feedback.

        Zero synthetic test queries and zero estimator calls: the evidence
        is the (estimated, actual) pairs the executor captured.  Returns
        ``None`` when no feedback log is attached or it holds no
        single-table records for ``table`` -- *no evidence* is not the same
        as *untested-and-failing*.  Consumes the records it uses.
        """
        if self.feedback is None:
            return None
        records = self.feedback.take_for_table(table)
        if not records:
            return None
        report = MonitorReport(name=table, source="feedback")
        for record in records:
            q = record.qerror
            report.feedback_qerrors.append(q)
            report.qerrors.append(q)
        if self.metrics.enabled:
            self.metrics.counter(
                "monitor_feedback_evidence_total", model=table
            ).inc(len(records))
        self._gate(report, self.config.qerror_gate)
        self._record_assessment(report, kind="count")
        return report

    def assess_ndv_column(
        self, table: str, column: str, estimator: NdvEstimator
    ) -> MonitorReport:
        """Q-Error-check RBX on one column; flags fine-tune candidates."""
        report = MonitorReport(name=f"{table}.{column}")
        for query in self.generate_ndv_tests(table, column):
            truth = true_ndv(self.bundle.catalog, query)
            if truth == 0:
                continue
            estimate = estimator.estimate_ndv(query)
            if not self._finite_estimate(estimate, report.name):
                continue
            report.qerrors.append(qerror(estimate, truth))
        self._gate(report, self.config.ndv_finetune_trigger)
        self._record_assessment(report, kind="ndv")
        return report

    def _record_assessment(self, report: MonitorReport, kind: str) -> None:
        """One drift point per assessment: the model's p90 Q-Error."""
        p90 = report.p90
        if p90 is not None:
            self.drift.setdefault(report.name, []).append(p90)
            if report.strategy:
                self.strategy_drift.setdefault(
                    (report.strategy, report.name), []
                ).append(p90)
        if self.metrics.enabled:
            self.metrics.counter(
                "monitor_assessments_total", kind=kind
            ).inc()
            if report.passed is False:
                self.metrics.counter("monitor_failures_total", kind=kind).inc()
            if p90 is not None:
                self.metrics.series(
                    "monitor_qerror_p90", model=report.name, kind=kind
                ).append(p90)
                if report.strategy:
                    self.metrics.series(
                        "strategy_qerror_p90",
                        strategy=report.strategy,
                        model=report.name,
                    ).append(p90)
        for listener in self._listeners:
            listener(report, kind)

    # ------------------------------------------------------------------
    # Fine-tune corpus collection
    # ------------------------------------------------------------------
    def collect_column_samples(
        self,
        table: str,
        column: str,
        rates: tuple[float, ...] = (0.01, 0.03, 0.1),
        repeats: int = 4,
    ) -> list[tuple[FrequencyProfile, int]]:
        """(frequency profile, true NDV) pairs for calibration fine-tuning.

        Profiles are drawn at several sampling rates so the tuned model
        stays robust across the rates it will see in production.
        """
        catalog_table = self.bundle.catalog.table(table)
        values = catalog_table.column(column).values
        truth = int(np.unique(values).size)
        samples: list[tuple[FrequencyProfile, int]] = []
        for rate in rates:
            for _ in range(repeats):
                take = max(1, int(len(values) * rate))
                picked = values[
                    self._rng.choice(len(values), size=take, replace=False)
                ]
                samples.append(
                    (frequency_profile(picked, population_size=len(values)), truth)
                )
        return samples
