"""The Model Validator: size checker and health detector.

Validation runs after a model is loaded into memory and before it is
installed for inference -- "crucial for preventing potential crashes during
actual inference" (paper Section 4.2.1).  Two checks:

* the **size checker** refuses any single blob above the per-model cap
  (the total-budget LRU lives in the loader, which owns the set of loaded
  models);
* the **health detector** verifies structural legitimacy: for Bayesian
  networks, that the parent structure is a DAG (cyclic-structure
  detection), that CPDs are row-stochastic and non-negative, and that
  discretizers line up with CPD shapes; for RBX, that the weight chain is
  dimensionally consistent and finite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.estimators.bn.model import TreeBayesNet
from repro.estimators.rbx.network import MLP


@dataclass
class ValidationReport:
    """Outcome of validating one model."""

    ok: bool
    problems: list[str] = field(default_factory=list)

    @classmethod
    def failure(cls, *problems: str) -> "ValidationReport":
        return cls(ok=False, problems=list(problems))

    @classmethod
    def success(cls) -> "ValidationReport":
        return cls(ok=True)


class ModelValidator:
    """Stateless validation logic shared by the loader and tests."""

    def __init__(self, max_model_bytes: int):
        self.max_model_bytes = max_model_bytes

    # ------------------------------------------------------------------
    def check_size(self, blob: bytes) -> ValidationReport:
        if len(blob) > self.max_model_bytes:
            return ValidationReport.failure(
                f"model blob of {len(blob)} bytes exceeds the per-model cap "
                f"of {self.max_model_bytes}"
            )
        return ValidationReport.success()

    # ------------------------------------------------------------------
    def check_bn_health(self, model: TreeBayesNet) -> ValidationReport:
        problems: list[str] = []
        parents = model.parents
        d = parents.size
        roots = int(np.sum(parents < 0))
        if roots != 1:
            problems.append(f"structure has {roots} roots (expected exactly 1)")
        # Cyclic detection: follow parent pointers from every node; a walk
        # longer than d nodes means a cycle.
        for start in range(d):
            node = start
            steps = 0
            while node >= 0:
                node = int(parents[node]) if parents[node] < d else -2
                steps += 1
                if steps > d:
                    problems.append(
                        f"cyclic parent structure detected from node {start}"
                    )
                    break
            if problems and "cyclic" in problems[-1]:
                break
        if len(model.cpds) != d:
            problems.append(f"{d} nodes but {len(model.cpds)} CPDs")
        for i, cpd in enumerate(model.cpds):
            if not np.all(np.isfinite(cpd)) or np.any(cpd < 0):
                problems.append(f"CPD {i} has negative or non-finite entries")
                continue
            sums = cpd.sum(axis=-1)
            if not np.allclose(sums, 1.0, atol=1e-6):
                problems.append(f"CPD {i} rows do not sum to 1")
        for i, column in enumerate(model.columns):
            disc = model.discretizers.get(column)
            if disc is None:
                problems.append(f"no discretizer for column {column!r}")
                continue
            if i < len(model.cpds) and model.cpds[i].shape[-1] != disc.num_bins:
                problems.append(
                    f"CPD {i} width {model.cpds[i].shape[-1]} does not match "
                    f"{column!r}'s {disc.num_bins} bins"
                )
        if problems:
            return ValidationReport(ok=False, problems=problems)
        return ValidationReport.success()

    # ------------------------------------------------------------------
    def check_rbx_health(self, model: MLP, expected_input: int) -> ValidationReport:
        problems: list[str] = []
        if model.weights[0].shape[0] != expected_input:
            problems.append(
                f"input width {model.weights[0].shape[0]} does not match the "
                f"featurizer's {expected_input}"
            )
        for i in range(model.num_layers - 1):
            if model.weights[i].shape[1] != model.weights[i + 1].shape[0]:
                problems.append(f"layer {i} -> {i + 1} dimension mismatch")
        if model.weights[-1].shape[1] != 1:
            problems.append("output layer must have width 1")
        for i, (w, b) in enumerate(zip(model.weights, model.biases)):
            if not (np.all(np.isfinite(w)) and np.all(np.isfinite(b))):
                problems.append(f"layer {i} has non-finite parameters")
        if problems:
            return ValidationReport(ok=False, problems=problems)
        return ValidationReport.success()
