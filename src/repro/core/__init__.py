"""The ByteCard framework (the paper's Figure 2 architecture).

Modules map one-to-one onto the paper's components:

* :mod:`repro.core.engine`       -- the ``CardEstInferenceEngine`` abstraction
  (``loadModel`` / ``validate`` / ``initContext`` / ``featurizeSQLQuery`` /
  ``featurizeAST`` / ``estimate``) and its per-model implementations;
* :mod:`repro.core.modelforge`   -- the standalone ModelForge Service:
  isolated training, ingestion signals, shard training, RBX fine-tuning;
* :mod:`repro.core.loader`       -- the Model Loader: timestamp-based
  refresh, per-model size refusal, LRU eviction under a total budget;
* :mod:`repro.core.validator`    -- the Model Validator: size checker and
  health detector (DAG check for BNs, weight sanity for RBX);
* :mod:`repro.core.monitor`      -- the Model Monitor: auto-generated test
  queries, Q-Error gating with traditional fallback, fine-tune triggering;
* :mod:`repro.core.preprocessor` -- the Model Preprocessor: column
  selection, ML type mapping, join-pattern collection, join buckets;
* :mod:`repro.core.registry`     -- the cloud model store, simulated;
* :mod:`repro.core.bytecard`     -- the facade wiring everything together
  into an estimator suite the engine can use.

The asynchronous side of the lifecycle -- background training jobs, the
persistent versioned artifact store, and drift-triggered retraining --
lives in :mod:`repro.forge` and attaches via ``ByteCard.forge()`` /
``ByteCard.from_store()``.
"""

from repro.core.config import ByteCardConfig
from repro.core.registry import ModelRegistry, ModelRecord
from repro.core.engine import (
    CardEstInferenceEngine,
    BNInferenceEngine,
    RBXInferenceEngine,
)
from repro.core.validator import ModelValidator, ValidationReport
from repro.core.loader import ModelLoader
from repro.core.monitor import ModelMonitor, MonitorReport
from repro.core.preprocessor import ModelPreprocessor, PreprocessorInfo
from repro.core.modelforge import ModelForgeService
from repro.core.bytecard import ByteCard

__all__ = [
    "ByteCardConfig",
    "ModelRegistry",
    "ModelRecord",
    "CardEstInferenceEngine",
    "BNInferenceEngine",
    "RBXInferenceEngine",
    "ModelValidator",
    "ValidationReport",
    "ModelLoader",
    "ModelMonitor",
    "MonitorReport",
    "ModelPreprocessor",
    "PreprocessorInfo",
    "ModelForgeService",
    "ByteCard",
]
