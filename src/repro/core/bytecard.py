"""The ByteCard facade: the full framework wired together.

:meth:`ByteCard.build` runs the production bootstrap end to end --
preprocess, train in ModelForge, publish to the registry, load through the
Model Loader (size + health validation), assemble the serving estimators,
and run the Model Monitor to establish fallback decisions.  The resulting
object is a :class:`CountEstimator` *and* :class:`NdvEstimator` with the
paper's fallback semantics: queries touching a gated table are served by
the traditional estimator instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ByteCardConfig
from repro.core.engine import BNInferenceEngine, RBXInferenceEngine
from repro.core.loader import ModelLoader
from repro.core.modelforge import ModelForgeService
from repro.core.monitor import ModelMonitor, MonitorReport
from repro.core.preprocessor import ModelPreprocessor
from repro.core.registry import ModelRegistry
from repro.core.serialization import deserialize_rbx
from repro.core.validator import ModelValidator
from repro.datasets.base import DatasetBundle
from repro.engine.session import EstimatorSuite
from repro.errors import EstimationError, ModelError
from repro.estimators.base import CountEstimator, NdvEstimator
from repro.estimators.bn.kernels import EvidenceCache
from repro.estimators.bn.model import TreeBayesNet
from repro.estimators.factorjoin.estimator import FactorJoinEstimator
from repro.estimators.rbx.estimator import RBXNdvEstimator
from repro.estimators.traditional.hyperloglog import SketchNdvEstimator
from repro.estimators.traditional.selinger import SelingerEstimator
from repro.obs.metrics import MetricsRegistry
from repro.sql.query import AggKind, CardQuery


@dataclass
class ByteCardStatus:
    """Introspection snapshot for examples and tests."""

    loaded_models: list[tuple[str, str]] = field(default_factory=list)
    fallback_tables: set[str] = field(default_factory=set)
    calibrated_columns: list[tuple[str, str]] = field(default_factory=list)
    monitor_reports: list[MonitorReport] = field(default_factory=list)


class ByteCard(CountEstimator, NdvEstimator):
    """The deployed framework, serving COUNT and NDV estimates."""

    name = "bytecard"

    def __init__(
        self,
        bundle: DatasetBundle,
        config: ByteCardConfig | None = None,
        registry: ModelRegistry | None = None,
    ):
        self.bundle = bundle
        self.catalog = bundle.catalog
        self.config = config or ByteCardConfig()
        self.registry = registry or ModelRegistry()
        self.obs = MetricsRegistry(enabled=self.config.enable_observability)
        self.validator = ModelValidator(self.config.max_model_bytes)
        self.forge_service = ModelForgeService(self.registry, self.config)
        self.monitor = ModelMonitor(bundle, self.config, metrics=self.obs)
        self.preprocessor = ModelPreprocessor(
            self.catalog, self.config.join_bucket_count
        )
        # Traditional estimators kept warm for fallback.
        self._traditional_count = SelingerEstimator(self.catalog)
        self._traditional_ndv = SketchNdvEstimator(self.catalog)
        # Serving state, assembled by refresh().
        self._factorjoin: FactorJoinEstimator | None = None
        self._rbx: RBXNdvEstimator | None = None
        # Cross-query shared-belief plan cache; installed by the serving
        # tier, re-threaded into every FactorJoin rebuild by refresh().
        self._plan_cache = None
        # Compiled predicate -> bin-mask vectors feeding the BN inference
        # kernels; owned here so it survives refresh() rebuilds, with
        # staleness handled by per-table generations (bumped below when the
        # loader swaps a table's BN).
        self._evidence_cache = EvidenceCache(registry=self.obs)
        #: runtime feedback ring (:meth:`enable_feedback`): observed
        #: (estimate, actual) pairs from the execution path, consumed by the
        #: monitor and ranked on by the forge's retrain priorities
        self.feedback_log = None
        self.fallback_tables: set[str] = set()
        self.monitor_reports: list[MonitorReport] = []
        #: named strategy registry (:meth:`strategies`), built lazily
        self._strategies = None
        self._rbx_samples = {
            name: self.catalog.table(name).sample(
                min(self.config.rbx_sample_rows, len(self.catalog.table(name))),
                _sample_rng(bundle.seed, name),
            )
            for name in self.catalog.table_names()
        }
        self.loader = ModelLoader(
            self.registry,
            self.validator,
            engine_factory=self._make_engine,
            max_total_bytes=self.config.max_total_bytes,
            metrics=self.obs,
        )
        self.loader.add_refresh_listener(self._invalidate_evidence)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        bundle: DatasetBundle,
        config: ByteCardConfig | None = None,
        registry: ModelRegistry | None = None,
        run_monitor: bool = True,
    ) -> "ByteCard":
        """Train, publish, load, assemble, and (optionally) monitor."""
        bytecard = cls(bundle, config=config, registry=registry)
        bytecard.forge_service.train_count_models(bundle)
        bytecard.forge_service.train_rbx_universal()
        bytecard.refresh()
        if run_monitor:
            bytecard.run_monitor()
        return bytecard

    @classmethod
    def from_store(
        cls,
        bundle: DatasetBundle,
        store_dir,
        config: ByteCardConfig | None = None,
        run_monitor: bool = False,
    ) -> "ByteCard":
        """Warm-start from a persistent artifact store: **zero training**.

        Every current artifact in the store is republished into a fresh
        registry and loaded through the normal validation path; the
        instance serves estimates immediately.  Raises
        :class:`~repro.errors.ModelError` when the store holds nothing
        (nothing to serve from).
        """
        from repro.forge.manager import raise_if_incomplete
        from repro.forge.store import ArtifactStore

        bytecard = cls(bundle, config=config)
        store = ArtifactStore(store_dir, metrics=bytecard.obs)
        raise_if_incomplete(store)
        store.sync_registry(bytecard.registry)
        bytecard.refresh()
        if run_monitor:
            bytecard.run_monitor()
        return bytecard

    def forge(self, store_dir, forge_config=None, clock=None) -> "object":
        """An asynchronous lifecycle manager bound to this instance.

        Returns a :class:`repro.forge.ForgeManager`: background training
        workers, a persistent versioned artifact store at ``store_dir``,
        and a drift-triggered retrain loop subscribed to this instance's
        Model Monitor.  Current models are persisted on creation (unless
        the config says otherwise), so :meth:`from_store` can warm-start a
        future process from the same directory.  ``clock`` (see
        :class:`repro.utils.clock.Clock`) puts the training scheduler on an
        injected time source -- the streaming soak runs it on simulated
        time.
        """
        from repro.forge import ArtifactStore, ForgeConfig, ForgeManager

        forge_config = forge_config or ForgeConfig()
        store = ArtifactStore(
            store_dir, retention=forge_config.retention, metrics=self.obs
        )
        return ForgeManager(self, store, forge_config, clock=clock)

    def _make_engine(self, kind: str, name: str):
        if kind == "bn":
            return BNInferenceEngine(self.catalog, self.validator)
        if kind == "rbx":
            return RBXInferenceEngine(
                self.catalog, self.validator, self._rbx_samples
            )
        raise ModelError(f"no inference engine for model kind {kind!r}")

    def _invalidate_evidence(self, report) -> None:
        """Drop compiled evidence vectors of tables whose BN changed.

        Evidence bin-masks depend only on the BN discretizers, so only
        ``bn`` swaps bump; shard models ("table@shardN") serve their base
        table, exactly like the serving tier's estimate/plan caches.
        """
        tables = {
            name.split("@", 1)[0]
            for kind, name in report.changed_keys()
            if kind == "bn"
        }
        if tables:
            self._evidence_cache.bump_tables(tables)

    def refresh(self) -> None:
        """One Model Loader pass, then reassemble the serving estimators."""
        self.loader.refresh()
        models: dict[str, TreeBayesNet] = {}
        for kind, name in self.loader.loaded_keys():
            if kind != "bn" or "@shard" in name:
                continue
            engine = self.loader.get(kind, name)
            assert isinstance(engine, BNInferenceEngine)
            if engine.model is not None:
                models[name] = engine.model
        if models:
            # Assemble on the grid the models were *trained* with; the
            # live catalog may have mutated since (streaming ingestion)
            # and a rebuilt grid would misalign with the published BNs.
            bucketizer = self.forge_service.training_bucketizer()
            if bucketizer is None:
                bucketizer = self.preprocessor.build_join_buckets()
            self._factorjoin = FactorJoinEstimator(
                self.catalog,
                models,
                bucketizer,
                metrics=self.obs,
                plan_cache=self._plan_cache,
                evidence_cache=self._evidence_cache,
            )
        universal = self.loader.get("rbx", "universal")
        if isinstance(universal, RBXInferenceEngine) and universal.network is not None:
            rbx = RBXNdvEstimator.__new__(RBXNdvEstimator)
            rbx.catalog = self.catalog
            rbx.model = universal.network
            rbx.calibrated = {}
            rbx._samples = self._rbx_samples
            self._rbx = rbx
            # Install any published per-column calibrated weights.
            for kind, name in self.loader.loaded_keys():
                if kind == "rbx" and name != "universal" and "." in name:
                    engine = self.loader.get(kind, name)
                    assert isinstance(engine, RBXInferenceEngine)
                    if engine.network is not None:
                        table, column = name.split(".", 1)
                        rbx.install_calibrated(table, column, engine.network)

    # ------------------------------------------------------------------
    # Monitoring and calibration
    # ------------------------------------------------------------------
    def run_monitor(self, fine_tune: bool = True) -> list[MonitorReport]:
        """Gate COUNT models; detect and calibrate problematic NDV columns."""
        reports: list[MonitorReport] = []
        if self._factorjoin is not None:
            for table in sorted(self._factorjoin.models):
                report = self.reassess_table(table)
                assert report is not None  # the table has a model
                reports.append(report)
        if self._rbx is not None:
            for table, column in self.bundle.high_ndv_columns:
                report = self.monitor.assess_ndv_column(table, column, self._rbx)
                reports.append(report)
                # Only a *failed* assessment triggers calibration; an
                # untested column has nothing to fine-tune against.
                if report.passed is False and fine_tune:
                    self._calibrate_column(table, column)
        self.monitor_reports = reports
        return reports

    def reassess_table(self, table: str) -> MonitorReport | None:
        """Gate one table's COUNT model and update its fallback state.

        The forge's post-retrain revalidation hook: a passing assessment
        lifts the table's traditional-estimator fallback, a failing *or
        untested* one (re)imposes it.  Returns ``None`` when no learned
        model serves the table.
        """
        if self._factorjoin is None or table not in self._factorjoin.models:
            return None
        report = self.monitor.assess_count_model(
            table, self._factorjoin, strategy="learned"
        )
        if report.passed:
            self.fallback_tables.discard(table)
        else:
            # Failed *or* untested (passed is None): an unassessed model
            # must not serve as if it had been vetted.
            self.fallback_tables.add(table)
        return report

    def enable_feedback(self, capacity: int = 4096):
        """Create (or return) the runtime cardinality feedback log.

        The returned :class:`repro.feedback.FeedbackLog` is attached to the
        Model Monitor (so COUNT assessments consume observed evidence in
        place of a share of their synthetic test queries) and handed to any
        service created by :meth:`serve` afterwards.  Wire it into an
        :class:`~repro.engine.session.EngineSession` with
        ``EngineConfig(enable_feedback=True)`` -- the session inherits it
        through the service or this facade automatically.
        """
        if self.feedback_log is None:
            from repro.feedback import FeedbackLog

            self.feedback_log = FeedbackLog(capacity=capacity, registry=self.obs)
            self.monitor.attach_feedback(self.feedback_log)
        return self.feedback_log

    def reassess_from_feedback(self, table: str) -> MonitorReport | None:
        """Gate one table's COUNT model on runtime feedback alone.

        Unlike :meth:`reassess_table` this issues **zero** synthetic test
        queries: the verdict comes entirely from observed (estimate, actual)
        pairs the executor captured.  Returns ``None`` when no feedback log
        is attached or it holds no evidence for ``table``; fallback state is
        updated only on a definitive verdict.
        """
        report = self.monitor.assess_from_feedback(table)
        if report is None:
            return None
        if report.passed:
            self.fallback_tables.discard(table)
        elif report.passed is False:
            self.fallback_tables.add(table)
        self.monitor_reports.append(report)
        return report

    def monitor_and_heal(self, max_cycles: int = 2) -> list[MonitorReport]:
        """The self-healing loop around a data-distribution shift.

        The paper's lifecycle when the Model Monitor "detects that the
        performance of models is decreased due to the shift of data
        distribution": the affected table falls back to the traditional
        estimator immediately, an ingestion-style signal marks it dirty,
        ModelForge retrains it on (fresh samples of) the current data, the
        Model Loader picks up the newer timestamp, and the monitor
        re-assesses -- lifting the fallback once the retrained model passes.
        """
        from repro.core.modelforge import IngestionSignal

        reports = self.run_monitor(fine_tune=False)
        for _cycle in range(max_cycles):
            failing = sorted(self.fallback_tables)
            if not failing:
                break
            for table in failing:
                self.forge_service.ingest_signal(
                    IngestionSignal(table=table, source="monitor-drift")
                )
            self.forge_service.run_training_cycle(self.bundle)
            self.refresh()
            reports = self.run_monitor(fine_tune=False)
        self.monitor_reports = reports
        return reports

    def _calibrate_column(self, table: str, column: str) -> None:
        """The calibration protocol: fine-tune, validate, install."""
        assert self._rbx is not None
        samples = self.monitor.collect_column_samples(table, column)
        self.forge_service.fine_tune_column(self._rbx.model, table, column, samples)
        record = self.registry.latest("rbx", f"{table}.{column}")
        assert record is not None
        tuned, _meta = deserialize_rbx(record.blob)
        # Validate before installing (the paper: "only integrates a RBX
        # model ... once the Monitor has validated the new parameters").
        probe = self._rbx.calibrated.get((table, column))
        self._rbx.install_calibrated(table, column, tuned)
        recheck = self.monitor.assess_ndv_column(table, column, self._rbx)
        if (
            recheck.passed is False
            and recheck.p90 is not None
            and recheck.p90 >= self.config.ndv_finetune_trigger
        ):
            # Tuning did not help enough; keep it only if it improved.
            baseline = self.monitor.assess_ndv_column(
                table,
                column,
                _WithoutCalibration(self._rbx, table, column),
            )
            if baseline.p90 is not None and baseline.p90 <= recheck.p90:
                if probe is None:
                    del self._rbx.calibrated[(table, column)]
                else:
                    self._rbx.calibrated[(table, column)] = probe

    # ------------------------------------------------------------------
    # Serving (CountEstimator / NdvEstimator)
    # ------------------------------------------------------------------
    def _needs_fallback(self, query: CardQuery) -> bool:
        return any(t in self.fallback_tables for t in query.tables)

    def estimate_count(self, query: CardQuery) -> float:
        if self._factorjoin is None:
            return self._traditional_count.estimate_count(query)
        if self._needs_fallback(query):
            return self._traditional_count.estimate_count(query)
        missing = [t for t in query.tables if t not in self._factorjoin.models]
        if missing:
            return self._traditional_count.estimate_count(query)
        return self._factorjoin.estimate_count(query)

    #: join COUNT batches route through FactorJoin's shared-plan path
    supports_join_batching = True

    def install_plan_cache(self, cache) -> None:
        """Install the serving tier's cross-query plan-artifact cache.

        Kept on the facade (not just the current FactorJoin instance)
        because :meth:`refresh` rebuilds the estimator: the cache must
        survive model swaps, with staleness handled by its generations.
        """
        self._plan_cache = cache
        if self._factorjoin is not None:
            self._factorjoin.install_plan_cache(cache)

    def install_evidence_cache(self, cache: EvidenceCache) -> None:
        """Replace the compiled predicate-evidence cache (tests, tuning).

        Mirrors :meth:`install_plan_cache`: the cache lives on the facade
        so it survives :meth:`refresh` rebuilds, and the loader listener
        keeps bumping the new instance's table generations.
        """
        self._evidence_cache = cache
        if self._factorjoin is not None:
            self._factorjoin.install_evidence_cache(cache)

    @property
    def evidence_cache(self) -> EvidenceCache:
        return self._evidence_cache

    @property
    def last_pass_stats(self):
        """Pass accounting of this thread's last join estimate (or None)."""
        if self._factorjoin is None:
            return None
        return self._factorjoin.last_pass_stats

    def estimate_count_batch(
        self, table: str, queries: list[CardQuery]
    ) -> list[float]:
        """Batched COUNT estimates (the micro-batcher's hook).

        ``table`` is the micro-batch key: a table name for single-table
        batches, the batcher's synthetic join key otherwise.  Any query
        touching a gated or unmodeled table sends the whole batch to the
        traditional estimator, mirroring :meth:`estimate_count`.
        """
        if self._factorjoin is None:
            return [self._traditional_count.estimate_count(q) for q in queries]
        tables: set[str] = set()
        for query in queries:
            tables.update(query.tables)
        if any(
            t in self.fallback_tables or t not in self._factorjoin.models
            for t in tables
        ):
            return [self._traditional_count.estimate_count(q) for q in queries]
        if any(not query.is_single_table() for query in queries):
            return self._factorjoin.estimate_join_batch(queries)
        return self._factorjoin.estimate_count_batch(table, queries)

    def selectivity(self, query: CardQuery) -> float:
        if (
            self._factorjoin is None
            or self._needs_fallback(query)
            or query.tables[0] not in self._factorjoin.models
        ):
            return self._traditional_count.selectivity(query)
        return self._factorjoin.selectivity(query)

    def shard_selectivity(
        self, table: str, shard: int, query: CardQuery
    ) -> float | None:
        """Selectivity from the shard-specialized BN, or None if unavailable.

        The optimizer's partition planner calls this when zone-map pruning
        pins a partition of a table partitioned by the shard key: partition
        index ``shard`` corresponds to the ``{table}@shard{shard}`` model
        ModelForge's ``train_sharded`` publishes (hash-mod shard function).
        Whole-table FactorJoin assembly deliberately skips these models;
        they are addressable only through this per-shard route.

        Predicates on columns the shard BN does not model -- notably the
        shard key itself -- are dropped before inference: within a pinned
        partition the key predicate's effect is already captured by the
        pruning that pinned it.
        """
        engine = self.loader.get("bn", f"{table}@shard{shard}")
        model = getattr(engine, "model", None)
        if model is None:
            return None
        modeled = getattr(model, "columns", ())
        predicates = [
            p
            for p in query.predicates
            if p.table == table and p.column in modeled
        ]
        if not predicates:
            return None
        try:
            return float(model.selectivity(predicates))
        except EstimationError:
            return None

    def estimate_ndv(self, query: CardQuery) -> float:
        if query.agg.kind is not AggKind.COUNT_DISTINCT:
            raise EstimationError("estimate_ndv requires COUNT DISTINCT")
        if self._rbx is None or self._needs_fallback(query):
            return self._traditional_ndv.estimate_ndv(query)
        return self._rbx.estimate_ndv(query)

    def group_ndv(self, query: CardQuery) -> float:
        if self._rbx is None:
            raise EstimationError("RBX model not loaded")
        return self._rbx.group_ndv(query)

    def estimation_overhead(self, query: CardQuery) -> float:
        if self._factorjoin is not None and not self._needs_fallback(query):
            return self._factorjoin.estimation_overhead(query)
        return self._traditional_count.estimation_overhead(query)

    # ------------------------------------------------------------------
    def as_suite(self) -> EstimatorSuite:
        """Expose ByteCard as an engine estimator suite."""
        return EstimatorSuite("bytecard", count_estimator=self, ndv_estimator=self)

    def strategies(self) -> dict:
        """The named :class:`EstimationStrategy` instances this deployment
        can route between.

        * ``learned`` -- this facade (BN/FactorJoin/RBX with the monitor's
          fallback semantics);
        * ``traditional`` -- the Selinger/histogram estimator alone;
        * ``upper_bound`` -- the UES-style never-underestimate bound built
          from this catalog's zone-map statistics.

        Built lazily and cached: strategies are stateless views over the
        live estimators, so :meth:`refresh` model swaps flow through.
        """
        if self._strategies is None:
            from repro.estimators.strategy import (
                LearnedStrategy,
                TraditionalStrategy,
                UpperBoundStrategy,
            )

            self._strategies = {
                "learned": LearnedStrategy(self),
                "traditional": TraditionalStrategy(self._traditional_count),
                "upper_bound": UpperBoundStrategy(self.catalog),
            }
        return dict(self._strategies)

    def strategy_router(
        self,
        rules=(),
        default_chain=("learned", "traditional"),
        risk_tag=None,
        derate_mass=None,
    ):
        """A :class:`~repro.estimators.strategy.StrategyRouter` over
        :meth:`strategies`, wired into this instance's observability
        registry and (when :meth:`enable_feedback` has run) its runtime
        feedback log -- so observed per-strategy error mass can derate a
        misbehaving route.
        """
        from repro.estimators.strategy import StrategyRouter

        return StrategyRouter(
            self.strategies(),
            rules=rules,
            default_chain=default_chain,
            registry=self.obs,
            feedback=self.feedback_log,
            derate_mass=derate_mass,
            default_risk_tag=risk_tag,
        )

    @staticmethod
    def _batching_config(config, max_batch_size, batch_wait_ms):
        """Apply micro-batch knob overrides to a (possibly None) config.

        Defaults (see :class:`repro.serving.ServingConfig`): batches of up
        to 16 queries flushed after at most 1.0 ms -- the batch >= 16
        regime where the fused BN kernels reach their measured speedups.
        """
        if max_batch_size is None and batch_wait_ms is None:
            return config
        import dataclasses

        from repro.serving import ServingConfig

        if config is None:
            config = ServingConfig()
        overrides = {}
        if max_batch_size is not None:
            overrides["max_batch_size"] = max_batch_size
        if batch_wait_ms is not None:
            overrides["batch_wait_ms"] = batch_wait_ms
        return dataclasses.replace(config, **overrides)

    def fleet(
        self,
        n_workers: int = 2,
        store_dir=None,
        serving_config=None,
        fleet_config=None,
        max_batch_size: int | None = None,
        batch_wait_ms: float | None = None,
    ):
        """A multi-process serving fleet warm-started from this instance.

        Persists the current registry contents into a crash-safe
        :class:`~repro.forge.store.ArtifactStore` at ``store_dir`` (a
        temporary directory when omitted), then spawns ``n_workers``
        estimator processes that each warm-start from it with **zero
        training** -- each running the same
        :class:`~repro.serving.core.EstimationCore` pipeline as
        :meth:`serve`, behind a :class:`~repro.fleet.FleetRouter` that
        shards requests by table scope, hedges around stalled workers, and
        restarts dead ones.  The workers mirror this instance's current
        monitor verdicts (``fallback_tables``), so routed estimates match
        in-process serving bit for bit.

        ``fleet_config`` overrides ``n_workers`` when provided.  Close the
        router (it is a context manager) to reap the worker processes.

        ``max_batch_size`` / ``batch_wait_ms`` override the workers'
        micro-batch sizing (defaults 16 queries / 1.0 ms) without building
        a full :class:`~repro.serving.ServingConfig` by hand.
        """
        import tempfile

        from repro.fleet import FleetConfig, FleetRouter
        from repro.forge.store import ArtifactStore

        serving_config = self._batching_config(
            serving_config, max_batch_size, batch_wait_ms
        )
        if store_dir is None:
            store_dir = tempfile.mkdtemp(prefix="bytecard-fleet-")
        store = ArtifactStore(store_dir, metrics=self.obs)
        store.persist_registry(self.registry)
        if fleet_config is None:
            fleet_config = FleetConfig(n_workers=n_workers)
        return FleetRouter(
            bundle=self.bundle,
            store_dir=store_dir,
            fallback_count=self._traditional_count,
            fallback_ndv=self._traditional_ndv,
            bytecard_config=self.config,
            serving_config=serving_config,
            fleet_config=fleet_config,
            fallback_tables=tuple(sorted(self.fallback_tables)),
            registry=self.obs,
        )

    def serve(
        self,
        config=None,
        feedback=None,
        max_batch_size: int | None = None,
        batch_wait_ms: float | None = None,
    ):
        """Wrap this ByteCard in a concurrent :class:`EstimationService`.

        The service keeps the traditional estimators as its deadline/error
        fallbacks and subscribes to this instance's Model Loader, so a
        ``refresh()`` that swaps models invalidates the affected cached
        estimates.  ``config`` is a :class:`repro.serving.ServingConfig`.
        ``feedback`` defaults to this instance's :attr:`feedback_log` (see
        :meth:`enable_feedback`): served estimates -- cache hits included --
        are then noted as pending pairs for the executor to complete.

        ``max_batch_size`` / ``batch_wait_ms`` override the micro-batcher's
        sizing knobs (defaults 16 queries / 1.0 ms flush) on top of
        whatever ``config`` carries -- larger batches feed the fused BN
        kernels wider evidence tensors at the cost of flush latency.
        """
        from repro.serving import EstimationService

        config = self._batching_config(config, max_batch_size, batch_wait_ms)
        return EstimationService(
            estimator=self,
            fallback_count=self._traditional_count,
            fallback_ndv=self._traditional_ndv,
            config=config,
            loader=self.loader,
            registry=self.obs,
            feedback=feedback if feedback is not None else self.feedback_log,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsRegistry:
        """The framework-wide observability registry.

        Every component wired through this ByteCard (Model Loader, Model
        Monitor, any service from :meth:`serve`, any
        :class:`~repro.engine.session.EngineSession` built on it) records
        here; export with :func:`repro.obs.export_text` /
        :func:`repro.obs.export_json`.
        """
        return self.obs

    def metrics_text(self) -> str:
        """Prometheus-style text export of :meth:`metrics`."""
        from repro.obs import export_text

        return export_text(self.obs)

    def metrics_json(self) -> dict:
        """Structured JSON export of :meth:`metrics`."""
        from repro.obs import export_json

        return export_json(self.obs)

    def status(self) -> ByteCardStatus:
        return ByteCardStatus(
            loaded_models=self.loader.loaded_keys(),
            fallback_tables=set(self.fallback_tables),
            calibrated_columns=sorted(self._rbx.calibrated) if self._rbx else [],
            monitor_reports=list(self.monitor_reports),
        )


class _WithoutCalibration(NdvEstimator):
    """View of an RBX estimator with one column's calibration masked off."""

    name = "rbx-uncalibrated"

    def __init__(self, rbx: RBXNdvEstimator, table: str, column: str):
        self._rbx = rbx
        self._key = (table, column)

    def estimate_ndv(self, query: CardQuery) -> float:
        saved = self._rbx.calibrated.pop(self._key, None)
        try:
            return self._rbx.estimate_ndv(query)
        finally:
            if saved is not None:
                self._rbx.calibrated[self._key] = saved


def _sample_rng(seed: int, name: str):
    from repro.utils.rng import derive_rng

    return derive_rng(seed, "bytecard-sample", name)
