"""The Model Preprocessor (paper Section 4.4.1).

Runs inside the analyzer/optimizer and prepares everything training needs:

* **column selection** -- excludes complex types (Array/Map) that the
  CardEst models cannot handle;
* **preliminary type mapping** -- converts database types into ML types
  (Binary / Categorical / Continuous);
* **join-pattern collection** -- gathers joinable column pairs from the
  analyzer (ByteHouse customers do not declare PK-FK constraints);
* **join-bucket construction** -- builds FactorJoin's equi-height buckets
  from the joint domains of each join-key class, reusing the optimizer's
  histogram machinery.

The first two steps land in the ``model_preprocessor_info`` system table,
which ModelForge reads to know what to train on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.factorjoin.buckets import JoinBucketizer
from repro.storage.catalog import Catalog
from repro.storage.types import MLType, ml_type_for


@dataclass(frozen=True)
class PreprocessorInfo:
    """One row of the ``model_preprocessor_info`` system table."""

    table: str
    column: str
    ml_type: MLType
    distinct_count: int
    is_join_key: bool


class ModelPreprocessor:
    """Builds the preprocessor info table and the join buckets."""

    def __init__(self, catalog: Catalog, join_bucket_count: int = 200):
        self.catalog = catalog
        self.join_bucket_count = join_bucket_count

    # ------------------------------------------------------------------
    def collect_join_patterns(self) -> list[tuple[str, str, str, str]]:
        """The joinable column pairs known to the analyzer."""
        return [
            (e.left_table, e.left_column, e.right_table, e.right_column)
            for e in self.catalog.join_schema
        ]

    def build_join_buckets(self) -> JoinBucketizer:
        """Construct the join-bucket boundaries for every join-key class."""
        return JoinBucketizer(self.catalog, num_buckets=self.join_bucket_count)

    def preprocessor_info(
        self, filter_columns: dict[str, list[str]] | None = None
    ) -> list[PreprocessorInfo]:
        """Column selection + type mapping for every table.

        ``filter_columns`` optionally restricts the non-key columns per
        table (the dataset bundles carry this); join keys are always
        included because FactorJoin needs them.
        """
        bucketizer = self.build_join_buckets()
        rows: list[PreprocessorInfo] = []
        for table_name in self.catalog.table_names():
            table = self.catalog.table(table_name)
            join_keys = set(bucketizer.join_key_columns(table_name))
            if filter_columns is not None:
                wanted = set(filter_columns.get(table_name, [])) | join_keys
            else:
                wanted = set(table.column_names())
            for column_name in table.column_names():
                if column_name not in wanted:
                    continue
                column = table.column(column_name)
                if column.ctype.is_complex:
                    continue  # the column-selection exclusion rule
                distinct = column.distinct_count()
                rows.append(
                    PreprocessorInfo(
                        table=table_name,
                        column=column_name,
                        ml_type=ml_type_for(column.ctype, distinct),
                        distinct_count=distinct,
                        is_join_key=column_name in join_keys,
                    )
                )
        return rows

    def training_columns(
        self, filter_columns: dict[str, list[str]] | None = None
    ) -> dict[str, list[str]]:
        """Columns ModelForge should include per table (keys + filters)."""
        info = self.preprocessor_info(filter_columns)
        columns: dict[str, list[str]] = {}
        for row in info:
            columns.setdefault(row.table, []).append(row.column)
        return columns
