"""Model (de)serialization.

Every model kind serializes to a single ``bytes`` blob -- a JSON metadata
header plus an ``npz`` archive of its arrays -- which is what the registry
stores, the size checker measures, and the loader deserializes.  The format
is self-describing (``kind`` in the header) so the loader can dispatch to
the right inference engine.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.errors import ModelError
from repro.estimators.bn.discretize import Discretizer
from repro.estimators.bn.model import TreeBayesNet
from repro.estimators.rbx.network import MLP

_MAGIC = b"BCM1"


def pack(kind: str, meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """Pack a model into the blob format."""
    header = json.dumps({"kind": kind, "meta": meta}).encode("utf-8")
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    body = buffer.getvalue()
    return _MAGIC + len(header).to_bytes(8, "little") + header + body


def unpack(blob: bytes) -> tuple[str, dict, dict[str, np.ndarray]]:
    """Unpack a blob into (kind, meta, arrays)."""
    if len(blob) < 12 or blob[:4] != _MAGIC:
        raise ModelError("not a ByteCard model blob (bad magic)")
    header_len = int.from_bytes(blob[4:12], "little")
    if len(blob) < 12 + header_len:
        raise ModelError("truncated model blob header")
    try:
        header = json.loads(blob[12 : 12 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ModelError(f"corrupt model blob header: {exc}") from exc
    body = blob[12 + header_len :]
    try:
        with np.load(io.BytesIO(body)) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as exc:  # np.load raises a zoo of exceptions
        raise ModelError(f"corrupt model blob body: {exc}") from exc
    return header["kind"], header["meta"], arrays


# ---------------------------------------------------------------------------
# Tree Bayesian networks
# ---------------------------------------------------------------------------
def serialize_bn(model: TreeBayesNet) -> bytes:
    arrays: dict[str, np.ndarray] = {"parents": model.parents}
    for i, cpd in enumerate(model.cpds):
        arrays[f"cpd_{i}"] = cpd
    for column in model.columns:
        disc = model.discretizers[column]
        arrays[f"edges_{column}"] = disc.edges
        arrays[f"counts_{column}"] = disc.bin_counts
        arrays[f"ndv_{column}"] = disc.bin_ndv
        if disc.exact_values is not None:
            arrays[f"exact_{column}"] = disc.exact_values
    meta = {
        "table": model.table_name,
        "columns": list(model.columns),
        "total_rows": model.total_rows,
    }
    return pack("bn", meta, arrays)


def deserialize_bn(blob: bytes) -> TreeBayesNet:
    kind, meta, arrays = unpack(blob)
    if kind != "bn":
        raise ModelError(f"expected a 'bn' blob, found {kind!r}")
    columns = tuple(meta["columns"])
    parents = arrays["parents"].astype(np.int64)
    cpds = []
    for i in range(len(columns)):
        key = f"cpd_{i}"
        if key not in arrays:
            raise ModelError(f"bn blob missing CPD {i}")
        cpds.append(arrays[key])
    discretizers: dict[str, Discretizer] = {}
    for column in columns:
        disc = Discretizer.__new__(Discretizer)
        disc.edges = arrays[f"edges_{column}"]
        disc.num_bins = disc.edges.size - 1
        disc.bin_counts = arrays[f"counts_{column}"]
        disc.bin_ndv = arrays[f"ndv_{column}"]
        exact_key = f"exact_{column}"
        disc.exact = exact_key in arrays
        disc.exact_values = arrays[exact_key] if disc.exact else None
        if disc.exact:
            disc.min_value = float(disc.exact_values[0])
            disc.max_value = float(disc.exact_values[-1])
        else:
            disc.min_value = float(disc.edges[0])
            disc.max_value = float(disc.edges[-1])
        disc.total_rows = int(meta["total_rows"])
        discretizers[column] = disc
    return TreeBayesNet(
        table_name=meta["table"],
        columns=columns,
        discretizers=discretizers,
        parents=parents,
        cpds=cpds,
        total_rows=int(meta["total_rows"]),
    )


# ---------------------------------------------------------------------------
# RBX networks
# ---------------------------------------------------------------------------
def serialize_rbx(model: MLP, meta: dict | None = None) -> bytes:
    return pack("rbx", meta or {}, model.state_dict())


def deserialize_rbx(blob: bytes) -> tuple[MLP, dict]:
    kind, meta, arrays = unpack(blob)
    if kind != "rbx":
        raise ModelError(f"expected an 'rbx' blob, found {kind!r}")
    return MLP.from_state_dict(arrays), meta
