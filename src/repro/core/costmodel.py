"""Learned cost model: the paper's flagged next ML-enhanced component.

Section 7 ("Future Integration of More ML-Enhanced Components") lays out
how ByteCard's abstractions extend beyond cardinality estimation: cost
models are *query-driven*, trained from runtime traces the warehouse
already collects in system tables, with training running in the ModelForge
Service and inference integrated through the ``CardEstInferenceEngine``
interface.  This module implements that plan:

* :class:`QueryTraceCollector` -- the "designated system table": executed
  queries with their plan features and measured cost;
* :func:`train_cost_model` -- ModelForge-side training of a small MLP from
  plan-time features to log-cost;
* :class:`CostModelInferenceEngine` -- the Inference Engine implementation
  serving cost predictions on the query path (load / validate /
  init_context / featurize / estimate).

Plan-time features only: everything the model sees is available before
execution (table sizes, the optimizer's cardinality estimates, query
shape), so the model is usable for plan selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.serialization import pack, unpack
from repro.core.validator import ModelValidator, ValidationReport
from repro.engine.executor import QueryResult
from repro.engine.session import EngineSession
from repro.errors import ModelError, TrainingError
from repro.estimators.base import CountEstimator
from repro.estimators.rbx.network import MLP, AdamState
from repro.sql.query import CardQuery
from repro.storage.catalog import Catalog

#: Dimension of the plan-time feature vector.
COST_FEATURE_DIM = 8


def cost_features(
    catalog: Catalog, query: CardQuery, count_estimator: CountEstimator
) -> np.ndarray:
    """Plan-time features of one query."""
    total_rows = sum(len(catalog.table(t)) for t in query.tables)
    try:
        estimated_rows = max(1.0, count_estimator.estimate_count(query))
    except Exception:  # noqa: BLE001 - any estimator failure is a feature, too
        estimated_rows = 1.0
    return np.array(
        [
            len(query.tables),
            len(query.joins),
            len(query.predicates),
            len(query.or_groups),
            len(query.group_by),
            np.log1p(total_rows),
            np.log1p(estimated_rows),
            1.0,  # bias feature
        ],
        dtype=np.float64,
    )


@dataclass
class QueryTrace:
    """One row of the runtime-trace system table."""

    features: np.ndarray
    measured_cost: float
    query_name: str


@dataclass
class QueryTraceCollector:
    """Accumulates (plan features, measured cost) pairs from executions."""

    catalog: Catalog
    count_estimator: CountEstimator
    traces: list[QueryTrace] = field(default_factory=list)

    def record(self, query: CardQuery, result: QueryResult) -> None:
        self.traces.append(
            QueryTrace(
                features=cost_features(self.catalog, query, self.count_estimator),
                measured_cost=float(result.total_cost),
                query_name=query.name,
            )
        )

    def collect_from_session(
        self, session: EngineSession, queries: list[CardQuery]
    ) -> None:
        """Execute a workload and record every query's trace."""
        for query in queries:
            result = session.run(query)
            self.record(query, result)


def train_cost_model(
    collector: QueryTraceCollector,
    hidden: tuple[int, ...] = (64, 32),
    epochs: int = 120,
    learning_rate: float = 1e-3,
    seed: int = 41,
) -> MLP:
    """Fit an MLP from plan features to log total cost."""
    if len(collector.traces) < 10:
        raise TrainingError(
            f"cost-model training needs >= 10 traces, have {len(collector.traces)}"
        )
    features = np.stack([t.features for t in collector.traces])
    targets = np.log1p(np.array([t.measured_cost for t in collector.traces]))
    model = MLP(COST_FEATURE_DIM, hidden=hidden, seed=seed)
    state = AdamState()
    rng = np.random.default_rng(seed)
    n = features.shape[0]
    batch = min(32, n)
    for _epoch in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            index = order[start : start + batch]
            model.train_step(
                features[index], targets[index], state, learning_rate=learning_rate
            )
    return model


def serialize_cost_model(model: MLP) -> bytes:
    return pack("costmodel", {"feature_dim": COST_FEATURE_DIM}, model.state_dict())


def deserialize_cost_model(blob: bytes) -> MLP:
    kind, meta, arrays = unpack(blob)
    if kind != "costmodel":
        raise ModelError(f"expected a 'costmodel' blob, found {kind!r}")
    if meta.get("feature_dim") != COST_FEATURE_DIM:
        raise ModelError("cost-model blob has an incompatible feature layout")
    return MLP.from_state_dict(arrays)


class CostModelInferenceEngine:
    """Inference Engine integration for the learned cost model.

    Mirrors the ``CardEstInferenceEngine`` lifecycle so the Model Loader
    can manage cost models exactly like CardEst models -- the engineering
    path the paper prescribes for further AI4DB components.
    """

    def __init__(
        self,
        catalog: Catalog,
        validator: ModelValidator,
        count_estimator: CountEstimator,
    ):
        self.catalog = catalog
        self.validator = validator
        self.count_estimator = count_estimator
        self.network: MLP | None = None
        self._context_ready = False

    # -- lifecycle ---------------------------------------------------------
    def load_model(self, blob: bytes) -> bool:
        try:
            self.network = deserialize_cost_model(blob)
        except ModelError:
            self.network = None
            return False
        self._context_ready = False
        return True

    def validate(self) -> ValidationReport:
        if self.network is None:
            return ValidationReport.failure("no model loaded")
        return self.validator.check_rbx_health(self.network, COST_FEATURE_DIM)

    def init_context(self) -> None:
        if self.network is None:
            raise ModelError("cannot init_context without a loaded model")
        for array in (*self.network.weights, *self.network.biases):
            array.setflags(write=False)
        self._context_ready = True

    # -- inference -----------------------------------------------------------
    def featurize(self, query: CardQuery) -> np.ndarray:
        return cost_features(self.catalog, query, self.count_estimator)

    def estimate(self, query: CardQuery) -> float:
        """Predicted total execution cost (engine cost units)."""
        if not self._context_ready:
            raise ModelError("estimate() called before init_context()")
        assert self.network is not None
        log_cost = float(self.network.forward(self.featurize(query)[np.newaxis, :])[0])
        return float(np.expm1(np.clip(log_cost, 0.0, 40.0)))
