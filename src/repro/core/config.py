"""Configuration of the ByteCard framework."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ByteCardConfig:
    """Knobs of the framework's lifecycle components."""

    # -- training (ModelForge) ----------------------------------------
    #: rows sampled per table for BN training (the service trains "on the
    #: online sampled data")
    training_sample_rows: int = 50_000
    #: FactorJoin join-bucket count (the paper's evaluation uses 200)
    join_bucket_count: int = 200
    #: maximum bins per non-join-key BN column
    max_bins: int = 64
    #: RBX routine-training corpus size / epochs
    rbx_corpus_size: int = 3000
    rbx_epochs: int = 40

    # -- loading (Model Loader) ---------------------------------------
    #: refuse any single model blob larger than this (the size checker's
    #: per-model rule: one table's model must not hog memory)
    max_model_bytes: int = 16 * 1024 * 1024
    #: LRU-evict least-recently-used models beyond this total budget
    max_total_bytes: int = 256 * 1024 * 1024
    #: logical refresh interval (ticks of the Daemon Manager's clock); the
    #: production default is one hour
    load_interval_ticks: int = 1

    # -- monitoring (Model Monitor) ------------------------------------
    #: test queries generated per table when assessing a COUNT model
    monitor_queries_per_table: int = 20
    #: retain a model only if its monitored P90 Q-Error stays below this
    qerror_gate: float = 25.0
    #: per-column NDV Q-Error above which calibration fine-tuning triggers
    ndv_finetune_trigger: float = 5.0
    #: with a feedback log attached (:meth:`ModelMonitor.attach_feedback`),
    #: the fraction of a COUNT assessment's evidence budget served by
    #: observed runtime (estimate, actual) pairs instead of synthetic test
    #: queries -- free drift evidence from the execution path
    monitor_feedback_share: float = 0.5

    # -- RBX serving ----------------------------------------------------
    rbx_sample_rows: int = 20_000

    # -- observability (repro.obs) --------------------------------------
    #: record loader/monitor/serving/engine metrics into the framework's
    #: :class:`repro.obs.MetricsRegistry`; disabling hands out no-op
    #: metrics everywhere (near-zero overhead)
    enable_observability: bool = True
