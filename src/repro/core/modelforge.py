"""The ModelForge Service: isolated training and model management.

A standalone service in production -- training never touches the online
query path.  Responsibilities reproduced here:

* **routine training** of per-table COUNT models: Chow-Liu structure
  learning + EM parameter learning on sampled data, with join keys
  discretized on the Model Preprocessor's join buckets;
* **RBX lifecycle**: one universal offline training run, plus occasional
  calibration fine-tuning of problematic columns from the established
  checkpoint;
* **ingestion signals**: upstream sources (Hive/Kafka in the paper) notify
  the service of data changes; the next training cycle retrains exactly the
  dirty tables;
* **shard training**: per-shard models when a table's distribution varies
  across shards.

Every trained model is serialized and published to the registry with a
fresh timestamp; training times and sizes are recorded (they are the rows
of the paper's Tables 3 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ByteCardConfig
from repro.core.preprocessor import ModelPreprocessor
from repro.core.registry import ModelRegistry
from repro.core.serialization import serialize_bn, serialize_rbx
from repro.datasets.base import DatasetBundle
from repro.errors import TrainingError
from repro.estimators.bn.model import fit_tree_bn
from repro.estimators.factorjoin.buckets import JoinBucketizer
from repro.estimators.frequency import FrequencyProfile
from repro.estimators.rbx.network import MLP
from repro.estimators.rbx.training import fine_tune_rbx, train_rbx
from repro.utils.rng import derive_rng
from repro.utils.timer import Stopwatch


@dataclass(frozen=True)
class TrainedModelInfo:
    """Size/time record of one trained model (a Table 6 row)."""

    kind: str
    name: str
    seconds: float
    nbytes: int
    timestamp: int


@dataclass
class IngestionSignal:
    """A Data Ingestor notification (Hive/Kafka metadata in the paper)."""

    table: str
    source: str = "kafka"
    details: dict = field(default_factory=dict)


class ModelForgeService:
    """Training orchestration around one registry."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: ByteCardConfig | None = None,
    ):
        self.registry = registry
        self.config = config or ByteCardConfig()
        self._dirty_tables: set[str] = set()
        self.history: list[TrainedModelInfo] = []
        # Preprocessor products (join bucketizer, training columns) are
        # catalog-wide and expensive; cache them across training cycles and
        # invalidate only when a join-key table's data changes -- bucket
        # edges are built from join-key domains, so dirt on a pure filter
        # table cannot move them.
        self._prepared: tuple[JoinBucketizer, dict[str, list[str]]] | None = None
        self._prepared_key: tuple[int, int] | None = None
        self._join_tables: set[str] = set()
        # The join-bucket grid is a *contract shared across BN models*: a
        # model discretized on one set of edges cannot be combined with a
        # model discretized on another.  The generation counter stamps
        # which grid each table's published BN was trained on, so partial
        # retrains can pull grid-stale join tables into the same cycle.
        self._bucket_generation = 0
        self._trained_generation: dict[str, int] = {}
        self._training_bucketizer: JoinBucketizer | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_signal(self, signal: IngestionSignal) -> None:
        """Record that a table's data changed upstream."""
        self._dirty_tables.add(signal.table)
        if self._prepared is not None and signal.table in self._join_tables:
            self.invalidate_preprocessor_cache()

    def dirty_tables(self) -> set[str]:
        return set(self._dirty_tables)

    def invalidate_preprocessor_cache(self) -> None:
        """Force the next training call to rebuild the join buckets."""
        self._prepared = None
        self._prepared_key = None
        self._bucket_generation += 1

    def _prepare(
        self, bundle: DatasetBundle
    ) -> tuple[JoinBucketizer, dict[str, list[str]]]:
        """The cached (bucketizer, training columns) for ``bundle``."""
        cache_key = (id(bundle.catalog), id(bundle.filter_columns))
        if self._prepared is not None and self._prepared_key == cache_key:
            return self._prepared
        preprocessor = ModelPreprocessor(
            bundle.catalog, join_bucket_count=self.config.join_bucket_count
        )
        bucketizer = preprocessor.build_join_buckets()
        training_columns = preprocessor.training_columns(bundle.filter_columns)
        self._join_tables = {
            table
            for left_t, _lc, right_t, _rc in preprocessor.collect_join_patterns()
            for table in (left_t, right_t)
        }
        self._prepared = (bucketizer, training_columns)
        self._prepared_key = cache_key
        return self._prepared

    # ------------------------------------------------------------------
    # COUNT models
    # ------------------------------------------------------------------
    def train_count_models(
        self,
        bundle: DatasetBundle,
        tables: list[str] | None = None,
    ) -> list[TrainedModelInfo]:
        """Train and publish BN models for the given (or all) tables.

        A targeted retrain is widened to its **grid-consistency closure**:
        when the join-bucket grid was rebuilt since a join table's BN was
        last trained (ingestion dirt on a join table invalidates the
        preprocessor cache), that table is pulled into this cycle too --
        otherwise the freshly trained model and the stale ones would be
        discretized on different bucket edges and could not be combined
        at join-estimation time.
        """
        bucketizer, training_columns = self._prepare(bundle)
        self._training_bucketizer = bucketizer
        if tables is None:
            targets = sorted(training_columns)
        else:
            closure = set(tables) | {
                name
                for name in self._join_tables
                if name in training_columns
                and name in self._trained_generation
                and self._trained_generation[name] != self._bucket_generation
            }
            targets = sorted(closure)
        infos: list[TrainedModelInfo] = []
        for table_name in targets:
            columns = training_columns.get(table_name)
            if not columns:
                continue
            infos.append(
                self._train_one_bn(bundle, bucketizer, table_name, columns)
            )
            self._trained_generation[table_name] = self._bucket_generation
        return infos

    def training_bucketizer(self) -> JoinBucketizer | None:
        """The grid the most recent training cycle discretized on.

        Model assembly must use exactly this bucketizer: rebuilding one
        from the live catalog would race concurrent ingestion and drift
        away from the edges the published BNs were trained with.
        """
        return self._training_bucketizer

    def _train_one_bn(
        self,
        bundle: DatasetBundle,
        bucketizer: JoinBucketizer,
        table_name: str,
        columns: list[str],
    ) -> TrainedModelInfo:
        table = bundle.catalog.table(table_name)
        join_keys = [c for c in columns if bucketizer.has_class(table_name, c)]
        bucket_edges = {
            key: bucketizer.edges_for(table_name, key) for key in join_keys
        }
        rng = derive_rng(bundle.seed, "modelforge", table_name)
        with Stopwatch() as sw:
            model = fit_tree_bn(
                table,
                columns,
                max_bins=self.config.max_bins,
                bucket_edges=bucket_edges,
                sample_rows=self.config.training_sample_rows,
                rng=rng,
            )
            blob = serialize_bn(model)
        record = self.registry.publish("bn", table_name, blob)
        info = TrainedModelInfo(
            kind="bn",
            name=table_name,
            seconds=sw.elapsed,
            nbytes=len(blob),
            timestamp=record.timestamp,
        )
        self.history.append(info)
        self._dirty_tables.discard(table_name)
        return info

    def run_training_cycle(self, bundle: DatasetBundle) -> list[TrainedModelInfo]:
        """Retrain exactly the tables flagged dirty by ingestion signals."""
        if not self._dirty_tables:
            return []
        return self.train_count_models(bundle, tables=sorted(self._dirty_tables))

    # ------------------------------------------------------------------
    # Shard training
    # ------------------------------------------------------------------
    def train_sharded(
        self,
        bundle: DatasetBundle,
        table_name: str,
        shard_column: str,
        num_shards: int,
    ) -> list[TrainedModelInfo]:
        """Per-shard models when shard distributions differ.

        The shard function is hash-mod on the shard key, the common
        ByteHouse configuration.
        """
        if num_shards <= 1:
            raise TrainingError("shard training needs at least two shards")
        table = bundle.catalog.table(table_name)
        if not table.has_column(shard_column):
            raise TrainingError(
                f"table {table_name!r} has no shard column {shard_column!r}"
            )
        _bucketizer, training_columns = self._prepare(bundle)
        columns = training_columns.get(table_name, [])
        if not columns:
            raise TrainingError(f"no trainable columns for table {table_name!r}")
        shard_of = table.column(shard_column).values.astype(np.int64) % num_shards
        infos: list[TrainedModelInfo] = []
        for shard in range(num_shards):
            shard_table = table.select_rows(shard_of == shard)
            if len(shard_table) == 0:
                continue
            rng = derive_rng(bundle.seed, "modelforge-shard", table_name, shard)
            with Stopwatch() as sw:
                model = fit_tree_bn(
                    shard_table,
                    columns,
                    max_bins=self.config.max_bins,
                    sample_rows=self.config.training_sample_rows,
                    rng=rng,
                )
                blob = serialize_bn(model)
            record = self.registry.publish("bn", f"{table_name}@shard{shard}", blob)
            infos.append(
                TrainedModelInfo(
                    kind="bn",
                    name=f"{table_name}@shard{shard}",
                    seconds=sw.elapsed,
                    nbytes=len(blob),
                    timestamp=record.timestamp,
                )
            )
        self.history.extend(infos)
        return infos

    # ------------------------------------------------------------------
    # RBX
    # ------------------------------------------------------------------
    def train_rbx_universal(self, seed: int = 9) -> TrainedModelInfo:
        """The single offline training run of the universal RBX model."""
        with Stopwatch() as sw:
            model = train_rbx(
                num_examples=self.config.rbx_corpus_size,
                epochs=self.config.rbx_epochs,
                seed=seed,
            )
            blob = serialize_rbx(model, meta={"scope": "universal"})
        record = self.registry.publish("rbx", "universal", blob)
        info = TrainedModelInfo(
            kind="rbx",
            name="universal",
            seconds=sw.elapsed,
            nbytes=len(blob),
            timestamp=record.timestamp,
        )
        self.history.append(info)
        return info

    def fine_tune_column(
        self,
        base_model: MLP,
        table: str,
        column: str,
        column_samples: list[tuple[FrequencyProfile, int]],
        seed: int = 10,
    ) -> TrainedModelInfo:
        """Calibration fine-tuning for one problematic column."""
        with Stopwatch() as sw:
            tuned = fine_tune_rbx(base_model, column_samples, seed=seed)
            blob = serialize_rbx(
                tuned, meta={"scope": "column", "table": table, "column": column}
            )
        record = self.registry.publish("rbx", f"{table}.{column}", blob)
        info = TrainedModelInfo(
            kind="rbx",
            name=f"{table}.{column}",
            seconds=sw.elapsed,
            nbytes=len(blob),
            timestamp=record.timestamp,
        )
        self.history.append(info)
        return info
