"""The ``CardEstInferenceEngine`` abstraction (the paper's Figure 6 API).

Every learned model is integrated behind the same six-method interface:

* ``load_model``          -- deserialize a registry blob (each model kind
  encapsulates its own deserialization);
* ``validate``            -- run the Model Validator's health checks;
* ``init_context``        -- freeze the immutable inference structures
  (topologically-indexed CPDs for BNs, read-only weight matrices for RBX)
  so ``estimate`` is lock-free under concurrency;
* ``featurize_sql_query`` / ``featurize_ast`` -- turn a query into the
  model's input representation;
* ``estimate``            -- the actual inference call on the query path.
"""

from __future__ import annotations

import abc

from repro.errors import ModelError
from repro.core.serialization import deserialize_bn, deserialize_rbx
from repro.core.validator import ModelValidator, ValidationReport
from repro.estimators.bn.model import TreeBayesNet
from repro.estimators.frequency import frequency_profile
from repro.estimators.rbx.network import MLP
from repro.estimators.rbx.profile import (
    RBX_FEATURE_DIM,
    clamp_estimate,
    rbx_features,
    target_to_ndv,
)
from repro.sql.ast import SelectStatement
from repro.sql.binder import Binder
from repro.sql.parser import parse_sql
from repro.sql.query import CardQuery
from repro.storage.catalog import Catalog
from repro.workloads.predicates import table_mask


class CardEstInferenceEngine(abc.ABC):
    """The high-level integration surface for one loaded model."""

    def __init__(self, catalog: Catalog, validator: ModelValidator):
        self.catalog = catalog
        self.validator = validator
        self._binder = Binder(catalog)
        self._context_ready = False

    # -- model lifecycle -------------------------------------------------
    @abc.abstractmethod
    def load_model(self, blob: bytes) -> bool:
        """Deserialize a blob into this engine.  Returns False on failure."""

    @abc.abstractmethod
    def validate(self) -> ValidationReport:
        """Run the health detector against the loaded model."""

    @abc.abstractmethod
    def init_context(self) -> None:
        """Build the immutable inference context."""

    # -- featurization ------------------------------------------------------
    def featurize_sql_query(self, sql: str) -> CardQuery:
        """Parse and bind a SQL string into the estimation representation.

        Bound :class:`CardQuery` objects are this engine family's "feature
        vector": every model estimates from them.
        """
        return self._binder.bind(parse_sql(sql))

    def featurize_ast(self, statement: SelectStatement) -> CardQuery:
        """Bind an analyzer AST directly (richer, no re-parsing)."""
        return self._binder.bind(statement)

    # -- inference -----------------------------------------------------------
    @abc.abstractmethod
    def estimate(self, query: CardQuery) -> float:
        """Perform the estimation.  Requires ``init_context`` first."""

    def _require_context(self) -> None:
        if not self._context_ready:
            raise ModelError(
                "estimate() called before init_context(); the inference "
                "context must be frozen before serving query threads"
            )


class BNInferenceEngine(CardEstInferenceEngine):
    """Inference engine for one table's tree-BN COUNT model."""

    def __init__(self, catalog: Catalog, validator: ModelValidator):
        super().__init__(catalog, validator)
        self.model: TreeBayesNet | None = None

    def load_model(self, blob: bytes) -> bool:
        try:
            self.model = deserialize_bn(blob)
        except ModelError:
            self.model = None
            return False
        self._context_ready = False
        return True

    def validate(self) -> ValidationReport:
        if self.model is None:
            return ValidationReport.failure("no model loaded")
        return self.validator.check_bn_health(self.model)

    def init_context(self) -> None:
        if self.model is None:
            raise ModelError("cannot init_context without a loaded model")
        self.model.init_context()
        self._context_ready = True

    def estimate(self, query: CardQuery) -> float:
        self._require_context()
        assert self.model is not None
        if not query.is_single_table() or query.tables[0] != self.model.table_name:
            raise ModelError(
                f"BN engine for {self.model.table_name!r} cannot estimate {query}"
            )
        return self.model.estimate_rows(list(query.predicates))


class RBXInferenceEngine(CardEstInferenceEngine):
    """Inference engine for the RBX NDV model.

    Holds the network weights plus the per-table samples the featurization
    filters; ``init_context`` freezes the weights (read-only arrays).
    """

    def __init__(
        self,
        catalog: Catalog,
        validator: ModelValidator,
        samples: dict[str, object],
    ):
        super().__init__(catalog, validator)
        self.network: MLP | None = None
        self._samples = samples

    def load_model(self, blob: bytes) -> bool:
        try:
            self.network, _meta = deserialize_rbx(blob)
        except ModelError:
            self.network = None
            return False
        self._context_ready = False
        return True

    def validate(self) -> ValidationReport:
        if self.network is None:
            return ValidationReport.failure("no model loaded")
        return self.validator.check_rbx_health(self.network, RBX_FEATURE_DIM)

    def init_context(self) -> None:
        if self.network is None:
            raise ModelError("cannot init_context without a loaded model")
        for array in (*self.network.weights, *self.network.biases):
            array.setflags(write=False)
        self._context_ready = True

    def estimate(self, query: CardQuery) -> float:
        self._require_context()
        assert self.network is not None
        table_name = query.agg.table
        column = query.agg.column
        if table_name is None or column is None:
            raise ModelError("RBX engine requires a COUNT DISTINCT query")
        sample = self._samples.get(table_name)
        if sample is None:
            raise ModelError(f"no sample loaded for table {table_name!r}")
        mask = table_mask(sample, query)  # type: ignore[arg-type]
        values = sample.column(column).values[mask]  # type: ignore[attr-defined]
        matched = float(mask.sum()) / max(1, len(sample))  # type: ignore[arg-type]
        population = max(1, int(len(self.catalog.table(table_name)) * matched))
        profile = frequency_profile(values, population_size=population)
        if profile.sample_size == 0:
            return 1.0
        raw = target_to_ndv(float(self.network.forward(rbx_features(profile))[0]))
        return clamp_estimate(raw, profile)
