"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table, column, or type was referenced or defined inconsistently."""


class ParseError(ReproError):
    """A SQL string could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """A parsed query references tables or columns unknown to the catalog."""


class EstimationError(ReproError):
    """An estimator could not produce an estimate for the given query."""


class DetailError(EstimationError):
    """A provenance-carrying detail path (``selectivity_detail`` /
    ``estimate_count_detail``) raised.

    Distinct from a plain :class:`EstimationError` so the optimizer can
    tell "the detail interface errored" apart from "the estimator cannot
    answer this query at all" -- the former is surfaced as a
    ``detail_error`` provenance bucket and counted, the latter follows the
    normal estimation-failure fallbacks.
    """


class ModelError(ReproError):
    """A learned model is malformed, missing, or failed (de)serialization."""


class ValidationError(ModelError):
    """A model failed the ModelValidator's size or health checks."""


class TrainingError(ModelError):
    """Model training could not complete (bad data, no convergence, ...)."""


class ExecutionError(ReproError):
    """The execution engine could not run a physical plan."""


class FleetError(ReproError):
    """The multi-process serving fleet failed to start, route, or stop."""


class ConnectionClosed(FleetError):
    """The peer closed its end of a fleet IPC connection."""


class WorkerDied(FleetError):
    """A fleet worker process exited or lost its connection mid-request."""
