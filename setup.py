"""Legacy setup shim.

The reproduction environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build a wheel.
This shim lets ``python setup.py develop --no-deps`` (or ``pip install -e .
--no-build-isolation`` on tool-chains that have ``wheel``) install the package
in editable mode from ``src/``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
