"""Unit tests for the repro.obs metric primitives and registry."""

import pytest

from repro.obs import (
    NULL_METRIC,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetric,
    Series,
    Tracer,
    export_json,
    export_text,
    missing_series,
    render_series_name,
)


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", path="model")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        gauge = registry.gauge("loaded_models")
        gauge.set(7)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_snapshot_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", path="model")
        for value in range(1, 101):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap.count == 100
        assert snap.total == pytest.approx(5050.0)
        assert snap.min == 1.0 and snap.max == 100.0
        assert snap.p50 == pytest.approx(50.5)
        assert snap.p99 == pytest.approx(99.01)
        assert snap.mean == pytest.approx(50.5)

    def test_histogram_window_bounds_memory_not_totals(self):
        hist = Histogram("h", window=8)
        for value in range(100):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap.count == 100  # lifetime count survives the ring bound
        assert snap.p50 >= 92.0  # quantiles cover only the recent window

    def test_series_is_bounded_and_ordered(self):
        series = Series("drift", maxlen=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            series.append(value)
        assert series.values() == [2.0, 3.0, 4.0]
        assert series.last == 4.0

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap.count == 0 and snap.p99 == 0.0 and snap.mean == 0.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c", table="t1")
        b = registry.counter("c", table="t1")
        other = registry.counter("c", table="t2")
        assert a is b and a is not other
        assert len(registry) == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(TypeError):
            registry.histogram("dual")

    def test_disabled_registry_hands_out_null_singleton(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        assert counter is NULL_METRIC
        assert isinstance(counter, NullMetric)
        counter.inc()
        counter.observe(1.0)
        counter.append(1.0)
        counter.set(2.0)
        assert counter.value == 0.0
        assert len(registry) == 0
        assert export_text(registry) == ""
        assert export_json(registry) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }

    def test_adopt_registers_external_metric(self):
        registry = MetricsRegistry()
        hist = Histogram("external_seconds", (("path", "cache"),))
        hist.observe(0.5)
        registry.adopt(hist)
        assert registry.get("external_seconds", path="cache") is hist
        # Disabled registries refuse adoption silently.
        disabled = MetricsRegistry(enabled=False)
        disabled.adopt(hist)
        assert len(disabled) == 0

    def test_get_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert len(registry) == 0

    def test_preregister_creates_explicit_zeros(self):
        registry = MetricsRegistry()
        registry.preregister(
            "dropped_total", "reason", ("garbled", "stale", "orphan")
        )
        assert len(registry) == 3
        for reason in ("garbled", "stale", "orphan"):
            metric = registry.get("dropped_total", reason=reason)
            assert metric is not None and metric.value == 0.0
        # The zeros show up in exports before any increment happens.
        assert 'reason="orphan"' in export_text(registry)

    def test_preregister_noop_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.preregister("dropped_total", "reason", ("a", "b"))
        assert len(registry) == 0


class TestExport:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests_total", path="model").inc(5)
        registry.gauge("generation").set(2)
        hist = registry.histogram("latency_seconds", path="model")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        registry.series("qerror_p90", model="users").append(1.5)
        return registry

    def test_text_export_format(self):
        text = export_text(self.make_registry())
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{path="model"} 5' in text
        assert 'generation 2' in text
        assert 'latency_seconds_count{path="model"} 3' in text
        assert 'latency_seconds{path="model",quantile="0.5"}' in text
        assert 'qerror_p90{model="users"} 1.5' in text

    def test_json_export_structure(self):
        doc = export_json(self.make_registry())
        assert doc["counters"]['requests_total{path="model"}'] == 5
        assert doc["gauges"]["generation"] == 2
        hist = doc["histograms"]['latency_seconds{path="model"}']
        assert hist["count"] == 3
        assert hist["p50"] == pytest.approx(0.2)
        assert doc["series"]['qerror_p90{model="users"}'] == [1.5]

    def test_missing_series_matches_bare_names(self):
        registry = self.make_registry()
        missing = missing_series(
            registry, ["latency_seconds", "qerror_p90", "absent_total"]
        )
        assert missing == ["absent_total"]

    def test_render_series_name(self):
        assert render_series_name("m", ()) == "m"
        assert (
            render_series_name("m", (("a", "1"), ("b", "2")))
            == 'm{a="1",b="2"}'
        )


class TestTracer:
    def test_span_records_into_registry_and_sink(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        sink = []
        with tracer.span("stage.compute", sink=sink, path="model"):
            pass
        assert len(sink) == 1
        assert sink[0].name == "stage.compute"
        assert sink[0].duration_s >= 0.0
        hist = registry.get("span_seconds", span="stage.compute", path="model")
        assert hist is not None and hist.count == 1

    def test_disabled_tracer_without_sink_is_noop_singleton(self):
        tracer = Tracer(MetricsRegistry(enabled=False))
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is second  # the shared nullcontext: no allocation
        with first:
            pass

    def test_disabled_tracer_still_feeds_sink(self):
        tracer = Tracer(MetricsRegistry(enabled=False))
        sink = []
        with tracer.span("stage", sink=sink):
            pass
        assert len(sink) == 1 and sink[0].name == "stage"
