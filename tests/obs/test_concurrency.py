"""Satellite: concurrent hammering of the registry and StatsCollector.

>= 8 threads increment counters, observe histograms, and record per-path
latencies; snapshots must be consistent (no lost increments, no torn
histogram state) and the disabled mode must stay a strict no-op.
"""

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.serving.stats import LATENCY_PATHS, StatsCollector

NUM_THREADS = 8
PER_THREAD = 2000


def hammer(num_threads: int, worker) -> None:
    barrier = threading.Barrier(num_threads)

    def run(index: int) -> None:
        barrier.wait()
        worker(index)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestRegistryConcurrency:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            # Every thread resolves the same metric by name: creation and
            # increment both race across threads.
            for _ in range(PER_THREAD):
                registry.counter("hammered_total").inc()
                registry.counter("labeled_total", thread=index % 2).inc()

        hammer(NUM_THREADS, worker)
        assert registry.counter("hammered_total").value == NUM_THREADS * PER_THREAD
        total_labeled = (
            registry.counter("labeled_total", thread=0).value
            + registry.counter("labeled_total", thread=1).value
        )
        assert total_labeled == NUM_THREADS * PER_THREAD

    def test_histogram_never_observes_torn_state(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        torn: list[str] = []

        def writer(index: int) -> None:
            hist = registry.histogram("h", window=256)
            for i in range(PER_THREAD):
                hist.observe(float(i % 100))

        def reader() -> None:
            hist = registry.histogram("h", window=256)
            while not stop.is_set():
                snap = hist.snapshot()
                # Invariants that break if count/total/ring tear apart.
                if snap.count and not (snap.min <= snap.p50 <= snap.max):
                    torn.append(f"quantile outside bounds: {snap}")
                if snap.count and not (0.0 <= snap.mean <= 99.0):
                    torn.append(f"mean outside observed range: {snap}")

        observer = threading.Thread(target=reader)
        observer.start()
        hammer(NUM_THREADS, writer)
        stop.set()
        observer.join()
        assert not torn, torn[:3]
        assert registry.histogram("h", window=256).count == NUM_THREADS * PER_THREAD

    def test_series_appends_are_bounded_and_complete(self):
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            series = registry.series("s", maxlen=100_000)
            for i in range(PER_THREAD):
                series.append(float(index))

        hammer(NUM_THREADS, worker)
        values = registry.series("s", maxlen=100_000).values()
        assert len(values) == NUM_THREADS * PER_THREAD


class TestStatsCollectorConcurrency:
    def test_counters_and_path_latencies_survive_hammering(self):
        collector = StatsCollector(latency_window=4096)

        def worker(index: int) -> None:
            path = LATENCY_PATHS[index % len(LATENCY_PATHS)]
            for i in range(PER_THREAD):
                collector.increment("requests")
                collector.record_latency(0.001 * (i % 10 + 1), path=path)
                if i % 10 == 0:
                    collector.record_fallback("errors")

        hammer(NUM_THREADS, worker)
        stats = collector.snapshot()
        assert stats.requests == NUM_THREADS * PER_THREAD
        assert stats.errors == NUM_THREADS * (PER_THREAD // 10)
        assert stats.fallbacks == stats.errors
        # Every path saw exactly its threads' share of observations.
        per_path = NUM_THREADS // len(LATENCY_PATHS) * PER_THREAD
        for path in LATENCY_PATHS:
            assert stats.path_latencies[path].count == per_path
            assert stats.path_latencies[path].p50 > 0.0

    def test_snapshot_is_immutable_and_consistent_mid_flight(self):
        collector = StatsCollector(latency_window=512)
        stop = threading.Event()
        violations: list[str] = []

        def writer(index: int) -> None:
            for _ in range(PER_THREAD):
                collector.increment("requests")
                collector.record_fallback("timeouts")

        def reader() -> None:
            while not stop.is_set():
                stats = collector.snapshot()
                if stats.fallbacks != stats.timeouts:
                    violations.append(
                        f"fallbacks={stats.fallbacks} timeouts={stats.timeouts}"
                    )

        observer = threading.Thread(target=reader)
        observer.start()
        hammer(NUM_THREADS, writer)
        stop.set()
        observer.join()
        # record_fallback bumps both counters under one lock: a snapshot
        # must never see them out of sync.
        assert not violations, violations[:3]


class TestDisabledOverhead:
    def test_disabled_registry_is_allocation_free_noop(self):
        registry = MetricsRegistry(enabled=False)

        def worker(index: int) -> None:
            for _ in range(PER_THREAD):
                registry.counter("c").inc()
                registry.histogram("h").observe(1.0)
                registry.series("s").append(1.0)

        hammer(NUM_THREADS, worker)
        assert len(registry) == 0

    def test_null_metric_is_shared_across_all_names(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is registry.histogram("b")
        assert registry.gauge("c") is registry.series("d")

    def test_disabled_mode_overhead_is_bounded(self):
        """A disabled-registry increment must stay within a small multiple
        of a bare function call -- the near-zero-overhead contract."""
        import time

        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        n = 50_000

        def noop():
            pass

        start = time.perf_counter()
        for _ in range(n):
            noop()
        baseline = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(n):
            counter.inc()
        disabled = time.perf_counter() - start
        # Generous bound: CI machines are noisy; the point is that the
        # disabled path does no locking, hashing, or allocation.
        assert disabled < max(20 * baseline, 0.25), (disabled, baseline)
